"""§4.5/§4.6 remaining sensitivity analyses and guided tuning.

* Binder thresholds: average JCT is robust (<~4% spread) across the
  (Medium, Tiny) grid the paper scans.
* Model update interval: periodic updates beat a static model on queuing.
* Monotonic constraint (System Tuner): constraining gpu_num keeps (or
  improves) the estimator's accuracy — paper: +2.6% R².
"""

import numpy as np

from repro.analysis import ascii_table
from repro.core import LucidConfig, SystemTuner, WorkloadEstimateModel
from repro.models import r2_score
from repro.traces import TraceGenerator, VENUS

from conftest import run_sim


def test_binder_threshold_robustness(once, record_result):
    grid = [(0.75, 0.90), (0.85, 0.95), (0.85, 0.97), (0.80, 0.95)]

    def build():
        rows = []
        for medium, tiny in grid:
            config = LucidConfig(medium_threshold=medium,
                                 tiny_threshold=tiny)
            result = run_sim(VENUS, "lucid", config=config)
            rows.append([f"({medium}, {tiny})", result.avg_jct / 3600.0,
                         result.avg_queue_delay / 3600.0])
        return rows

    rows = once(build)
    table = ascii_table(["(medium, tiny)", "avg JCT (h)", "avg queue (h)"],
                        rows,
                        title="Binder threshold sensitivity on Venus")
    jcts = [row[1] for row in rows]
    spread = (max(jcts) - min(jcts)) / min(jcts)
    table += (f"\nJCT spread across grid: {spread:.1%} (paper: <3.6%; our "
              "scaled-down contention makes packing volume — and hence the "
              "thresholds — matter more)")
    record_result("misc_binder_thresholds", table)

    assert spread < 0.25


def test_update_interval_effect(once, record_result):
    """Averaged over seeds: single realizations of a 2,400-job trace have
    schedule-divergence noise larger than the paper's +4.8% effect (they
    measured a month of 24k jobs)."""
    seeds = (41, 141, 241)

    def build():
        rows = []
        for policy, interval in (("static model", None),
                                 ("daily refit", 86_400.0)):
            jcts, queues = [], []
            for seed in seeds:
                result = run_sim(VENUS.with_seed(seed), "lucid",
                                 config=LucidConfig(update_interval=interval))
                jcts.append(result.avg_jct / 3600.0)
                queues.append(result.avg_queue_delay / 3600.0)
            rows.append([policy, float(np.mean(jcts)),
                         float(np.mean(queues))])
        return rows

    rows = once(build)
    table = ascii_table(
        ["update policy", "avg JCT (h)", "avg queue (h)"],
        rows,
        title=f"Model update interval, mean of {len(seeds)} seeds "
              "(paper: weekly updates -4.8% queue)")
    record_result("misc_update_interval", table)

    static_queue = rows[0][2]
    daily_queue = rows[1][2]
    # Refitting must never hurt substantially; typically it helps.
    assert daily_queue <= static_queue * 1.2


def test_monotonic_constraint_gain(once, record_result):
    generator = TraceGenerator(VENUS)
    history = generator.generate_history()
    jobs = generator.generate()
    for job in jobs:
        job.measured_profile = job.profile
    actual = np.log([j.duration for j in jobs])

    def build():
        model = WorkloadEstimateModel(random_state=0).fit(history)
        before = r2_score(actual, np.log(model.predict_batch(jobs)))
        SystemTuner.apply_monotonic_constraints(model)
        after = r2_score(actual, np.log(model.predict_batch(jobs)))
        return before, after

    before, after = once(build)
    table = ascii_table(
        ["estimator", "R2 (log duration)"],
        [["unconstrained", before], ["gpu_num monotone (PAV)", after]],
        title="System Tuner: monotonic constraint on gpu_num "
              "(paper: +2.6% R2)", precision=4)
    record_result("misc_monotonic_constraint", table)

    assert after >= before - 0.02
