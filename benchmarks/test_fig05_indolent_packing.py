"""Figure 5 — Indolent Packing decisions.

Lucid's non-intrusive policy splits all jobpair combinations into packable
(GSS sum <= 2) and interference-aware (GSS sum > 2).  The paper reports
that over 98.1% of packable pairs are interference-free (normalized speed
>= 0.85) and that the policy captures 87.0% of the total packing
opportunities.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.core import PackingAnalyzeModel
from repro.workloads import InterferenceModel, get_profile, measure_all_pairs

SPEED_THRESHOLD = 0.85


def test_fig05_indolent_packing_decisions(once, record_result):
    interference = InterferenceModel()

    def compute():
        model = PackingAnalyzeModel().fit(interference)
        measurements = measure_all_pairs(interference)
        packable, rejected = [], []
        for m in measurements:
            score = (model.sharing_score(get_profile(m.config_a))
                     + model.sharing_score(get_profile(m.config_b)))
            (packable if score <= 2 else rejected).append(m)
        return packable, rejected

    packable, rejected = once(compute)

    packable_speeds = np.array([m.average_speed for m in packable])
    rejected_speeds = np.array([m.average_speed for m in rejected])
    interference_free = float(np.mean(packable_speeds >= SPEED_THRESHOLD))
    total_good = sum(1 for m in packable + rejected
                     if m.average_speed >= SPEED_THRESHOLD)
    captured = float(np.sum(packable_speeds >= SPEED_THRESHOLD)
                     / max(1, total_good))

    rows = [
        ["packable (GSS <= 2)", len(packable),
         float(packable_speeds.mean()), float(packable_speeds.min())],
        ["interference-aware (GSS > 2)", len(rejected),
         float(rejected_speeds.mean()), float(rejected_speeds.min())],
    ]
    table = ascii_table(["decision", "pairs", "mean speed", "min speed"],
                        rows, title="Figure 5: Indolent Packing decisions")
    table += (f"\ninterference-free rate of packable pairs: "
              f"{interference_free:.1%}  (paper: 98.1%)"
              f"\npacking opportunities captured: {captured:.1%}"
              f"  (paper: 87.0%)")
    record_result("fig05_indolent_packing", table)

    # Shape assertions: the policy separates the two populations and packs
    # overwhelmingly interference-free pairs.
    assert interference_free >= 0.90
    assert captured >= 0.65
    assert packable_speeds.mean() > rejected_speeds.mean() + 0.08
