"""Figure 7 — global and local model interpretations.

(a) Throughput Predict Model global importances: the hour feature and
    recent-history (1-hour) features dominate.
(b) The learned hour shape function exhibits the diurnal pattern.
(c) Workload Estimate Model local explanation: one prediction decomposes
    into an intercept plus per-feature scores.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.core import ThroughputPredictModel, WorkloadEstimateModel
from repro.traces import SATURN, TraceGenerator, VENUS


def test_fig07ab_throughput_global_interpretation(once, record_result):
    generator = TraceGenerator(SATURN.with_jobs(3000))
    history = generator.generate_history()

    model = once(lambda: ThroughputPredictModel().fit_events(
        [j.submit_time for j in history]))

    explanation = model.explain_global()
    table = ascii_table(["feature", "avg |score|"],
                        explanation.top_features(10),
                        title="Figure 7a: throughput model importances "
                              "(Saturn)", precision=3)
    edges, values = model.hour_shape()
    bins = np.concatenate([[0.0], edges])
    shape_rows = [[f"hour >= {lo:.1f}", float(score)]
                  for lo, score in zip(bins, values)]
    table += "\n\n" + ascii_table(["bin", "score"], shape_rows,
                                  title="Figure 7b: hour shape function",
                                  precision=2)
    record_result("fig07ab_throughput_interpretation", table)

    top = [name for name, _ in explanation.top_features(6)]
    # Hour and 1-hour-ago features carry the signal (paper Figure 7a).
    assert any(n in top for n in ("hour", "shift_1h", "soft_1h",
                                  "roll_mean_1h", "roll_median_1h"))
    # Diurnal shape: afternoon bin scores above the overnight bins.
    afternoon = values[np.digitize(14.0, edges)]
    overnight = values[np.digitize(4.0, edges)]
    assert afternoon > overnight


def test_fig07c_duration_local_interpretation(once, record_result):
    generator = TraceGenerator(VENUS.with_jobs(1000))
    history = generator.generate_history()
    jobs = generator.generate()

    model = once(lambda: WorkloadEstimateModel(random_state=0).fit(history))

    job = jobs[len(jobs) // 3]
    job.measured_profile = job.profile
    local = model.explain_local(job)
    prediction = model.predict(job)

    rows = [(name, value, score)
            for name, value, score in local.sorted_by_magnitude()]
    table = ascii_table(["feature", "value", "score (log-s)"], rows,
                        title=f"Figure 7c: local explanation of job "
                              f"{job.name!r}", precision=3)
    table += (f"\nintercept {local.intercept:+.3f}, "
              f"sum -> {np.exp(local.prediction) / 3600:.2f} h model path; "
              f"final blended prediction {prediction / 3600:.2f} h "
              f"(actual {job.duration / 3600:.2f} h)")
    record_result("fig07c_duration_local", table)

    # Additivity: the contributions reconstruct the GA2M output exactly.
    assert local.prediction == pytest.approx(
        local.intercept + sum(s for _, _, s in local.contributions))
    assert len(local.contributions) >= 9
