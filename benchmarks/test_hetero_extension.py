"""Extension benchmark: heterogeneous GPU selection (paper §6).

Compares generation-aware Lucid (``HeteroLucidScheduler``) against
type-blind Lucid on two mixed-generation clusters: a fast-rich one (where
blind best-fit is already near-optimal) and a legacy-heavy one with scarce
A100s (where keeping long jobs off K80s is a large win).
"""

from repro import Simulator, TraceGenerator
from repro.analysis import ascii_table
from repro.cluster.hetero import (
    A100,
    K80,
    RTX3090,
    V100,
    build_heterogeneous_cluster,
)
from repro.core import LucidScheduler
from repro.core.hetero_lucid import HeteroLucidScheduler
from repro.traces import TraceSpec

SPEC = TraceSpec(
    name="hetero-bench", n_nodes=8, n_vcs=1, n_jobs=500, full_n_jobs=500,
    mean_duration=2500.0, span_days=0.5, n_users=16, seed=555,
)

LAYOUTS = {
    "fast-rich (2xA100, 3x3090, 2xV100, 1xK80)": {
        "vc01": [(A100, 2), (RTX3090, 3), (V100, 2), (K80, 1)],
    },
    "legacy-heavy (6xK80, 2xA100)": {
        "vc01": [(K80, 6), (A100, 2)],
    },
}


def _run(layout, scheduler_cls):
    generator = TraceGenerator(SPEC)
    history = generator.generate_history()
    jobs = generator.generate()
    cluster = build_heterogeneous_cluster(layout)
    return Simulator(cluster, jobs, scheduler_cls(history)).run()


def test_hetero_extension(once, record_result):
    def build():
        rows = []
        for name, layout in LAYOUTS.items():
            aware = _run(layout, HeteroLucidScheduler)
            blind = _run(layout, LucidScheduler)
            rows.append([name,
                         aware.avg_jct / 3600.0, blind.avg_jct / 3600.0,
                         blind.avg_jct / aware.avg_jct])
        return rows

    rows = once(build)
    table = ascii_table(
        ["cluster layout", "aware JCT (h)", "blind JCT (h)",
         "aware speedup"],
        rows, title="SS6 extension: generation-aware vs type-blind Lucid")
    record_result("ext_heterogeneous", table)

    by_layout = {row[0]: row[3] for row in rows}
    # Large win where fast silicon is scarce; competitive where plentiful.
    assert by_layout["legacy-heavy (6xK80, 2xA100)"] > 1.3
    assert by_layout[
        "fast-rich (2xA100, 3x3090, 2xV100, 1xK80)"] > 0.85
