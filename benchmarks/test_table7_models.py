"""Table 7 — interpretable models vs popular black boxes.

Throughput Predict Model is scored by MAE (lower better) and Workload
Estimate Model by R² (higher better) against Random Forest, LightGBM-like
and XGBoost-like GBDTs and a DNN, all trained on the same features.  The
paper's claim ("interpretability often begets accuracy") is that the GA²M
models win both tasks; the assertion here is that GA²M is at least
competitive with the best black box on both.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.core import ThroughputPredictModel, WorkloadEstimateModel
from repro.models import (
    MLPRegressor,
    RandomForestRegressor,
    hourly_series,
    lightgbm_like,
    mae,
    r2_score,
    throughput_feature_table,
    xgboost_like,
)
from repro.traces import TraceGenerator, VENUS

PAPER = {
    "throughput_mae": {"RF": 4.607, "LightGBM": 4.491, "XGBoost": 5.807,
                       "DNN": 5.132, "Lucid": 4.125},
    "workload_r2": {"RF": 0.101, "LightGBM": 0.230, "XGBoost": 0.332,
                    "DNN": 0.181, "Lucid": 0.413},
}


@pytest.fixture(scope="module")
def venus_data():
    generator = TraceGenerator(VENUS.with_jobs(2400))
    history = generator.generate_history()
    jobs = generator.generate()
    for job in jobs:
        job.measured_profile = job.profile
    return history, jobs


def _black_boxes():
    return {
        "RF": RandomForestRegressor(n_estimators=40, max_depth=12,
                                    random_state=0),
        "LightGBM": lightgbm_like(random_state=0),
        "XGBoost": xgboost_like(random_state=0),
        "DNN": MLPRegressor(hidden=(64, 32), epochs=60, random_state=0),
    }


def test_table7_throughput_mae(venus_data, once, record_result):
    history, jobs = venus_data

    def build():
        train_series, train_start = hourly_series(
            [j.submit_time for j in history])
        test_series, test_start = hourly_series(
            [j.submit_time for j in jobs])
        X_train, _ = throughput_feature_table(train_series, train_start)
        X_test, _ = throughput_feature_table(test_series, test_start)
        warm = 24  # skip lag-feature warm-up hours
        scores = {}
        for name, model in _black_boxes().items():
            model.fit(X_train, train_series)
            scores[name] = mae(test_series[warm:],
                               np.maximum(0, model.predict(X_test))[warm:])
        lucid = ThroughputPredictModel(random_state=0).fit_series(
            train_series, train_start)
        preds = lucid.predict_series(test_series, test_start)
        scores["Lucid"] = mae(test_series[warm:], preds[warm:])
        return scores

    scores = once(build)
    rows = [[name, scores[name], PAPER["throughput_mae"][name]]
            for name in ("RF", "LightGBM", "XGBoost", "DNN", "Lucid")]
    table = ascii_table(["model", "measured MAE", "paper MAE"], rows,
                        title="Table 7: throughput prediction (MAE, lower "
                              "is better)", precision=3)
    table += ("\n(deviation note: on our short synthetic series the numpy "
              "MLP edges out the GA2M; on the paper's months of real data "
              "the GA2M wins.  The GA2M stays within ~20% of the best "
              "black box and beats the GBDTs on Saturn.)")
    record_result("table7_throughput", table)

    best_black_box = min(v for k, v in scores.items() if k != "Lucid")
    assert scores["Lucid"] <= best_black_box * 1.3


def test_table7_workload_r2(venus_data, once, record_result):
    history, jobs = venus_data

    def build():
        lucid = WorkloadEstimateModel(random_state=0).fit(history)
        # Black boxes get the identical feature representation.
        X_train, y_train = lucid.training_matrix()
        X_test = lucid.featurize_jobs(jobs)
        y_test = np.log([j.duration for j in jobs])
        scores = {}
        for name, model in _black_boxes().items():
            model.fit(X_train, y_train)
            scores[name] = r2_score(y_test, model.predict(X_test))
        lucid_preds = np.log(lucid.predict_batch(jobs))
        scores["Lucid"] = r2_score(y_test, lucid_preds)
        return scores

    scores = once(build)
    rows = [[name, scores[name], PAPER["workload_r2"][name]]
            for name in ("RF", "LightGBM", "XGBoost", "DNN", "Lucid")]
    table = ascii_table(["model", "measured R2", "paper R2"], rows,
                        title="Table 7: duration estimation (R2, higher is "
                              "better)", precision=3)
    table += ("\n(Lucid combines the GA2M with explicit recurrence "
              "matching, which the black boxes lack — the paper's point)")
    record_result("table7_workload", table)

    best_black_box = max(v for k, v in scores.items() if k != "Lucid")
    assert scores["Lucid"] >= best_black_box - 0.05
    assert scores["Lucid"] > 0.3
