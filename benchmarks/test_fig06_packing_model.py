"""Figure 6 — the learned Packing Analyze Model.

Renders the pruned decision tree and its Gini feature importances, and
verifies the properties the paper reads off the figure: GPU utilization is
the dominant feature and the tree is compact enough to interpret.  Also
checks the §4.6 claim that the simple DT matches more complex classifiers
(random forest) on this ternary task (paper: 94.1% accuracy).
"""

import numpy as np

from repro.analysis import ascii_table
from repro.core import PackingAnalyzeModel
from repro.core.packing_model import FEATURE_NAMES, build_colocation_dataset
from repro.models import RandomForestClassifier, accuracy
from repro.workloads import InterferenceModel


def test_fig06_packing_model_interpretation(once, record_result):
    interference = InterferenceModel()
    model = once(lambda: PackingAnalyzeModel().fit(interference))

    text = "Figure 6: learned Packing Analyze Model\n\n"
    text += model.explain_text()
    text += "\n\n" + ascii_table(["feature", "Gini importance"],
                                 model.feature_importances(),
                                 title="Feature importances", precision=3)
    text += (f"\n\ntree leaves: {model.tree_.n_leaves_}, "
             f"depth: {model.tree_.depth_}, "
             f"training accuracy: {model.train_accuracy_:.1%} "
             "(paper: 94.1%)")
    record_result("fig06_packing_model", text)

    importances = dict(model.feature_importances())
    assert max(importances, key=importances.get) == "gpu_util"
    assert model.tree_.n_leaves_ <= 24  # interpretable after pruning
    assert model.train_accuracy_ >= 0.90


def test_fig06_dt_matches_black_box_accuracy(once, record_result):
    """The ternary task needs no black box: DT ~= random forest."""
    interference = InterferenceModel()
    X, y, _ = build_colocation_dataset(interference)
    rng = np.random.default_rng(3)
    idx = rng.permutation(len(y))
    split = int(0.7 * len(y))
    train, test = idx[:split], idx[split:]

    def run():
        dt = PackingAnalyzeModel()
        dt.fit(interference)  # trains on its own full characterization
        dt_acc = accuracy(y[test], dt.predict(X[test]))
        rf = RandomForestClassifier(n_estimators=30, max_depth=8,
                                    random_state=0).fit(X[train], y[train])
        rf_acc = accuracy(y[test], rf.predict(X[test]))
        return dt_acc, rf_acc

    dt_acc, rf_acc = once(run)
    table = ascii_table(
        ["model", "held-out accuracy"],
        [["decision tree (Lucid)", dt_acc], ["random forest", rf_acc]],
        title="Packing classification: DT vs black-box (paper: equivalent)",
        precision=3)
    record_result("fig06_dt_vs_rf", table)

    assert dt_acc >= 0.85
    assert dt_acc >= rf_acc - 0.05  # interpretable model gives nothing up
