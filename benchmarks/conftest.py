"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The main
end-to-end sweep (3 clusters x 6 schedulers) is expensive, so it runs once
per session and is shared by the Table 4/5 and Figure 8/9 benchmarks.

Each benchmark prints its table *and* writes it to
``benchmarks/results/<name>.txt`` so the artifacts survive pytest's output
capture; EXPERIMENTS.md indexes them.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional

import pytest

from repro import Simulator, TraceGenerator, make_scheduler
from repro.core import LucidConfig, LucidScheduler
from repro.sim import SimulationResult
from repro.traces import PHILLY, SATURN, VENUS, TraceSpec

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SCHEDULERS = ("fifo", "sjf", "qssf", "horus", "tiresias", "lucid")
CLUSTERS: Dict[str, TraceSpec] = {
    "venus": VENUS,
    "saturn": SATURN,
    "philly": PHILLY,
}


def run_sim(spec: TraceSpec, scheduler_name: str,
            config: Optional[LucidConfig] = None) -> SimulationResult:
    """Generate the trace for ``spec`` and replay it under one scheduler."""
    generator = TraceGenerator(spec)
    cluster = generator.build_cluster()
    history = generator.generate_history()
    jobs = generator.generate()
    if scheduler_name == "lucid" and config is not None:
        scheduler = LucidScheduler(history, config=config)
    else:
        scheduler = make_scheduler(scheduler_name, history)
    return Simulator(cluster, jobs, scheduler).run()


@pytest.fixture(scope="session")
def e2e_results() -> Dict[str, Dict[str, SimulationResult]]:
    """The full 3-cluster x 6-scheduler sweep (Table 4 raw data)."""
    out: Dict[str, Dict[str, SimulationResult]] = {}
    for cluster_name, spec in CLUSTERS.items():
        out[cluster_name] = {}
        for scheduler_name in SCHEDULERS:
            out[cluster_name][scheduler_name] = run_sim(spec, scheduler_name)
    return out


@pytest.fixture(scope="session")
def record_result():
    """Print a benchmark table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    Reproduction benchmarks are full simulations; statistical re-runs would
    multiply minutes of work for no extra information, so a single timed
    round is recorded.
    """

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _once
