"""Table 3 — physical-testbed vs simulation fidelity.

The paper runs a 100-job static trace (makespan) and a 120-job continuous
Poisson trace (average JCT) on a 32-GPU physical cluster and in its
simulator, finding <4.6% disagreement.  We have no physical testbed; its
stand-in is a second simulation configured with measurement jitter — the
interference model's per-pair noise re-drawn and profiling measurements
re-sampled — which captures the run-to-run variability a real testbed
exhibits.  The benchmark asserts (a) the paper's scheduler ordering
(FIFO > SJF > Tiresias > Lucid on both metrics) and (b) agreement between
the two configurations within the paper's error band.
"""

import numpy as np
import pytest

from repro import Simulator, TraceGenerator, make_scheduler
from repro.analysis import ascii_table
from repro.traces import TraceSpec
from repro.workloads import InterferenceModel

# 4 servers x 8 GPUs, jobs sampled from Venus (paper §4.2).
STATIC = TraceSpec(name="testbed-static", n_nodes=4, n_vcs=1, n_jobs=100,
                   full_n_jobs=100, mean_duration=5_419.0, span_days=0.01,
                   n_users=16, seed=51)
CONTINUOUS = TraceSpec(name="testbed-cont", n_nodes=4, n_vcs=1, n_jobs=120,
                       full_n_jobs=120, mean_duration=10_000.0,
                       span_days=0.4, n_users=16, seed=52)

SCHEDULERS = ("fifo", "sjf", "tiresias", "lucid")

PAPER_STATIC_MAKESPAN = {"fifo": 11.34, "sjf": 11.02, "tiresias": 9.68,
                         "lucid": 8.17}
PAPER_CONTINUOUS_JCT = {"fifo": 7.97, "sjf": 4.46, "tiresias": 4.16,
                        "lucid": 3.49}


#: The physical experiment ran ~half a day, so sampled jobs were bounded;
#: cap the synthetic durations accordingly or a single multi-day tail job
#: dominates every makespan.
MAX_DURATION = 6 * 3600.0


def _run(spec: TraceSpec, scheduler_name: str, physical: bool):
    generator = TraceGenerator(spec)
    cluster = generator.build_cluster()
    history = generator.generate_history(3.0)
    jobs = generator.generate()
    for job in jobs:
        job.duration = min(job.duration, MAX_DURATION)
    scheduler = make_scheduler(scheduler_name, history)
    interference = (InterferenceModel(pair_noise_std=0.05)
                    if physical else InterferenceModel())
    if physical:
        # Testbed stand-in: per-job duration jitter from run-to-run system
        # variance (data loading, thermals), ~0.3% std.
        rng = np.random.default_rng(spec.seed + 7)
        for job in jobs:
            job.duration = float(job.duration * rng.normal(1.0, 0.003))
    return Simulator(cluster, jobs, scheduler, interference=interference).run()


@pytest.fixture(scope="module")
def table3():
    rows = {}
    for scheduler_name in SCHEDULERS:
        rows[scheduler_name] = {
            "static_phys": _run(STATIC, scheduler_name, True).makespan / 3600,
            "static_sim": _run(STATIC, scheduler_name, False).makespan / 3600,
            "cont_phys": _run(CONTINUOUS, scheduler_name, True).avg_jct / 3600,
            "cont_sim": _run(CONTINUOUS, scheduler_name, False).avg_jct / 3600,
        }
    return rows


def test_table3_simulation_fidelity(table3, once, record_result):
    rows = once(lambda: [
        [name, data["static_phys"], data["static_sim"],
         abs(data["static_phys"] - data["static_sim"]) / data["static_sim"],
         data["cont_phys"], data["cont_sim"],
         abs(data["cont_phys"] - data["cont_sim"]) / data["cont_sim"]]
        for name, data in table3.items()
    ])
    table = ascii_table(
        ["scheduler", "static testbed (h)", "static sim (h)", "static err",
         "cont testbed (h)", "cont sim (h)", "cont err"],
        rows, title="Table 3: testbed(stand-in) vs simulation", precision=3)
    table += "\n(paper reports <4.6% disagreement on both metrics)"
    record_result("table3_fidelity", table)

    for row in rows:
        assert row[3] < 0.08, f"{row[0]} static divergence too large"
        assert row[6] < 0.08, f"{row[0]} continuous divergence too large"


def test_table3_scheduler_ordering(table3, once, record_result):
    measured_static = {k: v["static_sim"] for k, v in table3.items()}
    measured_cont = {k: v["cont_sim"] for k, v in table3.items()}

    def build():
        from repro.analysis import comparison_table
        return (comparison_table("scheduler", PAPER_STATIC_MAKESPAN,
                                 measured_static,
                                 title="Table 3 static makespan (hours)")
                + "\n\n"
                + comparison_table("scheduler", PAPER_CONTINUOUS_JCT,
                                   measured_cont,
                                   title="Table 3 continuous avg JCT (hours)"))

    record_result("table3_ordering", once(build))

    # Paper ordering on the continuous trace: FIFO > SJF > Tiresias > Lucid.
    assert measured_cont["fifo"] > measured_cont["sjf"]
    assert measured_cont["sjf"] > measured_cont["lucid"]
    assert measured_cont["lucid"] <= measured_cont["tiresias"] * 1.05
    # Static makespan: Lucid within a whisker of the best (paper: best).
    assert measured_static["lucid"] <= min(measured_static.values()) * 1.1
