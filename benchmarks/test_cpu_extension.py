"""Extension benchmark: affiliated CPU resources (paper §6, Synergy-style).

With the CPU model enabled, packing two data-loading-hungry jobs
oversubscribes node CPUs and slows both.  Lucid's binder prefers mates
whose combined CPU demand fits the node (a soft, Synergy-style ranking —
never a veto, since under contention packing still beats queuing); the
ablation makes mate ranking CPU-blind and measures the cost.
"""

from repro import Simulator, TraceGenerator
from repro.analysis import ascii_table
from repro.core import LucidScheduler
from repro.core.binder import AffineJobpairBinder
from repro.traces import TraceSpec

SPEC = TraceSpec(
    name="cpu-bench", n_nodes=6, n_vcs=1, n_jobs=800, full_n_jobs=800,
    mean_duration=2500.0, span_days=0.4, n_users=16, seed=313,
)


class _CPUBlindBinder(AffineJobpairBinder):
    """Binder variant that ignores node CPU budgets when ranking mates."""

    @staticmethod
    def _cpu_overload(engine, job, mate):
        return 0.0


def _run(cpu_aware: bool):
    generator = TraceGenerator(SPEC)
    cluster = generator.build_cluster()
    history = generator.generate_history()
    jobs = generator.generate()
    scheduler = LucidScheduler(history)
    simulator = Simulator(cluster, jobs, scheduler, model_cpu=True)
    if not cpu_aware:
        original_attach = scheduler.attach

        def attach(engine):
            original_attach(engine)
            blind = _CPUBlindBinder(
                gss_capacity=scheduler.config.gss_capacity)
            blind.mode = scheduler.binder.mode
            scheduler.binder = blind

        scheduler.attach = attach
    return simulator.run()


def test_cpu_extension(once, record_result):
    def build():
        aware = _run(cpu_aware=True)
        blind = _run(cpu_aware=False)
        rows = [
            ["CPU-aware binder", aware.avg_jct / 3600.0,
             aware.avg_queue_delay / 3600.0,
             aware.utilization.gpu_shared],
            ["CPU-blind binder", blind.avg_jct / 3600.0,
             blind.avg_queue_delay / 3600.0,
             blind.utilization.gpu_shared],
        ]
        return rows

    rows = once(build)
    table = ascii_table(
        ["binder", "avg JCT (h)", "avg queue (h)", "GPU shared"],
        rows, title="SS6 extension: affiliated-CPU-aware packing",
        precision=3)
    record_result("ext_cpu", table)

    aware, blind = rows
    # Respecting CPU budgets when packing must not hurt and typically
    # helps (CPU-starved pairs run below half speed).
    assert aware[1] <= blind[1] * 1.05
