"""Figure 14 — comparison with the elastic scheduler Pollux (§4.7).

(a) Average JCT under workload intensities 0.5x..2.5x of a 160-job trace:
    Pollux's elasticity wins when the cluster is light, but Lucid takes
    over as the load grows (the paper's crossover).
(b) Validation-accuracy curves with and without adaptive batch-size
    training: adaptivity costs ~2.2% final accuracy (89.84% vs 87.63%),
    which Lucid never sacrifices (G3/A3).
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.schedulers.pollux import PolluxSimulator, validation_accuracy
from repro.traces import TraceSpec

from conftest import run_sim

BASE = TraceSpec(name="pollux-trace", n_nodes=8, n_vcs=1, n_jobs=160,
                 full_n_jobs=160, mean_duration=4_000.0, span_days=0.35,
                 n_users=24, seed=61)

INTENSITIES = (0.5, 1.0, 1.5, 2.0, 2.5)


def _spec_at(intensity: float) -> TraceSpec:
    """Scale the submission rate by compressing the arrival window."""
    return BASE.with_jobs(int(BASE.n_jobs * intensity))


def test_fig14a_intensity_sweep(once, record_result):
    def build():
        rows = []
        for intensity in INTENSITIES:
            spec = _spec_at(intensity)
            lucid = run_sim(spec, "lucid").avg_jct / 3600.0
            tiresias = run_sim(spec, "tiresias").avg_jct / 3600.0
            from repro.traces import TraceGenerator
            generator = TraceGenerator(spec)
            generator.build_cluster()
            generator.generate_history()
            jobs = generator.generate()
            pollux = PolluxSimulator(
                n_gpus=spec.n_gpus).run(jobs).avg_jct / 3600.0
            rows.append([f"{intensity:.1f}x", lucid, pollux, tiresias])
        return rows

    rows = once(build)
    table = ascii_table(
        ["intensity", "lucid JCT (h)", "pollux JCT (h)",
         "tiresias JCT (h)"],
        rows, title="Figure 14a: average JCT vs workload intensity")
    table += ("\n(paper: Pollux wins at light load; Lucid wins as load "
              "grows)")
    record_result("fig14a_intensity", table)

    lucid = [row[1] for row in rows]
    pollux = [row[2] for row in rows]
    # At the lightest intensity Pollux's elasticity is competitive.
    assert pollux[0] <= lucid[0] * 1.3
    # At the heaviest intensity Lucid is clearly better.
    assert lucid[-1] < pollux[-1]
    # Lucid's relative advantage grows with intensity.
    assert (pollux[-1] / lucid[-1]) > (pollux[0] / lucid[0])


def test_fig14b_model_quality_preservation(once, record_result):
    def build():
        normal = validation_accuracy(200, adaptive=False)
        adaptive = validation_accuracy(200, adaptive=True)
        return normal, adaptive

    normal, adaptive = once(build)
    rows = [[epoch, float(normal[epoch - 1]), float(adaptive[epoch - 1])]
            for epoch in (10, 50, 100, 150, 200)]
    table = ascii_table(
        ["epoch", "Lucid (no adaptation)", "Pollux (adaptive)"],
        rows, title="Figure 14b: EfficientNet validation accuracy (%)")
    table += (f"\nbest: {normal.max():.2f}% vs {adaptive.max():.2f}% "
              "(paper: 89.84% vs 87.63%)")
    record_result("fig14b_accuracy", table)

    assert normal.max() == pytest.approx(89.84, abs=0.5)
    assert adaptive.max() == pytest.approx(87.63, abs=0.5)
    assert normal.max() - adaptive.max() > 2.0
