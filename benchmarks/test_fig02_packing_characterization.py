"""Figure 2 — colocation characterization.

(a) Normalized jobpair speed against accumulated GPU utilization, with the
    fitted-curve anchor near 0.92x at 100% accumulated utilization.
(b) Average packing effect of batch size and mixed precision: AMP pairs
    retain more speed at every batch size.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.workloads import (
    InterferenceModel,
    MODEL_ZOO,
    get_profile,
    measure_all_pairs,
)
from repro.workloads.model_zoo import WorkloadConfig


def test_fig02a_speed_vs_accumulated_util(once, record_result):
    model = InterferenceModel()
    measurements = once(measure_all_pairs, model)

    utils = np.array([m.accumulated_util for m in measurements])
    speeds = np.array([m.average_speed for m in measurements])
    rows = []
    for lo in range(0, 200, 25):
        mask = (utils >= lo) & (utils < lo + 25)
        if mask.any():
            rows.append([f"{lo}-{lo + 25}", int(mask.sum()),
                         float(speeds[mask].mean()),
                         float(speeds[mask].min())])
    table = ascii_table(
        ["accumulated util (%)", "pairs", "mean speed", "min speed"], rows,
        title="Figure 2a: jobpair speed vs accumulated GPU utilization")
    near_100 = float(speeds[(utils > 90) & (utils < 110)].mean())
    table += (f"\nmean speed near 100% accumulated util: {near_100:.3f}"
              f"  (paper: ~0.92)")
    record_result("fig02a_packing_curve", table)

    assert 0.85 <= near_100 <= 0.97
    # Monotone degradation across buckets.
    means = [row[2] for row in rows]
    assert all(a >= b - 0.02 for a, b in zip(means, means[1:]))


def test_fig02b_batch_size_and_amp(once, record_result):
    model = InterferenceModel()

    def measure():
        rows = []
        for batch in (32, 64, 128):
            for amp in (False, True):
                speeds = []
                for name, spec in MODEL_ZOO.items():
                    if batch not in spec.batch_sizes:
                        continue
                    if amp and not spec.supports_amp:
                        continue
                    profile = spec.profile(batch, amp)
                    for mate_name, mate_spec in MODEL_ZOO.items():
                        mate = mate_spec.profile(
                            64 if 64 in mate_spec.batch_sizes else
                            mate_spec.batch_sizes[0], False)
                        if not model.memory_fits((profile, mate)):
                            continue
                        pair = model.pair_speeds(
                            profile, mate, pair_key=(name, mate_name))
                        speeds.append(pair.first)
                rows.append([batch, int(amp), float(np.mean(speeds))])
        return rows

    rows = once(measure)
    table = ascii_table(["batch size", "AMP", "mean packed speed"], rows,
                        title="Figure 2b: batch size / AMP packing effect",
                        precision=3)
    record_result("fig02b_batch_amp", table)

    by_key = {(batch, amp): speed for batch, amp, speed in rows}
    # AMP delivers extra packing benefit at every batch size (Figure 2b).
    for batch in (32, 64, 128):
        assert by_key[(batch, 1)] > by_key[(batch, 0)]
    # Larger batches pack slightly worse (higher utilization).
    assert by_key[(128, 0)] < by_key[(32, 0)]
