"""Extension benchmark: SLO/deadline awareness (paper §6).

30% of jobs carry deadlines (slack 1.3-2.5x their duration); SLO-aware
Lucid must raise deadline attainment over plain Lucid without wrecking
best-effort JCT.
"""

from repro import Simulator, TraceGenerator
from repro.analysis import ascii_table
from repro.core import LucidScheduler, SLOLucidScheduler
from repro.traces import TraceSpec, assign_deadlines, slo_report

SPEC = TraceSpec(
    name="slo-bench", n_nodes=6, n_vcs=2, n_jobs=500, full_n_jobs=500,
    mean_duration=2200.0, span_days=0.4, n_users=16, seed=911,
)


def _run(scheduler_cls):
    generator = TraceGenerator(SPEC)
    cluster = generator.build_cluster()
    history = generator.generate_history()
    jobs = generator.generate()
    assign_deadlines(jobs, fraction=0.3, slack_range=(1.3, 2.5), seed=1)
    result = Simulator(cluster, jobs, scheduler_cls(history)).run()
    return slo_report(result), result


def test_slo_extension(once, record_result):
    def build():
        rows = []
        for name, cls in (("lucid", LucidScheduler),
                          ("lucid-slo", SLOLucidScheduler)):
            report, result = _run(cls)
            rows.append([
                name,
                int(report["n_slo_jobs"]),
                report["attainment"],
                report["mean_lateness_hrs"],
                report["best_effort_jct_hrs"],
                result.avg_jct / 3600.0,
            ])
        return rows

    rows = once(build)
    table = ascii_table(
        ["scheduler", "SLO jobs", "attainment", "mean lateness (h)",
         "best-effort JCT (h)", "overall JCT (h)"],
        rows, title="SS6 extension: deadline attainment", precision=3)
    record_result("ext_slo", table)

    plain, slo = rows
    assert slo[2] >= plain[2]          # attainment improves (or ties)
    assert slo[2] >= 0.6               # most deadlines are met
    assert slo[4] <= plain[4] * 1.5 + 0.1  # best-effort cost bounded
