"""Table 5 — large-scale vs small-scale jobs on Venus.

Large-scale (> 8 GPUs) jobs must not starve under Lucid: the paper shows
Lucid beating Tiresias on both classes, with FIFO catastrophically bad for
small jobs (head-of-line blocking behind big ones).
"""

from repro.analysis import ascii_table

PAPER = {
    ("large", "jct"): {"fifo": 9.96, "tiresias": 6.08, "lucid": 4.59},
    ("small", "jct"): {"fifo": 19.55, "tiresias": 3.75, "lucid": 3.46},
    ("large", "queue"): {"fifo": 6.22, "tiresias": 2.34, "lucid": 0.86},
    ("small", "queue"): {"fifo": 16.34, "tiresias": 0.54, "lucid": 0.19},
}

SCHEDULERS = ("fifo", "tiresias", "lucid")


def test_table5_scale_split(e2e_results, once, record_result):
    results = e2e_results["venus"]

    def build():
        rows = []
        for scale in ("large", "small"):
            for scheduler in SCHEDULERS:
                stats = results[scheduler].scale_split()[scale]
                rows.append([
                    scale, scheduler, stats.n_jobs,
                    stats.avg_jct / 3600.0,
                    stats.avg_queue_delay / 3600.0,
                    PAPER[(scale, "jct")][scheduler],
                    PAPER[(scale, "queue")][scheduler],
                ])
        return rows

    rows = once(build)
    table = ascii_table(
        ["scale", "scheduler", "n", "avg JCT (h)", "avg queue (h)",
         "paper JCT (h)", "paper queue (h)"],
        rows, title="Table 5 [venus]: large-scale (>8 GPU) vs small-scale")
    record_result("table5_job_scale", table)

    split = {s: results[s].scale_split() for s in SCHEDULERS}
    # The trace actually contains both classes.
    assert split["lucid"]["large"].n_jobs > 0
    assert split["lucid"]["small"].n_jobs > 0
    # Lucid beats FIFO on both classes, and matches-or-beats Tiresias'
    # queuing for large jobs (no starvation).
    for scale in ("large", "small"):
        assert (split["lucid"][scale].avg_jct
                < split["fifo"][scale].avg_jct)
    assert (split["lucid"]["large"].avg_queue_delay
            <= split["tiresias"]["large"].avg_queue_delay * 1.5)
    # Small jobs: Lucid's queuing clearly better than FIFO's HOL blocking.
    assert (split["lucid"]["small"].avg_queue_delay * 3
            < split["fifo"]["small"].avg_queue_delay)
