"""Figure 3 — representative packing examples.

(a) ResNet-18 colocated with PointNet/PPO is nearly free while DCGAN/LSTM
    cost ~25-40%.
(b) Packing two copies of the same job at 1/2/4/8 GPUs yields the same
    per-GPU behaviour — single-node parallel jobs pack as well as 1-GPU
    jobs, which is what makes packing applicable to >95% of workloads.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.cluster import Cluster, find_consolidated
from repro.schedulers.base import Scheduler
from repro.sim import Simulator
from repro.workloads import InterferenceModel, Job, WorkloadConfig, get_profile


def test_fig03a_resnet18_pairs(once, record_result):
    model = InterferenceModel()
    resnet18 = get_profile(WorkloadConfig("ResNet-18", 64, False))

    def measure():
        rows = []
        for partner in ("ResNet-18", "DCGAN", "LSTM", "PPO", "PointNet"):
            mate = get_profile(WorkloadConfig(partner, 64, False))
            speeds = model.pair_speeds(resnet18, mate,
                                       pair_key=("ResNet-18", partner))
            rows.append([f"ResNet-18 + {partner}",
                         speeds.first, speeds.second])
        return rows

    rows = once(measure)
    table = ascii_table(["jobpair", "ResNet-18 speed", "partner speed"],
                        rows, title="Figure 3a: colocating with ResNet-18")
    record_result("fig03a_resnet18_pairs", table)

    speeds = {row[0].split(" + ")[1]: row[1] for row in rows}
    assert speeds["PointNet"] > 0.9
    assert speeds["PPO"] > 0.9
    assert speeds["DCGAN"] < 0.85
    assert speeds["LSTM"] < 0.92
    assert speeds["DCGAN"] < speeds["PointNet"]


class _PackPair(Scheduler):
    """Places job 1 exclusively and packs job 2 onto its GPUs."""

    def schedule(self, now):
        for job in list(self.queue):
            running = self.engine.running_jobs()
            if running:
                self.engine.start_job(job, self.engine.gpus_of(running[0]))
            else:
                gpus = find_consolidated(self.engine.cluster, job.gpu_num)
                self.engine.start_job(job, gpus)
            self.queue.remove(job)


def _same_job_pair_speed(config: WorkloadConfig, gpu_num: int) -> float:
    """Measured normalized speed of two identical jobs packed together."""
    profile = get_profile(config)
    jobs = [
        Job(job_id=i, name=f"j{i}", user="u", vc="default", submit_time=0.0,
            duration=1000.0, gpu_num=gpu_num, profile=profile)
        for i in (1, 2)
    ]
    cluster = Cluster.homogeneous(1)
    result = Simulator(cluster, jobs, _PackPair(),
                       interference=InterferenceModel(pair_noise_std=0.0)).run()
    jcts = [r.jct for r in result.records]
    return float(np.mean([1000.0 / jct for jct in jcts]))


def test_fig03b_gpu_count_invariance(once, record_result):
    heavy = WorkloadConfig("ResNet-50", 64, False)
    light = WorkloadConfig("EfficientNet", 64, False)

    def measure():
        rows = []
        for gpu_num in (1, 2, 4, 8):
            rows.append([
                gpu_num,
                _same_job_pair_speed(heavy, gpu_num),
                _same_job_pair_speed(light, gpu_num),
            ])
        return rows

    rows = once(measure)
    table = ascii_table(
        ["GPU count", "ImageNet (ResNet-50)", "CIFAR-10 (EfficientNet)"],
        rows, title="Figure 3b: same-job packing across GPU counts")
    table += ("\n(paper: ~0.54 for the heavy job, ~0.95 for the light one, "
              "invariant in GPU count)")
    record_result("fig03b_gpu_invariance", table)

    heavy_speeds = [row[1] for row in rows]
    light_speeds = [row[2] for row in rows]
    # Per-GPU-count invariance: spread within a couple of percent.
    assert max(heavy_speeds) - min(heavy_speeds) < 0.03
    assert max(light_speeds) - min(light_speeds) < 0.03
    # Light jobs pack nearly free; heavy jobs pay heavily.
    assert min(light_speeds) > 0.9
    assert max(heavy_speeds) < 0.75
