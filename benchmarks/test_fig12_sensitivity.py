"""Figure 12 — workload-distribution sensitivity (Venus-L/M/H).

Generates Venus variants whose workload mix skews light, medium or heavy
in GPU utilization and verifies (a) the utilization CDFs are ordered
L < M < H (Figure 12a) and (b) Lucid keeps beating Tiresias on queuing
under all three distributions (Figure 12b; paper: 1.8-4.2x).
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.traces import TraceGenerator, VENUS, utilization_variants
from repro.traces.utilization import mean_utilization

from conftest import run_sim


@pytest.fixture(scope="module")
def variants():
    return utilization_variants(VENUS)


def test_fig12a_utilization_distributions(variants, once, record_result):
    def build():
        rows = []
        for level in ("L", "M", "H"):
            jobs = TraceGenerator(variants[level]).generate()
            utils = np.array([j.profile.gpu_util for j in jobs])
            rows.append([
                f"venus-{level}",
                mean_utilization(jobs),
                float(np.mean(utils <= 25.0)),
                float(np.mean(utils <= 50.0)),
                float(np.mean(utils <= 75.0)),
            ])
        return rows

    rows = once(build)
    table = ascii_table(
        ["trace", "mean util (gpu-weighted)", "<=25%", "<=50%", "<=75%"],
        rows, title="Figure 12a: generated utilization distributions")
    record_result("fig12a_distributions", table)

    means = [row[1] for row in rows]
    assert means[0] < means[1] < means[2]  # L < M < H


def test_fig12b_lucid_vs_tiresias_across_mixes(variants, once,
                                               record_result):
    def build():
        rows = []
        for level in ("L", "M", "H"):
            spec = variants[level]
            lucid = run_sim(spec, "lucid")
            tiresias = run_sim(spec, "tiresias")
            rows.append([
                f"venus-{level}",
                lucid.avg_jct / 3600.0,
                tiresias.avg_jct / 3600.0,
                lucid.avg_queue_delay / 3600.0,
                tiresias.avg_queue_delay / 3600.0,
                tiresias.avg_queue_delay / max(lucid.avg_queue_delay, 1e-9),
            ])
        return rows

    rows = once(build)
    table = ascii_table(
        ["trace", "lucid JCT (h)", "tiresias JCT (h)", "lucid queue (h)",
         "tiresias queue (h)", "queue improvement"],
        rows, title="Figure 12b: Lucid vs Tiresias under L/M/H mixes")
    table += "\n(paper: 1.8-4.2x queuing-delay reduction)"
    record_result("fig12b_sensitivity", table)

    for row in rows:
        # Lucid maintains its JCT advantage under every distribution.
        assert row[1] <= row[2] * 1.02, f"lost JCT edge on {row[0]}"
        assert row[5] >= 1.0, f"lost queuing edge on {row[0]}"
