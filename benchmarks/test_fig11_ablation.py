"""Figure 11 — ablation studies.

(a) On Venus: full Lucid vs Lucid w/o Binder (naive bin-packing), w/o
    Estimator (runtime-agnostic), w/o Sharing (packing disabled), QSSF,
    and the Optimal no-queuing bound.  The paper's reading: indolent
    packing cuts queuing vs naive packing, runtime-awareness cuts it
    further, and even the weakest Lucid variant beats QSSF.
(b) Space-aware Profiling vs naive FIFO profiling: profiling-stage queuing
    across the three clusters (paper: up to 11.6x improvement).
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.core import LucidConfig

from conftest import CLUSTERS, VENUS, run_sim


@pytest.fixture(scope="module")
def ablation_results():
    variants = {
        "lucid": None,
        "lucid w/o binder": LucidConfig(packing_policy="naive"),
        "lucid w/o estimator": LucidConfig(enable_estimator=False),
        "lucid w/o sharing": LucidConfig(packing_policy="off"),
    }
    out = {}
    for name, config in variants.items():
        out[name] = run_sim(VENUS, "lucid", config=config)
    out["qssf"] = run_sim(VENUS, "qssf")
    return out


def test_fig11a_component_ablation(ablation_results, once, record_result):
    results = ablation_results

    def build():
        # "Optimal" = average JCT minus average queuing delay of the
        # non-intrusive baselines (all jobs run with zero queuing).
        optimal = (results["qssf"].avg_jct
                   - results["qssf"].avg_queue_delay) / 3600.0
        rows = [["optimal (no queuing)", optimal, 0.0]]
        for name in ("lucid", "lucid w/o binder", "lucid w/o estimator",
                     "lucid w/o sharing", "qssf"):
            rows.append([name, results[name].avg_jct / 3600.0,
                         results[name].avg_queue_delay / 3600.0])
        return rows

    rows = once(build)
    table = ascii_table(["variant", "avg JCT (h)", "avg queue (h)"], rows,
                        title="Figure 11a [venus]: component ablation")
    record_result("fig11a_ablation", table)

    queue = {row[0]: row[2] for row in rows}
    jct = {row[0]: row[1] for row in rows}
    # Full Lucid is the best variant.
    assert queue["lucid"] == min(v for k, v in queue.items()
                                 if k != "optimal (no queuing)")
    # Indolent packing beats naive bin-packing.
    assert queue["lucid"] <= queue["lucid w/o binder"]
    # Runtime-awareness helps substantially.
    assert queue["lucid"] < queue["lucid w/o estimator"]
    # Lucid still beats QSSF on queuing even with sharing fully disabled
    # (paper: >2x), thanks to the profiler and duration estimation.
    for variant in ("lucid", "lucid w/o sharing"):
        assert queue[variant] < queue["qssf"]
    # Full Lucid approaches the optimal bound.
    assert jct["lucid"] < jct["qssf"]


@pytest.mark.parametrize("cluster_name", list(CLUSTERS))
def test_fig11b_space_aware_profiling(cluster_name, once, record_result):
    """Space-aware vs naive profiling, T_prof=500s as in the paper."""
    spec = CLUSTERS[cluster_name]

    def profiling_queue(space_aware: bool) -> float:
        config = LucidConfig(t_prof=500.0, space_aware_profiling=space_aware,
                             time_aware_scaling=False)
        result = run_sim(spec, "lucid", config=config)
        profiled = [r for r in result.records if r.finished_in_profiler]
        if not profiled:
            return 0.0
        return float(np.mean([r.queue_delay for r in profiled]))

    def build():
        return profiling_queue(True), profiling_queue(False)

    with_sa, without_sa = once(build)
    table = ascii_table(
        ["strategy", "profiling-stage avg queue (s)"],
        [["space-aware", with_sa], ["naive FIFO", without_sa]],
        title=f"Figure 11b [{cluster_name}]: profiling queue "
              "(T_prof=500s)")
    table += "\n(paper: space-aware up to 11.6x better)"
    record_result(f"fig11b_space_aware_{cluster_name}", table)

    assert with_sa <= without_sa * 1.05 + 1.0
