"""Figure 13 — prediction visualizations.

(a) Throughput Predict Model tracking daily job-submission counts on
    Saturn's evaluation period: the forecast follows the real trend with
    small errors.
(b) Workload Estimate Model duration estimates on Venus: long-term and
    short-term jobs are clearly distinguished even when individual
    estimates are imperfect.
"""

import numpy as np
from scipy import stats

from repro.analysis import ascii_table
from repro.core import ThroughputPredictModel, WorkloadEstimateModel
from repro.models import hourly_series, mae, r2_score
from repro.traces import SATURN, TraceGenerator, VENUS


def test_fig13a_throughput_tracking(once, record_result):
    generator = TraceGenerator(SATURN)
    history = generator.generate_history()
    jobs = generator.generate()

    def build():
        model = ThroughputPredictModel(random_state=0).fit_events(
            [j.submit_time for j in history])
        series, start = hourly_series([j.submit_time for j in jobs])
        preds = model.predict_series(series, start)
        return series, preds

    series, preds = once(build)
    warm = 24
    err = mae(series[warm:], preds[warm:])
    naive = mae(series[warm:], np.full_like(series[warm:],
                                            series[warm:].mean()))
    # Daily aggregation for the Figure-13a style visual comparison.
    days = len(series) // 24
    rows = []
    for day in range(days):
        lo, hi = day * 24, (day + 1) * 24
        rows.append([day + 1, float(series[lo:hi].sum()),
                     float(preds[lo:hi].sum())])
    table = ascii_table(["day", "real submissions", "predicted"], rows,
                        title="Figure 13a [saturn]: daily job submissions",
                        precision=0)
    table += (f"\nhourly MAE {err:.2f} vs naive-mean baseline "
              f"{naive:.2f}")
    record_result("fig13a_throughput_tracking", table)

    assert err < naive * 0.95, "forecast should beat the mean baseline"
    # Figure 13a plots *daily* submissions; at the daily aggregation the
    # forecast must track the real trend closely.  (Hourly correlation is
    # bounded by the synthetic burst hours, which are random by
    # construction and genuinely unpredictable.)
    scored = rows[1:]  # day 1 is lag-feature warm-up
    tracked = sum(1 for _, real, predicted in scored
                  if abs(predicted - real) <= 0.25 * max(real, 1.0))
    # A majority of days track within 25%; isolated synthetic surge days
    # (random burst hours) can exceed any forecaster's reach.
    assert tracked >= (len(scored) + 1) // 2


def test_fig13b_duration_estimates(once, record_result):
    generator = TraceGenerator(VENUS)
    history = generator.generate_history()
    jobs = generator.generate()
    for job in jobs:
        job.measured_profile = job.profile

    def build():
        model = WorkloadEstimateModel(random_state=0).fit(history)
        preds = model.predict_batch(jobs)
        actual = np.array([j.duration for j in jobs])
        return preds, actual

    preds, actual = once(build)
    spearman = float(stats.spearmanr(actual, preds).correlation)
    log_r2 = r2_score(np.log(actual), np.log(preds))

    # Short/long separation: the paper's visual claim.
    short_mask = actual <= 600.0
    long_mask = actual >= 4 * 3600.0
    short_pred = float(np.median(preds[short_mask]))
    long_pred = float(np.median(preds[long_mask]))
    table = ascii_table(
        ["metric", "value"],
        [["jobs evaluated", len(jobs)],
         ["Spearman rank correlation", spearman],
         ["R2 on log-duration", log_r2],
         ["median prediction for <=10min jobs (s)", short_pred],
         ["median prediction for >=4h jobs (s)", long_pred]],
        title="Figure 13b [venus]: duration estimation quality",
        precision=3)
    record_result("fig13b_duration_estimates", table)

    assert spearman > 0.55
    assert log_r2 > 0.3
    # Long-term and short-term jobs are well distinguished (paper's claim).
    assert long_pred > 10 * short_pred
