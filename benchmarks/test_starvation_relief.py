"""Ablation: starvation relief for multi-node jobs (DESIGN.md §4).

Non-preemptive priority scheduling can starve multi-node jobs behind
small-job backfill.  This reproduction adds relaxed (fragmented) placement
after a waiting threshold; the ablation shows it is what delivers Table
5's no-starvation property, at a modest cost to small jobs.
"""

from repro.analysis import ascii_table
from repro.core import LucidConfig

from conftest import VENUS, run_sim


def test_starvation_relief_ablation(once, record_result):
    def build():
        rows = []
        for label, threshold in (("relief @8h (default)", 8 * 3600.0),
                                 ("relief disabled", 1e15)):
            result = run_sim(VENUS, "lucid",
                             config=LucidConfig(
                                 starvation_threshold=threshold))
            split = result.scale_split()
            rows.append([
                label,
                result.avg_jct / 3600.0,
                split["large"].avg_queue_delay / 3600.0,
                split["small"].avg_queue_delay / 3600.0,
                result.queue_percentile(99.9) / 3600.0,
            ])
        return rows

    rows = once(build)
    table = ascii_table(
        ["variant", "avg JCT (h)", "large-job queue (h)",
         "small-job queue (h)", "p99.9 queue (h)"],
        rows, title="Starvation relief ablation on Venus")
    record_result("misc_starvation_relief", table)

    with_relief, without = rows
    # Relief keeps multi-node jobs from starving...
    assert with_relief[2] <= without[2] + 0.5
    # ... without wrecking the overall average.
    assert with_relief[1] <= without[1] * 1.3
