"""Table 6 — sensitivity to the profiling time limit T_prof.

Higher T_prof completes more jobs inside the profiler but inflates
profiling-stage queuing; overall JCT stays comparatively stable.  The
paper picks 200 s as the default.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table
from repro.core import LucidConfig

from conftest import VENUS, run_sim

T_PROFS = (100.0, 200.0, 300.0, 600.0)

PAPER = {
    100: {"finish_rate": 0.2765, "prof_queue": 21, "jct": 13_087,
          "queue": 1_074},
    200: {"finish_rate": 0.4461, "prof_queue": 73, "jct": 12_886,
          "queue": 915},
    300: {"finish_rate": 0.5373, "prof_queue": 175, "jct": 13_160,
          "queue": 1_222},
    600: {"finish_rate": 0.6440, "prof_queue": 509, "jct": 13_270,
          "queue": 1_422},
}


def test_table6_tprof_sensitivity(once, record_result):
    def build():
        rows = []
        for t_prof in T_PROFS:
            config = LucidConfig(t_prof=t_prof, time_aware_scaling=False)
            result = run_sim(VENUS, "lucid", config=config)
            profiled = [r for r in result.records if r.finished_in_profiler]
            prof_queue = (float(np.mean([r.queue_delay for r in profiled]))
                          if profiled else 0.0)
            rows.append([
                int(t_prof),
                result.profiler_finish_rate(),
                prof_queue,
                result.avg_jct / 3600.0,
                result.avg_queue_delay / 3600.0,
                PAPER[int(t_prof)]["finish_rate"],
            ])
        return rows

    rows = once(build)
    table = ascii_table(
        ["T_prof (s)", "profiler finish rate", "profiling queue (s)",
         "avg JCT (h)", "avg queue (h)", "paper finish rate"],
        rows, title="Table 6: T_prof sensitivity on Venus", precision=3)
    record_result("table6_tprof", table)

    finish_rates = [row[1] for row in rows]
    jcts = [row[3] for row in rows]
    # Finish rate grows monotonically with T_prof.
    assert all(a <= b + 0.02 for a, b in zip(finish_rates, finish_rates[1:]))
    # Finish rate at 200 s in the paper's ballpark (44.6%).
    assert 0.30 <= finish_rates[1] <= 0.60
    # Overall JCT is comparatively stable across the whole 6x T_prof range
    # (the paper reports a few percent; trace variance at our scale gives a
    # somewhat wider but still bounded spread).
    assert max(jcts) / min(jcts) < 1.5
