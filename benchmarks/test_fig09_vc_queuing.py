"""Figure 9 — per-VC average queuing delay.

Shows the top-8 VCs by queuing pressure per cluster (Philly has a single
VC).  The paper's observation: Lucid is stable across VCs while Tiresias
degrades in some of them due to preemption overheads.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table

from conftest import CLUSTERS, SCHEDULERS


@pytest.mark.parametrize("cluster_name", list(CLUSTERS))
def test_fig09_vc_queuing(cluster_name, e2e_results, once, record_result):
    results = e2e_results[cluster_name]

    def build():
        # Rank VCs by FIFO queuing pressure (the paper picks the top-8
        # highest-delay VCs).
        fifo_by_vc = results["fifo"].avg_queue_by_vc()
        top_vcs = sorted(fifo_by_vc, key=fifo_by_vc.get, reverse=True)[:8]
        rows = []
        for vc in top_vcs + ["all"]:
            row = [vc]
            for scheduler in SCHEDULERS:
                if vc == "all":
                    value = results[scheduler].avg_queue_delay
                else:
                    value = results[scheduler].avg_queue_by_vc().get(vc, 0.0)
                row.append(value / 3600.0)
            rows.append(row)
        return rows

    rows = once(build)
    table = ascii_table(["vc"] + list(SCHEDULERS), rows,
                        title=f"Figure 9 [{cluster_name}]: "
                              "avg queuing delay per VC (hours)")
    record_result(f"fig09_vc_{cluster_name}", table)

    all_row = rows[-1]
    by_sched = dict(zip(["vc"] + list(SCHEDULERS), all_row))
    # Cluster-wide: Lucid's queuing is the lowest among the non-packing
    # schedulers (Horus can hide queuing as slow packed execution).
    assert by_sched["lucid"] <= min(v for k, v in by_sched.items()
                                    if k not in ("vc", "horus")) * 1.06
    # Stability: in a majority of the top VCs Lucid beats or matches
    # Tiresias (Tiresias is "inferior in some VCs").
    per_vc = rows[:-1]
    idx_lucid = 1 + list(SCHEDULERS).index("lucid")
    idx_tiresias = 1 + list(SCHEDULERS).index("tiresias")
    wins = sum(1 for row in per_vc
               if row[idx_lucid] <= row[idx_tiresias] + 1e-9)
    assert wins >= max(1, len(per_vc) // 2)
