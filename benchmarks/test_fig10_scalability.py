"""Figure 10 — scalability analysis.

(a) Scheduling-decision latency under 128..2048 queued jobs, including
    model inference: the paper reports <3 ms at 2048 jobs, versus minutes
    for LP solvers (Gavel) and a super-linear blow-up for Pollux.  Pure
    Python is slower than the authors' setup, so the assertion is the
    paper's *scaling claim*: latency grows roughly linearly in queue
    length and stays in the real-time regime (milliseconds per job, far
    below any round interval).
(b) Model training time on each cluster's history: seconds for throughput
    models, and bounded minutes for duration models (paper: 1.4-11 min on
    10^5-10^7 samples; our histories are proportionally smaller).
"""

import time

import numpy as np

from repro.analysis import ascii_table
from repro.core import (
    LucidScheduler,
    PackingAnalyzeModel,
    ThroughputPredictModel,
    WorkloadEstimateModel,
)
from repro.sim import Simulator
from repro.traces import TraceGenerator, VENUS
from repro.workloads import InterferenceModel

from conftest import CLUSTERS


def _scheduling_latency(n_jobs: int) -> float:
    """Wall time of one full scheduling decision over ``n_jobs`` queued."""
    spec = VENUS.with_jobs(n_jobs).with_seed(77)
    generator = TraceGenerator(spec)
    cluster = generator.build_cluster()
    history = generator.generate_history(0.5)
    jobs = generator.generate()
    scheduler = LucidScheduler(history)
    sim = Simulator(cluster, jobs, scheduler)
    scheduler.attach(sim)
    # Enqueue everything as already-profiled pending jobs.
    for job in jobs:
        job.measured_profile = job.profile
        scheduler._admit_to_main(job)
    started = time.perf_counter()
    scheduler.schedule(0.0)
    return time.perf_counter() - started


def test_fig10a_scheduling_latency(benchmark, record_result):
    sizes = (128, 256, 512, 1024, 2048)
    latencies = {}
    for n in sizes[:-1]:
        latencies[n] = _scheduling_latency(n)
    # The headline 2048-job decision is the benchmarked quantity.
    latencies[2048] = benchmark.pedantic(
        lambda: _scheduling_latency(2048), rounds=1, iterations=1)

    rows = [[n, latencies[n] * 1e3, latencies[n] / n * 1e6]
            for n in sizes]
    table = ascii_table(
        ["queued jobs", "decision latency (ms)", "per-job latency (us)"],
        rows, title="Figure 10a: scheduling latency vs queue length")
    table += ("\n(paper: <3 ms at 2048 jobs on their hardware; Gavel needs "
              "~30 min, Pollux minutes-hours)")
    record_result("fig10a_scheduling_latency", table)

    # Real-time regime: well under a 10 s scheduling tick even at 2048.
    assert latencies[2048] < 10.0
    # Sub-quadratic scaling: 16x jobs cost far less than 256x time.
    assert latencies[2048] / max(latencies[128], 1e-9) < 80.0


def test_fig10b_model_training_time(once, record_result):
    def measure():
        rows = []
        for cluster_name, spec in CLUSTERS.items():
            generator = TraceGenerator(spec)
            history = generator.generate_history()
            started = time.perf_counter()
            WorkloadEstimateModel(random_state=0).fit(history)
            estimate_time = time.perf_counter() - started
            started = time.perf_counter()
            ThroughputPredictModel().fit_events(
                [j.submit_time for j in history])
            throughput_time = time.perf_counter() - started
            rows.append([cluster_name, len(history), estimate_time,
                         throughput_time])
        started = time.perf_counter()
        PackingAnalyzeModel().fit(InterferenceModel())
        packing_time = time.perf_counter() - started
        return rows, packing_time

    rows, packing_time = once(measure)
    table = ascii_table(
        ["cluster", "history jobs", "estimate model (s)",
         "throughput model (s)"],
        rows, title="Figure 10b: model training time")
    table += (f"\nPacking Analyze Model training: {packing_time:.2f} s "
              "(paper: <1 s, cluster-agnostic)")
    record_result("fig10b_training_time", table)

    for row in rows:
        assert row[2] < 660.0, "duration model training exceeds 11 min"
        assert row[3] < 60.0, "throughput model should train in seconds"
