"""Figure 8 — JCT CDFs across the three clusters.

The paper's reading of the figure: Lucid's curve dominates FIFO's
everywhere, nearly overlaps Tiresias' for long jobs, and sits clearly to
the left of (above) it for short jobs — the preemption-free policy matches
the preemptive one where it matters and wins on short-job latency.
"""

import numpy as np
import pytest

from repro.analysis import ascii_table

from conftest import CLUSTERS, SCHEDULERS

GRID = [60.0, 600.0, 3600.0, 6 * 3600.0, 24 * 3600.0, 100 * 3600.0]


@pytest.mark.parametrize("cluster_name", list(CLUSTERS))
def test_fig08_jct_cdf(cluster_name, e2e_results, once, record_result):
    results = e2e_results[cluster_name]

    def build():
        rows = []
        for scheduler in SCHEDULERS:
            xs, cdf = results[scheduler].jct_cdf(grid=GRID)
            rows.append([scheduler] + [float(c) for c in cdf])
        return rows

    rows = once(build)
    headers = ["scheduler"] + [f"<= {int(g)}s" for g in GRID]
    table = ascii_table(headers, rows,
                        title=f"Figure 8 [{cluster_name}]: "
                              "fraction of jobs finished by JCT bound")
    record_result(f"fig08_cdf_{cluster_name}", table)

    cdf = {row[0]: row[1:] for row in rows}
    # Lucid dominates FIFO at every grid point.
    assert all(l >= f - 1e-9 for l, f in zip(cdf["lucid"], cdf["fifo"]))
    # Short-job advantage over Tiresias at the 60 s point (debugging
    # feedback fast path); near-parity at 10 min.
    assert cdf["lucid"][0] >= cdf["tiresias"][0] - 0.01
    assert cdf["lucid"][1] >= cdf["tiresias"][1] - 0.06
    # Long-job parity: within a few percent of Tiresias at the 24 h point.
    assert cdf["lucid"][4] >= cdf["tiresias"][4] - 0.05
