"""Table 4 — end-to-end comparison across Venus, Saturn and Philly.

Average JCT, average queuing delay and P99.9 queuing delay for all six
schedulers on all three clusters.  The reproduction targets the paper's
*shape*: Lucid best everywhere, FIFO worst by a large factor, Lucid
improving 1.1-1.3x on Tiresias' JCT and substantially on its queuing.
"""

import pytest

from repro.analysis import ascii_table, comparison_table
from repro.sim import speedup

from conftest import CLUSTERS, SCHEDULERS

PAPER_AVG_JCT = {
    "venus": {"fifo": 18.57, "sjf": 5.86, "qssf": 5.15, "horus": 4.41,
              "tiresias": 4.09, "lucid": 3.58},
    "saturn": {"fifo": 14.21, "sjf": 2.36, "qssf": 2.41, "horus": 2.13,
               "tiresias": 1.89, "lucid": 1.79},
    "philly": {"fifo": 36.85, "sjf": 9.41, "qssf": 9.03, "horus": 10.49,
               "tiresias": 9.02, "lucid": 6.84},
}
PAPER_AVG_QUEUE = {
    "venus": {"fifo": 15.30, "sjf": 2.59, "qssf": 1.88, "horus": 1.14,
              "tiresias": 0.82, "lucid": 0.25},
    "saturn": {"fifo": 12.61, "sjf": 0.76, "qssf": 0.80, "horus": 0.53,
               "tiresias": 0.28, "lucid": 0.16},
    "philly": {"fifo": 30.45, "sjf": 3.01, "qssf": 2.63, "horus": 4.09,
               "tiresias": 2.62, "lucid": 0.29},
}
PAPER_P999_QUEUE = {
    "venus": {"fifo": 163.07, "sjf": 89.47, "qssf": 352.89, "horus": 58.80,
              "tiresias": 55.39, "lucid": 26.15},
    "saturn": {"fifo": 56.39, "sjf": 39.20, "qssf": 137.82, "horus": 36.03,
               "tiresias": 26.62, "lucid": 19.28},
    "philly": {"fifo": 117.55, "sjf": 101.60, "qssf": 125.57,
               "horus": 223.47, "tiresias": 98.80, "lucid": 71.22},
}


@pytest.mark.parametrize("cluster_name", list(CLUSTERS))
def test_table4_cluster(cluster_name, e2e_results, once, record_result):
    results = e2e_results[cluster_name]
    measured_jct = {s: results[s].avg_jct / 3600 for s in SCHEDULERS}
    measured_queue = {s: results[s].avg_queue_delay / 3600
                      for s in SCHEDULERS}
    measured_p999 = {s: results[s].queue_percentile(99.9) / 3600
                     for s in SCHEDULERS}

    def build():
        parts = [
            comparison_table("scheduler", PAPER_AVG_JCT[cluster_name],
                             measured_jct,
                             title=f"Table 4 [{cluster_name}] avg JCT (h)"),
            comparison_table("scheduler", PAPER_AVG_QUEUE[cluster_name],
                             measured_queue,
                             title=f"Table 4 [{cluster_name}] avg queue (h)"),
            comparison_table("scheduler", PAPER_P999_QUEUE[cluster_name],
                             measured_p999,
                             title=f"Table 4 [{cluster_name}] P99.9 queue (h)"),
        ]
        return "\n\n".join(parts)

    record_result(f"table4_{cluster_name}", once(build))

    # --- shape assertions -------------------------------------------------
    # Lucid has (essentially) the best average JCT and strictly the best
    # average queuing delay.  On the lightly-loaded Philly preset the JCT
    # spread between the duration-aware schedulers is within noise, so a
    # 2% tolerance is allowed there.
    # Lucid leads every *deployable* scheduler; the SJF oracle (which
    # knows exact durations, including unpredictable early failures) may
    # edge it out by a few percent on some realizations.
    assert measured_jct["lucid"] <= min(measured_jct.values()) * 1.06
    # Horus's eager packing can report near-zero queuing by starting jobs
    # packed (and slow) instead of queued, so the queuing comparison is
    # against the non-packing schedulers.
    non_packing = [s for s in SCHEDULERS if s != "horus"]
    assert measured_queue["lucid"] <= min(measured_queue[s]
                                          for s in non_packing) * 1.06
    # FIFO is the worst by a wide margin (paper: 5.2-7.9x vs Lucid).
    # Philly's single 640-GPU pool softens head-of-line blocking at our
    # scale, so the bound is looser there.
    fifo_bound = {"venus": 3.0, "saturn": 3.0, "philly": 1.1}[cluster_name]
    assert speedup(measured_jct["fifo"], measured_jct["lucid"]) > fifo_bound
    # Lucid vs Tiresias JCT in or beyond the paper's 1.1-1.3x band.
    assert measured_jct["tiresias"] / measured_jct["lucid"] >= 1.0


def test_table4_tiresias_gap_summary(e2e_results, once, record_result):
    def build():
        rows = []
        for cluster_name in CLUSTERS:
            results = e2e_results[cluster_name]
            rows.append([
                cluster_name,
                results["tiresias"].avg_jct / results["lucid"].avg_jct,
                results["tiresias"].avg_queue_delay
                / max(results["lucid"].avg_queue_delay, 1e-9),
                results["fifo"].avg_jct / results["lucid"].avg_jct,
            ])
        return ascii_table(
            ["cluster", "JCT: tiresias/lucid", "queue: tiresias/lucid",
             "JCT: fifo/lucid"],
            rows, title="Headline improvement factors "
                        "(paper: 1.1-1.3x, 1.8-9.1x, 5.2-7.9x)")

    record_result("table4_headline_factors", once(build))
