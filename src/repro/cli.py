"""Command-line interface: ``python -m repro <command>``.

Commands
--------
simulate
    Generate a synthetic trace (or load a CSV) and replay it under one
    scheduler; prints the summary metrics and optionally exports per-job
    records.  ``--trace-out DIR`` additionally records full telemetry.
trace
    Replay a trace with the observability layer enabled and export the
    structured event log (JSONL), the scheduler decision audit and a
    Chrome trace-event timeline loadable in chrome://tracing / Perfetto.
compare
    Run several schedulers over the same trace and print a Table-4-style
    comparison.
models
    Train Lucid's three interpretable models on a trace's history and
    print their interpretations (Figures 6/7).
packing
    Print the colocation characterization and Indolent Packing decisions
    (Figures 2/5).
bench
    Run the seeded benchmark scenario matrix with the simulator
    profiler attached and write a ``BENCH_<timestamp>.json`` perf
    record; ``--against FILE`` diffs against a previous bench file and
    exits non-zero when events/sec regressed beyond ``--threshold``.
report
    Run one simulation with the full observability stack (profiler,
    series collector, attribution-enabled audit) and write a
    self-contained ``report.html`` plus its ``report.json`` twin;
    ``--against FILE`` embeds a bench-baseline diff table.
explain
    Print the recorded placement explanation of one job — either from a
    fresh run or from a previously exported ``audit.jsonl``; supports
    ``--what-if feature=value`` counterfactual probes.
why
    Answer "why was this job slow?": decompose one job's JCT into
    pending-profiling / pending-main-queue / sharing-slowdown /
    preemption-overhead / fault-retry / pure-compute components that
    sum exactly to the JCT, name the jobs that blocked it, and print
    its causal critical path.  Works live (run a preset) or offline
    (``--trace events.jsonl`` from a previous ``repro trace`` export).
serve
    Run the crash-recoverable scheduler service (:mod:`repro.serve`):
    a daemon with a file inbox + localhost HTTP frontend for runtime
    job submission, sqlite snapshots and a checksummed WAL.
serve-chaos
    The SIGKILL crash harness: run an uncrashed control, then seeded
    kill points; assert every recovery is bit-identical to the control
    (per-tick state digests and final metrics).

The global ``--log-level`` flag (before the command) controls the
``repro.*`` logger tree, e.g. ``repro --log-level info simulate``.
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
import time
from typing import List, Optional, Sequence

from repro import Simulator, TraceGenerator, get_spec, make_scheduler
from repro.analysis import ascii_table, user_fairness
from repro.obs import (
    LOG_FORMATS,
    LOG_LEVELS,
    RingBufferTracer,
    configure_logging,
    get_logger,
    write_chrome_trace,
)
from repro.sim import SimulationResult

SCHEDULER_CHOICES = ("fifo", "sjf", "qssf", "horus", "tiresias", "lucid")

logger = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lucid (ASPLOS '23) reproduction toolkit")
    parser.add_argument("--log-level", default="warning", choices=LOG_LEVELS,
                        help="verbosity of the repro.* loggers")
    parser.add_argument("--log-format", default="text",
                        choices=LOG_FORMATS,
                        help="log line format; 'json' emits structured "
                             "lines carrying the correlation ids "
                             "(tick, job_id, wal_segment)")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="replay one trace/scheduler")
    _trace_args(sim)
    sim.add_argument("--scheduler", default="lucid",
                     choices=SCHEDULER_CHOICES)
    sim.add_argument("--export", metavar="CSV",
                     help="write per-job records to a CSV file")
    sim.add_argument("--trace-out", metavar="DIR",
                     help="enable telemetry and write events.jsonl, "
                          "audit.jsonl and timeline.json to DIR")

    trace_cmd = sub.add_parser(
        "trace", help="replay with telemetry and export event/audit/"
                      "timeline artifacts")
    _trace_args(trace_cmd)
    trace_cmd.add_argument("--scheduler", default="lucid",
                           choices=SCHEDULER_CHOICES)
    trace_cmd.add_argument("--out", metavar="DIR", default="trace-out",
                           help="output directory (default: trace-out)")
    trace_cmd.add_argument("--explain", type=int, default=5, metavar="N",
                           help="print the first N placement explanations")
    trace_cmd.add_argument("--tail", type=int, default=None, metavar="N",
                           help="print the last N retained trace events")
    trace_cmd.add_argument("--job", type=int, default=None, metavar="ID",
                           help="restrict the event table and --tail "
                                "output to one job's events")
    trace_cmd.add_argument("--kind", action="append", default=None,
                           metavar="KIND",
                           help="restrict to one event kind (repeatable, "
                                "e.g. --kind start --kind preempt)")

    cmp_cmd = sub.add_parser("compare", help="compare schedulers")
    _trace_args(cmp_cmd)
    cmp_cmd.add_argument("--schedulers", default=",".join(SCHEDULER_CHOICES),
                         help="comma-separated scheduler list")

    models = sub.add_parser("models", help="inspect interpretable models")
    _trace_args(models)

    packing = sub.add_parser("packing", help="colocation characterization")
    packing.add_argument("--threshold", type=float, default=0.85,
                         help="interference-free speed threshold")

    lint = sub.add_parser(
        "lint", help="determinism linter (RPR rules; exit 1 on findings)")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--project", action="store_true",
                      help="whole-program mode: index the package's "
                           "import/call graphs and run the architecture "
                           "(RPR10x), replay-safety (RPR11x) and "
                           "hot-path (RPR12x) packs on top of the "
                           "per-file rules")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", help="report format")
    lint.add_argument("--baseline", metavar="FILE",
                      default=os.path.join("benchmarks",
                                           "lint_baseline.json"),
                      help="ratchet baseline (default: "
                           "benchmarks/lint_baseline.json)")
    lint.add_argument("--ratchet", action="store_true",
                      help="fail only on findings absent from the "
                           "baseline (existing debt is tolerated, new "
                           "debt is not)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline file from this run's "
                           "findings and exit 0")

    bench = sub.add_parser(
        "bench", help="run the perf scenario matrix; exit 1 on regression")
    bench.add_argument("--quick", action="store_true",
                       help="run the small per-PR matrix instead of the "
                            "full scheduler sweep")
    bench.add_argument("--out", metavar="FILE", default=None,
                       help="output path (default: BENCH_<timestamp>.json)")
    bench.add_argument("--against", metavar="FILE", default=None,
                       help="baseline bench file to diff the run against")
    bench.add_argument("--candidate", metavar="FILE", default=None,
                       help="diff this existing bench file against "
                            "--against instead of running the matrix")
    bench.add_argument("--threshold", type=float, default=0.25,
                       help="events/sec regression fraction that fails "
                            "the diff (default: 0.25)")
    bench.add_argument("--schedulers", default=None,
                       help="comma-separated scheduler subset override")
    bench.add_argument("--jobs", type=int, default=None,
                       help="override the job count of every scenario")

    report = sub.add_parser(
        "report", help="run once and write a self-contained HTML+JSON "
                       "run report")
    _trace_args(report)
    report.add_argument("--scheduler", default="lucid",
                        choices=SCHEDULER_CHOICES)
    report.add_argument("--out", metavar="DIR", default="report-out",
                        help="output directory (default: report-out)")
    report.add_argument("--against", metavar="FILE", default=None,
                        help="bench baseline to diff this run against "
                             "(matching scenarios only)")
    report.add_argument("--series-interval", type=float, default=300.0,
                        help="time-series sampling interval in simulated "
                             "seconds (default: 300)")

    serve = sub.add_parser(
        "serve", help="run the crash-recoverable scheduler service")
    serve.add_argument("--state-dir", required=True, metavar="DIR",
                       help="durable state directory (store, WAL, inbox)")
    serve.add_argument("--trace", default=None,
                       help="trace preset sizing the cluster/history "
                            "(default: venus for a new store; omit every "
                            "config flag to restart on the stored config)")
    serve.add_argument("--scheduler", default=None,
                       choices=SCHEDULER_CHOICES)
    serve.add_argument("--jobs", type=int, default=None,
                       help="trace-spec job-count override")
    serve.add_argument("--seed", type=int, default=None,
                       help="trace-spec seed override")
    serve.add_argument("--faults", metavar="SPEC", default=None,
                       help="fault-injection spec armed at genesis "
                            "(the chaos driver)")
    serve.add_argument("--batch", type=int, default=None,
                       help="admission batch size per tick (default: 8)")
    serve.add_argument("--events-per-tick", type=int, default=None,
                       help="max event batches advanced per tick "
                            "(default: 64)")
    serve.add_argument("--http-port", type=int, default=None,
                       metavar="PORT",
                       help="enable the localhost HTTP frontend "
                            "(0 = ephemeral port; default: disabled)")
    serve.add_argument("--poll-interval", type=float, default=0.05,
                       help="idle inbox poll interval in wall seconds")
    serve.add_argument("--snapshot-every", type=int, default=25,
                       help="snapshot + WAL rotation period in ticks")
    serve.add_argument("--inbox-capacity", type=int, default=64,
                       help="pending-spec bound before 429 backpressure")
    serve.add_argument("--no-fsync", action="store_true",
                       help="skip fsync on WAL appends (faster; still "
                            "safe against SIGKILL, not power loss)")
    serve.add_argument("--exit-when-idle", action="store_true",
                       help="drain and exit once admitted work "
                            "completes (batch/CI mode)")
    serve.add_argument("--no-telemetry", action="store_true",
                       help="disable the live telemetry plane "
                            "(Prometheus /metrics, /dashboard, latency "
                            "histograms); scheduling is bit-identical "
                            "either way")
    serve.add_argument("--telemetry-refresh", type=int, default=10,
                       metavar="TICKS",
                       help="publish profiler span summaries and "
                            "WAL/store sizes every N ticks "
                            "(default: 10)")

    status = sub.add_parser(
        "serve-status", help="scrape a running serve daemon and render "
                             "a one-screen summary")
    status.add_argument("--url", required=True, metavar="URL",
                        help="daemon base URL, e.g. "
                             "http://127.0.0.1:8080 (printed at serve "
                             "startup)")
    status.add_argument("--timeout", type=float, default=5.0,
                        help="HTTP timeout in seconds (default: 5)")
    status.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")

    chaos = sub.add_parser(
        "serve-chaos", help="SIGKILL crash harness: prove bit-identical "
                            "recovery against an uncrashed control")
    chaos.add_argument("--workdir", required=True, metavar="DIR",
                       help="scratch directory for control + trial "
                            "state dirs")
    chaos.add_argument("--trace", default="venus")
    chaos.add_argument("--scheduler", default="lucid",
                       choices=SCHEDULER_CHOICES)
    chaos.add_argument("--jobs", type=int, default=120,
                       help="trace job count (default: 120)")
    chaos.add_argument("--seed", type=int, default=7,
                       help="trace seed (default: 7)")
    chaos.add_argument("--faults", metavar="SPEC", default=None,
                       help="fault spec forwarded to every run")
    chaos.add_argument("--points", type=int, default=20,
                       help="number of seeded SIGKILL points "
                            "(default: 20)")
    chaos.add_argument("--chaos-seed", type=int, default=1,
                       help="seed of the kill-point RNG (default: 1)")
    chaos.add_argument("--batch", type=int, default=8)
    chaos.add_argument("--events-per-tick", type=int, default=64)
    chaos.add_argument("--timeout", type=float, default=600.0,
                       help="per-run wall-clock timeout in seconds")

    explain = sub.add_parser(
        "explain", help="explain one job's recorded placement decision")
    _trace_args(explain)
    explain.add_argument("job_id", type=int,
                         help="job id to explain")
    explain.add_argument("--scheduler", default="lucid",
                         choices=SCHEDULER_CHOICES)
    explain.add_argument("--audit", metavar="FILE", default=None,
                         help="read decisions from an exported "
                              "audit.jsonl instead of running a "
                              "simulation")
    explain.add_argument("--format", choices=("text", "json"),
                         default="text", help="output format")
    explain.add_argument("--what-if", metavar="FEATURE=VALUE",
                         action="append", default=None,
                         help="counterfactual probe: re-run the frozen "
                              "duration model with one feature "
                              "overridden (repeatable; requires a live "
                              "run, not --audit)")

    why = sub.add_parser(
        "why", help="decompose one job's JCT from the causal event "
                    "lineage: where the time went and who blocked it")
    _trace_args(why)
    why.add_argument("job_id", type=int, help="job id to decompose")
    why.add_argument("--scheduler", default="lucid",
                     choices=SCHEDULER_CHOICES)
    why.add_argument("--format", choices=("text", "json"),
                     default="text", help="output format")
    why.add_argument("--path", type=int, default=8, metavar="N",
                     help="show the last N critical-path events "
                          "(default: 8; 0 hides the path)")
    return parser


def _trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default="venus",
                        help="venus|saturn|philly or a CSV file path")
    parser.add_argument("--jobs", type=int, default=None,
                        help="override the job count")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the trace seed")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="fault-injection spec: a JSON file, inline "
                             "JSON, or key=value pairs (e.g. "
                             "'node_mtbf=43200,crash_rate=0.2,seed=7')")
    parser.add_argument("--sanitize", action="store_true",
                        help="assert simulation-state invariants at every "
                             "event dispatch (repro.checks sanitizer)")


def _fault_spec(args):
    """Parsed --faults spec, or ``None`` when faults are disabled."""
    raw = getattr(args, "faults", None)
    if raw is None:
        return None
    from repro.faults import FaultSpec
    return FaultSpec.parse(raw)


def _load(args) -> tuple:
    """Resolve (cluster, history, jobs) from --trace/--jobs/--seed."""
    name = args.trace.lower()
    try:
        spec = get_spec(name)
    except KeyError:
        spec = None
    if spec is not None:
        if args.jobs is not None:
            spec = spec.with_jobs(args.jobs)
        if args.seed is not None:
            spec = spec.with_seed(args.seed)
        generator = TraceGenerator(spec)
        return (generator.build_cluster(), generator.generate_history(),
                generator.generate())
    # Treat --trace as a CSV file.
    from repro.cluster import Cluster
    from repro.traces.io import read_trace_csv, split_history
    jobs = read_trace_csv(args.trace, seed=args.seed or 0,
                          max_jobs=args.jobs)
    history, evaluation = split_history(jobs)
    peak = max((j.gpu_num for j in evaluation), default=1)
    vcs = sorted({j.vc for j in evaluation})
    demand = sum(j.duration * j.gpu_num for j in evaluation)
    span = max(1.0, evaluation[-1].submit_time) if evaluation else 1.0
    nodes_per_vc = max(peak // 8 + 1, int(demand / span / 0.5 / 8 /
                                          max(1, len(vcs))) + 1)
    cluster = Cluster({vc: nodes_per_vc for vc in vcs})
    return cluster, history, evaluation


def _summary_row(name: str, result: SimulationResult,
                 elapsed: float) -> List:
    summary = result.summary()
    return [
        name,
        summary["avg_jct_hrs"],
        summary["avg_queue_hrs"],
        summary["p999_queue_hrs"],
        summary["gpu_busy"],
        summary["profiler_finish_rate"],
        user_fairness(result) if result.records else 0.0,
        elapsed,
    ]


_HEADERS = ["scheduler", "avg JCT (h)", "avg queue (h)", "p99.9 queue (h)",
            "GPU busy", "profiler finish", "user fairness", "sim time (s)"]


def _write_telemetry(out_dir: str, result: SimulationResult,
                     tracer: RingBufferTracer) -> List[str]:
    """Export telemetry artifacts; returns the files written."""
    telemetry = result.telemetry
    written = [os.path.join(out_dir, "events.jsonl")]
    timeline_path = os.path.join(out_dir, "timeline.json")
    write_chrome_trace(timeline_path, telemetry.events,
                       queue_depth=telemetry.registry.gauge_series(
                           "queue_depth"))
    written.append(timeline_path)
    if telemetry.audit is not None:
        audit_path = os.path.join(out_dir, "audit.jsonl")
        telemetry.audit.to_jsonl(audit_path)
        written.append(audit_path)
    return written


def _run_traced(args, out_dir: str):
    """Run one traced simulation and export its artifacts.

    The JSONL sink is flushed/closed in a ``finally`` block so a
    simulation that raises mid-run still leaves a readable (partial)
    event log behind for post-mortem analysis.
    """
    os.makedirs(out_dir, exist_ok=True)
    cluster, history, jobs = _load(args)
    print(f"{len(jobs)} jobs on {cluster.n_gpus} GPUs "
          f"({len(cluster.vcs)} VCs) under {args.scheduler} [traced]")
    started = time.perf_counter()
    events_path = os.path.join(out_dir, "events.jsonl")
    tracer = RingBufferTracer(sink=events_path)
    try:
        simulator = Simulator(cluster, jobs,
                              make_scheduler(args.scheduler, history),
                              tracer=tracer, faults=_fault_spec(args),
                              sanitize=args.sanitize)
        result = simulator.run()
        _print_sanitizer_summary(simulator)
    except BaseException:
        print(f"simulation aborted; partial event log kept at {events_path}",
              file=sys.stderr)
        raise
    finally:
        tracer.close()
    elapsed = time.perf_counter() - started
    written = _write_telemetry(out_dir, result, tracer)
    for path in written:
        print(f"wrote {path}")
    return result, elapsed


def _print_sanitizer_summary(simulator: Simulator) -> None:
    if simulator.sanitizer is not None:
        print(simulator.sanitizer.summary())


def _print_fault_summary(result: SimulationResult) -> None:
    stats = result.faults
    if stats is None:
        return
    censored = (f" ({stats.censored_repairs} repair(s) still in flight)"
                if stats.censored_repairs else "")
    print(f"faults: {stats.node_failures} node failures, "
          f"{stats.job_crashes} job crashes, {stats.restarts} restarts, "
          f"{stats.jobs_failed} permanent failures | "
          f"goodput {stats.goodput:.1%}, "
          f"lost {stats.lost_gpu_hours:.1f} GPU-h, "
          f"MTTR {stats.mttr / 60.0:.1f} min{censored}")


def cmd_simulate(args) -> int:
    if args.trace_out:
        result, elapsed = _run_traced(args, args.trace_out)
    else:
        cluster, history, jobs = _load(args)
        print(f"{len(jobs)} jobs on {cluster.n_gpus} GPUs "
              f"({len(cluster.vcs)} VCs) under {args.scheduler}")
        started = time.perf_counter()
        simulator = Simulator(cluster, jobs,
                              make_scheduler(args.scheduler, history),
                              faults=_fault_spec(args),
                              sanitize=args.sanitize)
        result = simulator.run()
        elapsed = time.perf_counter() - started
        _print_sanitizer_summary(simulator)
    print(ascii_table(_HEADERS, [_summary_row(args.scheduler, result,
                                              elapsed)]))
    _print_fault_summary(result)
    if args.export:
        with open(args.export, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["job_id", "user", "vc", "gpu_num", "duration",
                             "jct", "queue_delay", "preemptions",
                             "finished_in_profiler"])
            for record in result.records:
                writer.writerow([
                    record.job_id, record.user, record.vc, record.gpu_num,
                    f"{record.duration:.1f}", f"{record.jct:.1f}",
                    f"{record.queue_delay:.1f}", record.preemptions,
                    int(record.finished_in_profiler),
                ])
        print(f"wrote {len(result.records)} records to {args.export}")
    return 0


def cmd_trace(args) -> int:
    result, _ = _run_traced(args, args.out)
    _print_fault_summary(result)
    telemetry = result.telemetry

    events = telemetry.events
    kinds = set(args.kind or ())
    if args.job is not None or kinds:
        events = [e for e in events
                  if (args.job is None or e.job_id == args.job)
                  and (not kinds or e.kind in kinds)]
        label = " ".join(filter(None, [
            f"job={args.job}" if args.job is not None else None,
            f"kind={','.join(sorted(kinds))}" if kinds else None]))
        print(f"filter {label}: {len(events)} of "
              f"{len(telemetry.events)} retained events match")
    counts: dict = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    print(ascii_table(["event kind", "count"],
                      [[kind, counts[kind]] for kind in sorted(counts)],
                      title="Trace events"))
    if telemetry.dropped_events:
        print(f"warning: ring buffer overflowed; {telemetry.dropped_events} "
              "oldest events dropped (retained events are a suffix of the "
              "run; the JSONL sink, if set, has the full log)",
              file=sys.stderr)
    if args.tail is not None and args.tail > 0:
        tail = events[-args.tail:]
        print(f"Last {len(tail)} of {len(events)} retained "
              "events:")
        for event in tail:
            print(f"  {event.to_json()}")
    metric_rows = []
    for name, value in telemetry.metrics.items():
        if isinstance(value, dict):  # histogram summary
            metric_rows.append([f"{name}.mean", value["mean"]])
            metric_rows.append([f"{name}.p99", value["p99"]])
        elif value is not None:
            metric_rows.append([name, value])
    print(ascii_table(["metric", "value"], metric_rows, title="Metrics"))

    audit = telemetry.audit
    if audit is not None and audit.records and args.explain > 0:
        print("Placement decisions (first "
              f"{min(args.explain, len(audit.records))} of "
              f"{len(audit.records)}; packing rate "
              f"{audit.packing_rate():.1%}):")
        for decision in audit.records[:args.explain]:
            print(f"  {decision.explain()}")
    return 0


def cmd_compare(args) -> int:
    names = [n.strip() for n in args.schedulers.split(",") if n.strip()]
    for name in names:
        if name not in SCHEDULER_CHOICES:
            logger.error("unknown scheduler %r", name)
            return 2
    rows = []
    for name in names:
        cluster, history, jobs = _load(args)
        started = time.perf_counter()
        # A fresh spec per scheduler: every run replays the identical
        # seeded fault timeline, keeping the comparison apples-to-apples.
        result = Simulator(cluster, jobs,
                           make_scheduler(name, history),
                           faults=_fault_spec(args),
                           sanitize=args.sanitize).run()
        rows.append(_summary_row(name, result,
                                 time.perf_counter() - started))
        logger.info("%s: done in %.1fs", name,
                    time.perf_counter() - started)
    print(ascii_table(_HEADERS, rows, title="Scheduler comparison"))
    return 0


def cmd_models(args) -> int:
    from repro.core import (
        PackingAnalyzeModel,
        ThroughputPredictModel,
        WorkloadEstimateModel,
    )
    from repro.workloads import InterferenceModel

    _, history, _ = _load(args)
    packing = PackingAnalyzeModel().fit(InterferenceModel())
    print("Packing Analyze Model (Figure 6):")
    print(packing.explain_text())
    print(ascii_table(["feature", "Gini importance"],
                      packing.feature_importances(), precision=3))

    throughput = ThroughputPredictModel().fit_events(
        [j.submit_time for j in history])
    print("\nThroughput Predict Model importances (Figure 7a):")
    print(ascii_table(["feature", "avg |score|"],
                      throughput.explain_global().top_features(8),
                      precision=3))

    estimator = WorkloadEstimateModel().fit(history)
    job = history[len(history) // 2]
    local = estimator.explain_local(job)
    print(f"\nWorkload Estimate Model local explanation for {job.name!r} "
          "(Figure 7c):")
    print(ascii_table(["feature", "value", "score"],
                      local.sorted_by_magnitude(), precision=3))
    return 0


def cmd_packing(args) -> int:
    import numpy as np

    from repro.core import PackingAnalyzeModel
    from repro.workloads import InterferenceModel, get_profile, \
        measure_all_pairs

    interference = InterferenceModel()
    measurements = measure_all_pairs(interference)
    model = PackingAnalyzeModel().fit(interference)
    packable = [m for m in measurements
                if model.sharing_score(get_profile(m.config_a))
                + model.sharing_score(get_profile(m.config_b)) <= 2]
    rejected = [m for m in measurements if m not in packable]
    good = sum(1 for m in packable if m.average_speed >= args.threshold)
    print(ascii_table(
        ["decision", "pairs", "mean speed"],
        [["packable (GSS <= 2)", len(packable),
          float(np.mean([m.average_speed for m in packable]))],
         ["rejected (GSS > 2)", len(rejected),
          float(np.mean([m.average_speed for m in rejected]))]],
        title="Indolent Packing decisions (Figure 5)"))
    print(f"interference-free rate: {good / max(1, len(packable)):.1%} "
          f"(threshold {args.threshold})")
    return 0


def cmd_bench(args) -> int:
    from repro.bench import (
        FULL_MATRIX,
        QUICK_MATRIX,
        BenchScenario,
        bench_filename,
        diff_bench,
        format_diff,
        load_bench,
        run_bench,
        write_bench,
    )

    if args.candidate is not None:
        # Diff-only mode: compare two existing bench files, run nothing.
        if args.against is None:
            print("error: --candidate requires --against", file=sys.stderr)
            return 2
        try:
            document = load_bench(args.candidate)
        except ValueError as exc:
            print(f"error: invalid bench file {args.candidate}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        scenarios = list(QUICK_MATRIX if args.quick else FULL_MATRIX)
        if args.schedulers is not None:
            wanted = [n.strip() for n in args.schedulers.split(",")
                      if n.strip()]
            for name in wanted:
                if name not in SCHEDULER_CHOICES:
                    print(f"error: unknown scheduler {name!r}",
                          file=sys.stderr)
                    return 2
            base = {(s.trace, s.jobs, s.seed) for s in scenarios}
            scenarios = [BenchScenario(name, trace, jobs, seed)
                         for trace, jobs, seed in sorted(base)
                         for name in wanted]
        if args.jobs is not None:
            scenarios = [BenchScenario(s.scheduler, s.trace, args.jobs,
                                       s.seed) for s in scenarios]
        document = run_bench(scenarios, quick=args.quick, progress=print)
        out = args.out or bench_filename()
        write_bench(document, out)
        totals = document["totals"]
        print(f"wrote {out}: {len(document['scenarios'])} scenarios, "
              f"{totals['events']} events in {totals['wall_seconds']:.2f}s "
              f"({totals['events_per_sec']:,.0f} ev/s)")
    if args.against is None:
        return 0
    try:
        baseline = load_bench(args.against)
    except ValueError as exc:
        print(f"error: invalid bench file {args.against}: {exc}",
              file=sys.stderr)
        return 2
    rows, regressions = diff_bench(baseline, document,
                                   threshold=args.threshold)
    print(format_diff(rows, regressions, args.threshold))
    return 1 if regressions else 0


def _report_bench_diff(args, profiler, result, n_jobs: int):
    """Diff this run against a bench baseline for the report.

    Builds a one-scenario pseudo-candidate from the run's own profiler
    and keeps only the rows touching this run's scenario key, so the
    embedded table answers "did *this* run regress?" rather than
    re-printing the whole baseline.
    """
    from repro.bench import BenchScenario, diff_bench, load_bench

    baseline = load_bench(args.against)
    seed = args.seed
    if seed is None:
        try:
            seed = get_spec(args.trace.lower()).seed
        except KeyError:
            seed = 0
    scenario = BenchScenario(args.scheduler, args.trace.lower(), n_jobs,
                             seed)
    profile = profiler.to_dict()
    entry = {
        "name": scenario.name,
        "scheduler": scenario.scheduler,
        "trace": scenario.trace,
        "jobs": scenario.jobs,
        "seed": scenario.seed,
        "wall_seconds": profile["wall_seconds"],
        "events": profile["events_processed"],
        "events_per_sec": profile["events_per_sec"],
        "peak_rss_mb": profile["peak_rss_mb"],
        "makespan_hrs": result.makespan / 3600.0,
        "avg_jct_hrs": result.avg_jct / 3600.0,
        "phases": {},
    }
    rows, regressions = diff_bench(baseline, {"scenarios": [entry]})
    rows = [row for row in rows if row["name"] == scenario.name]
    regressions = [r for r in regressions if r.startswith(scenario.name)]
    if not rows:
        rows = [{"name": scenario.name, "baseline_eps": None,
                 "candidate_eps": entry["events_per_sec"], "ratio": None,
                 "note": "no matching baseline scenario"}]
    return {"baseline": args.against, "threshold": 0.25, "rows": rows,
            "regressions": regressions}


def cmd_report(args) -> int:
    from repro.obs import SeriesCollector, SimProfiler
    from repro.obs.audit import DecisionAudit
    from repro.obs.lineage import LineageCollector
    from repro.obs.report import build_report, write_report

    os.makedirs(args.out, exist_ok=True)
    cluster, history, jobs = _load(args)
    scheduler = make_scheduler(args.scheduler, history)
    audit = None
    if hasattr(scheduler, "audit"):
        audit = DecisionAudit(attribution=True)
        scheduler.audit = audit
    print(f"{len(jobs)} jobs on {cluster.n_gpus} GPUs "
          f"({len(cluster.vcs)} VCs) under {args.scheduler} [report]")
    profiler = SimProfiler()
    series = SeriesCollector(interval=args.series_interval)
    lineage = LineageCollector()
    simulator = Simulator(cluster, jobs, scheduler,
                          profile=profiler, series=series,
                          lineage=lineage,
                          faults=_fault_spec(args),
                          sanitize=args.sanitize)
    result = simulator.run()
    _print_sanitizer_summary(simulator)
    _print_fault_summary(result)
    bench_diff = None
    if args.against is not None:
        try:
            bench_diff = _report_bench_diff(args, profiler, result,
                                            len(jobs))
        except ValueError as exc:
            print(f"error: invalid bench file {args.against}: {exc}",
                  file=sys.stderr)
            return 2
    document = build_report(result, scheduler=args.scheduler,
                            trace=args.trace, jobs=len(jobs),
                            seed=args.seed, profiler=profiler,
                            series=series, audit=audit,
                            bench_diff=bench_diff, lineage=lineage)
    html_path, json_path = write_report(document, args.out)
    if audit is not None:
        decisions, with_attr = audit.attribution_coverage()
        if decisions:
            print(f"attribution coverage: {with_attr}/{decisions} "
                  f"({with_attr / decisions:.1%}) main-cluster "
                  "placements")
    print(f"wrote {html_path}")
    print(f"wrote {json_path}")
    return 0


def _edit_distance(a: str, b: str) -> int:
    """Plain Levenshtein distance (small inputs: job-id digit strings)."""
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            current.append(min(previous[j] + 1, current[j - 1] + 1,
                               previous[j - 1] + (ch_a != ch_b)))
        previous = current
    return previous[-1]


def _nearest_ids(target: int, known, n: int = 3) -> List[int]:
    """The n known job ids nearest ``target`` by digit edit distance.

    Ties break on numeric distance then on the id itself, so the
    suggestion list is deterministic for a given index.
    """
    text = str(target)
    ranked = sorted(
        set(known),
        key=lambda jid: (_edit_distance(text, str(jid)),
                         abs(jid - target), jid))
    return ranked[:n]


def _suggest_ids(target: int, known) -> str:
    """``"; did you mean 17, 71 or 107?"`` (empty when nothing known)."""
    nearest = _nearest_ids(target, known)
    if not nearest:
        return ""
    listed = ", ".join(str(jid) for jid in nearest[:-1])
    tail = (f"{listed} or {nearest[-1]}" if listed
            else str(nearest[-1]))
    return f"; did you mean {tail}?"


def _parse_what_if(specs) -> dict:
    """``FEATURE=VALUE`` strings -> override dict; ValueError on junk."""
    overrides = {}
    for spec in specs:
        name, eq, raw = spec.partition("=")
        if not eq or not name.strip():
            raise ValueError(f"expected FEATURE=VALUE, got {spec!r}")
        try:
            overrides[name.strip()] = float(raw)
        except ValueError:
            raise ValueError(
                f"non-numeric value in {spec!r}") from None
    return overrides


def cmd_explain(args) -> int:
    import json as _json

    from repro.obs.audit import DecisionAudit

    what_if = args.what_if or []
    if args.audit is not None:
        if what_if:
            print("error: --what-if needs the frozen models of a live "
                  "run; it cannot be combined with --audit",
                  file=sys.stderr)
            return 2
        audit = DecisionAudit.from_jsonl(args.audit)
    else:
        cluster, history, jobs = _load(args)
        scheduler = make_scheduler(args.scheduler, history)
        if not hasattr(scheduler, "audit"):
            print(f"error: scheduler {args.scheduler!r} records no "
                  "decision audit (lucid-family only); use --audit FILE "
                  "to explain an exported log", file=sys.stderr)
            return 2
        audit = DecisionAudit(attribution=True)
        scheduler.audit = audit
        Simulator(cluster, jobs, scheduler, faults=_fault_spec(args),
                  sanitize=args.sanitize).run()
    decisions = audit.for_job(args.job_id)
    if not decisions:
        hint = _suggest_ids(args.job_id,
                            (rec.job_id for rec in audit.records))
        print(f"no recorded decisions for job {args.job_id}{hint}",
              file=sys.stderr)
        return 1
    try:
        overrides = _parse_what_if(what_if)
    except ValueError as exc:
        print(f"error: bad --what-if: {exc}", file=sys.stderr)
        return 2
    counterfactual = None
    if overrides:
        try:
            counterfactual = audit.counterfactual(args.job_id,
                                                  **overrides)
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else exc
            print(f"error: counterfactual failed: {message}",
                  file=sys.stderr)
            return 2
    if args.format == "json":
        document = {"job_id": args.job_id,
                    "decisions": [d.to_dict() for d in decisions]}
        if counterfactual is not None:
            document["counterfactual"] = counterfactual.to_dict()
        print(_json.dumps(document, indent=2, sort_keys=True))
    else:
        for decision in decisions:
            print(decision.explain())
        if counterfactual is not None:
            print(counterfactual.render())
    return 0


def cmd_why(args) -> int:
    import json as _json

    from repro.obs.lineage import (
        LineageCollector,
        critical_path,
        decompose,
        lineage_from_trace,
    )

    if os.path.isfile(args.trace) and args.trace.endswith(".jsonl"):
        # Offline: rebuild the causal DAG from an exported event log.
        from repro.obs.tracer import events_from_dicts, read_jsonl
        collector = lineage_from_trace(
            events_from_dicts(read_jsonl(args.trace)))
        source = args.trace
    else:
        cluster, history, jobs = _load(args)
        if args.format != "json":  # keep JSON stdout machine-parseable
            print(f"{len(jobs)} jobs on {cluster.n_gpus} GPUs "
                  f"({len(cluster.vcs)} VCs) under {args.scheduler} "
                  "[lineage]")
        collector = LineageCollector()
        Simulator(cluster, jobs, make_scheduler(args.scheduler, history),
                  faults=_fault_spec(args), lineage=collector,
                  sanitize=args.sanitize).run()
        source = f"{args.scheduler} × {args.trace}"
    try:
        decomposition = decompose(collector, args.job_id)
    except KeyError:
        hint = _suggest_ids(args.job_id, collector.job_ids())
        print(f"error: no lineage recorded for job {args.job_id}{hint}",
              file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    chain = critical_path(collector, args.job_id)

    if args.format == "json":
        document = {
            "source": source,
            "decomposition": decomposition.as_dict(),
            "critical_path": [e.as_dict() for e in chain],
        }
        print(_json.dumps(document, indent=2, sort_keys=True))
        return 0

    jct = decomposition.jct
    print(f"job {args.job_id} ({decomposition.outcome}) — "
          f"JCT {jct:,.1f} s  [submit t={decomposition.submit_time:,.1f}, "
          f"end t={decomposition.end_time:,.1f}; {source}]")
    rows = [[name, seconds, (seconds / jct if jct > 0 else 0.0)]
            for name, seconds in decomposition.components().items()]
    rows.append(["total", decomposition.total(),
                 1.0 if jct > 0 else 0.0])
    print(ascii_table(["component", "seconds", "share"], rows))
    if abs(decomposition.residual) > 0:
        print(f"(fsum residual {decomposition.residual:.3e} folded into "
              "the largest component)")
    if decomposition.blockers:
        blamed = sorted(decomposition.blockers.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        listed = ", ".join(f"job {jid} (+{seconds:,.1f} s)"
                           for jid, seconds in blamed)
        print(f"blocked by: {listed}")
        if decomposition.unattributed_wait > 1e-9:
            print(f"  plus {decomposition.unattributed_wait:,.1f} s of "
                  "main-queue wait with no nameable blocker")
    elif decomposition.pending_main > 1e-9:
        print(f"main-queue wait {decomposition.pending_main:,.1f} s "
              "had no nameable blocker (idle capacity / policy wait)")
    else:
        print("never waited in the main queue")
    if args.path > 0 and chain:
        shown = chain[-args.path:]
        print(f"critical path (last {len(shown)} of {len(chain)} "
              "events):")
        for event in shown:
            who = "" if event.job_id is None else f" job={event.job_id}"
            route = collector.route_of(event)
            via = f" routed={route}" if route else ""
            print(f"  t={event.time:>12,.1f}  {event.kind}{who}{via}")
    return 0


def cmd_serve(args) -> int:
    from repro.serve import ServeConfig, ServeDaemon
    from repro.serve.config import ConfigMismatchError
    from repro.serve.recovery import RecoveryError

    # With no config flag at all this is a restart (or a default-config
    # genesis): pass None and let the daemon use the stored config, so
    # `repro serve --state-dir DIR` alone always reboots an existing
    # store instead of tripping the config-compatibility check.
    requested = (args.trace, args.scheduler, args.jobs, args.seed,
                 args.faults, args.batch, args.events_per_tick)
    if all(value is None for value in requested):
        config = None
    else:
        config = ServeConfig(trace=(args.trace or "venus").lower(),
                             scheduler=args.scheduler or "lucid",
                             jobs=args.jobs,
                             seed=args.seed, faults=args.faults,
                             batch=8 if args.batch is None else args.batch,
                             events_per_tick=(64 if args.events_per_tick
                                              is None
                                              else args.events_per_tick))
    daemon = ServeDaemon(args.state_dir, config,
                         poll_interval=args.poll_interval,
                         snapshot_every=args.snapshot_every,
                         http_port=args.http_port,
                         inbox_capacity=args.inbox_capacity,
                         durable=not args.no_fsync,
                         exit_when_idle=args.exit_when_idle,
                         telemetry=not args.no_telemetry,
                         telemetry_refresh=args.telemetry_refresh)
    try:
        report = daemon.start()
    except ConfigMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RecoveryError as exc:
        print(f"error: recovery failed: {exc}", file=sys.stderr)
        return 1
    print(report.describe())
    if daemon.http is not None:
        host, port = daemon.http.address
        surfaces = "POST /submit, GET /status /metrics /healthz"
        if daemon.live is not None:
            surfaces += " /dashboard"
        print(f"http frontend on http://{host}:{port} ({surfaces})")
    daemon.install_signal_handlers()
    ticks = daemon.run_forever()
    print(f"drained cleanly after {ticks} tick(s) this boot "
          f"(service tick {daemon.core.tick})")
    return 0


def cmd_serve_status(args) -> int:
    """Scrape a live daemon's /metrics + /healthz; one-screen summary.

    Exit codes: 0 healthy, 1 reachable-but-unhealthy (stale heartbeat
    or degraded core), 2 unreachable.
    """
    import json
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")

    def scrape(path):
        request = urllib.request.Request(
            base + path, headers={"Accept": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=args.timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    try:
        _, metrics = scrape("/metrics")
        health_code, health = scrape("/healthz")
        _, status = scrape("/status")
    except (OSError, ValueError) as exc:
        print(f"error: cannot scrape {base}: {exc}", file=sys.stderr)
        return 2

    healthy = health_code == 200 and bool(health.get("ok"))
    if args.format == "json":
        print(json.dumps({"healthy": healthy, "health": health,
                          "metrics": metrics,
                          "recovery": status.get("recovery")},
                         indent=2, sort_keys=True))
        return 0 if healthy else 1

    verdict = "healthy" if healthy else (
        "DEGRADED" if health.get("degraded") else "STALE")
    print(f"serve @ {base}: {verdict}")
    print(f"  recovery         {status.get('recovery')}")
    rows = (
        ("service tick", metrics.get("ticks")),
        ("ticks this boot", metrics.get("ticks_this_boot")),
        ("sim clock", f"{metrics.get('sim_now', 0.0):,.0f} s"),
        ("events processed", f"{metrics.get('events_processed', 0):,}"),
        ("jobs", f"{metrics.get('jobs_finished', 0)} finished / "
                 f"{metrics.get('jobs_total', 0)} admitted"),
        ("inbox pending", metrics.get("inbox_pending")),
        ("snapshots", f"{metrics.get('snapshots')} "
                      f"(newest at tick "
                      f"{metrics.get('last_snapshot_tick')}, "
                      f"age {metrics.get('snapshot_age_ticks')} "
                      f"tick(s))"),
        ("WAL", f"{metrics.get('wal_segments')} segment(s), "
                f"{metrics.get('wal_bytes', 0):,} bytes"),
        ("store", f"{metrics.get('store_bytes', 0):,} bytes"),
        ("heartbeat age", f"{health.get('heartbeat_age_s')} s "
                          f"(budget {health.get('heartbeat_budget_s')} "
                          f"s, stale={health.get('stale')})"),
        ("degraded", health.get("degraded") or False),
        ("telemetry", metrics.get("telemetry")),
    )
    for label, value in rows:
        print(f"  {label:<16} {value}")
    if metrics.get("telemetry"):
        print(f"  dashboard        {base}/dashboard")
    return 0 if healthy else 1


def cmd_serve_chaos(args) -> int:
    from repro.serve import ServeConfig
    from repro.serve.chaos import chaos_run

    config = ServeConfig(trace=args.trace.lower(),
                         scheduler=args.scheduler, jobs=args.jobs,
                         seed=args.seed, faults=args.faults,
                         batch=args.batch,
                         events_per_tick=args.events_per_tick)
    result = chaos_run(args.workdir, config, points=args.points,
                       chaos_seed=args.chaos_seed,
                       timeout=args.timeout, progress=print)
    print(result.describe())
    return 0 if result.ok else 1


def cmd_lint(args) -> int:
    from repro.checks import (
        baseline_delta,
        format_json,
        format_sarif,
        format_text,
        lint_paths,
        lint_project,
        load_baseline,
        write_baseline,
    )
    from repro.checks.project import find_package_dir

    if args.project:
        if len(args.paths) != 1:
            print("error: --project takes exactly one path (the package "
                  "or its src/ directory)", file=sys.stderr)
            return 2
        package_dir = find_package_dir(args.paths[0])
        findings = lint_project(package_dir)
    else:
        findings = lint_paths(args.paths)
    repo_root = os.getcwd()

    if args.update_baseline:
        write_baseline(args.baseline, findings, repo_root)
        print(f"baseline: {len(findings)} finding(s) recorded in "
              f"{args.baseline}")
        return 0

    gating = findings
    if args.ratchet:
        gating = baseline_delta(findings, load_baseline(args.baseline),
                                repo_root)
    if args.format == "sarif":
        print(format_sarif(gating, repo_root))
    elif args.format == "json":
        print(format_json(gating))
    else:
        print(format_text(gating))
        if args.ratchet and len(findings) != len(gating):
            print(f"(ratchet: {len(findings) - len(gating)} baselined "
                  "finding(s) tolerated)", file=sys.stderr)
    return 1 if gating else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level, fmt=args.log_format)
    handlers = {
        "simulate": cmd_simulate,
        "trace": cmd_trace,
        "compare": cmd_compare,
        "models": cmd_models,
        "packing": cmd_packing,
        "lint": cmd_lint,
        "bench": cmd_bench,
        "report": cmd_report,
        "explain": cmd_explain,
        "why": cmd_why,
        "serve": cmd_serve,
        "serve-status": cmd_serve_status,
        "serve-chaos": cmd_serve_chaos,
    }
    # User-input errors exit with code 2 and a one-line message instead of
    # a traceback: missing files, unparsable traces, bad --faults specs.
    from repro.faults import FaultSpecError
    from repro.traces.io import TraceParseError
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        missing = getattr(exc, "filename", None) or exc
        print(f"error: file not found: {missing}", file=sys.stderr)
        return 2
    except FaultSpecError as exc:
        print(f"error: invalid --faults spec: {exc}", file=sys.stderr)
        return 2
    except TraceParseError as exc:
        print(f"error: invalid trace: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
