"""Heterogeneous GPU support — the paper's second future-work direction.

§6: "Adding heterogeneous GPU selection optimization by more fine-grained
profiling for clusters with various GPU generations."  This module adds:

* :class:`GPUType` — a GPU generation with a relative speed factor and
  device memory (Figure 1b's capability growth), plus presets spanning
  K80 → A100.
* :func:`build_heterogeneous_cluster` — clusters whose nodes carry
  different GPU generations (each node is homogeneous, as in real racks).
* :func:`find_consolidated_typed` — consolidated placement that ranks
  candidate nodes by generation speed, preferring fast GPUs for
  long/large jobs and slow ones for short jobs (Gavel-style throughput
  matching, simplified).

The engine honours per-GPU ``speed_factor``s: a job's execution speed is
scaled by the slowest device in its allocation, so placing a distributed
job across generations pays the straggler cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.gpu import GPU
from repro.cluster.node import GPUS_PER_NODE, Node
from repro.cluster.placement import best_fit_single_node


@dataclass(frozen=True)
class GPUType:
    """One GPU generation.

    ``speed_factor`` is training throughput relative to the paper's RTX
    3090 testbed (1.0); memory in MB.
    """

    name: str
    speed_factor: float
    memory_mb: float

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")


#: Rough datacenter generations (Figure 1b).
K80 = GPUType("K80", speed_factor=0.25, memory_mb=12_288)
P100 = GPUType("P100", speed_factor=0.55, memory_mb=16_384)
V100 = GPUType("V100", speed_factor=0.85, memory_mb=32_768)
RTX3090 = GPUType("RTX3090", speed_factor=1.0, memory_mb=24_576)
A100 = GPUType("A100", speed_factor=1.7, memory_mb=40_960)

GPU_TYPES: Dict[str, GPUType] = {
    t.name: t for t in (K80, P100, V100, RTX3090, A100)
}


def build_heterogeneous_cluster(
        vc_layout: Dict[str, Sequence[Tuple[GPUType, int]]],
        gpus_per_node: int = GPUS_PER_NODE) -> Cluster:
    """Build a cluster whose VCs mix GPU generations.

    Parameters
    ----------
    vc_layout:
        Mapping of VC name to a list of ``(gpu_type, node_count)`` pairs.

    Each node is homogeneous in type; the type's speed factor and memory
    are stamped onto its GPU objects (``gpu.speed_factor``), which the
    simulation engine reads when computing job speeds.
    """
    # Caller-ordered mapping (see Cluster.__init__): the layout's insertion
    # order defines node ids, so both walks must preserve it, not sort it.
    counts = {vc: sum(n for _, n in racks)
              for vc, racks in vc_layout.items()}  # repro: noqa RPR003
    cluster = Cluster(counts, gpus_per_node=gpus_per_node)
    for vc, racks in vc_layout.items():  # repro: noqa RPR003
        nodes = iter(cluster.vc(vc).nodes)
        for gpu_type, node_count in racks:
            for _ in range(node_count):
                node = next(nodes)
                node.gpu_type = gpu_type  # type: ignore[attr-defined]
                for gpu in node.gpus:
                    gpu.speed_factor = gpu_type.speed_factor
                    gpu.memory_mb = gpu_type.memory_mb
    return cluster


def node_speed(node: Node) -> float:
    """Speed factor of a node (1.0 for untyped/homogeneous nodes)."""
    gpu_type = getattr(node, "gpu_type", None)
    return gpu_type.speed_factor if gpu_type is not None else 1.0


def allocation_speed(gpus: Sequence[GPU]) -> float:
    """Straggler-bound speed factor of an allocation."""
    return min((getattr(g, "speed_factor", 1.0) for g in gpus), default=1.0)


def find_consolidated_typed(cluster: Cluster, gpu_num: int,
                            vc: Optional[str] = None,
                            prefer_fast: bool = True,
                            min_memory_mb: float = 0.0
                            ) -> Optional[List[GPU]]:
    """Consolidated placement ranking nodes by GPU generation.

    ``prefer_fast=True`` visits fast generations first (long jobs extract
    the most value from them); ``False`` visits slow generations first,
    reserving fast silicon (short debugging jobs finish quickly anyway —
    the throughput-matching intuition of Gavel).  Within a speed tier the
    best-fit rule applies.  Multi-node requests stay within a single
    generation to avoid stragglers.
    """
    nodes = [n for n in cluster.nodes_of(vc)
             if not n.gpus or n.gpus[0].memory_mb >= min_memory_mb]
    tiers: Dict[float, List[Node]] = {}
    for node in nodes:
        tiers.setdefault(node_speed(node), []).append(node)
    ordered_speeds = sorted(tiers, reverse=prefer_fast)
    for speed in ordered_speeds:
        tier_nodes = tiers[speed]
        if gpu_num <= cluster.gpus_per_node:
            found = best_fit_single_node(tier_nodes, gpu_num)
            if found is not None:
                return found
            continue
        found = _multi_node_same_tier(tier_nodes, gpu_num,
                                      cluster.gpus_per_node)
        if found is not None:
            return found
    return None


def find_tolerant_placement(cluster: Cluster, gpu_num: int,
                            est_duration: float,
                            vc: Optional[str] = None,
                            min_memory_mb: float = 0.0,
                            max_extra_fraction: float = 0.5,
                            max_extra_seconds: float = 1800.0
                            ) -> Optional[List[GPU]]:
    """Fastest-free-tier placement with a slow-tier veto for long jobs.

    Work conservation says everyone should prefer the fastest *free*
    generation — idling an A100 to "save" it is never worth slowing a job
    down today.  The one exception is a long job facing only slow tiers:
    starting a 10-hour job on a K80 locks in ~30 extra hours, far worse
    than waiting minutes for fast silicon to free up.  So tiers are tried
    fast to slow, and a tier is *refused* (the job keeps waiting) when
    the extra runtime it implies — ``est / speed - est / best_speed`` —
    exceeds ``max(max_extra_fraction * est, max_extra_seconds)``.

    Short jobs tolerate every tier (their extra is bounded by the floor),
    so they spill onto old GPUs under contention; long jobs hold out for
    the fast racks.
    """
    if est_duration <= 0:
        raise ValueError("est_duration must be positive")
    nodes = [n for n in cluster.nodes_of(vc)
             if not n.gpus or n.gpus[0].memory_mb >= min_memory_mb]
    tiers: Dict[float, List[Node]] = {}
    for node in nodes:
        tiers.setdefault(node_speed(node), []).append(node)
    if not tiers:
        return None
    best_speed = max(tiers)
    budget = max(max_extra_fraction * est_duration, max_extra_seconds)

    def place_in(tier_nodes: List[Node]) -> Optional[List[GPU]]:
        if gpu_num <= cluster.gpus_per_node:
            return best_fit_single_node(tier_nodes, gpu_num)
        return _multi_node_same_tier(tier_nodes, gpu_num,
                                     cluster.gpus_per_node)

    for speed in sorted(tiers, reverse=True):
        extra = est_duration / speed - est_duration / best_speed
        if extra > budget:
            return None  # refuse slower tiers; keep waiting for fast ones
        found = place_in(tiers[speed])
        if found is not None:
            return found
    return None


def _multi_node_same_tier(nodes: Sequence[Node], gpu_num: int,
                          gpus_per_node: int) -> Optional[List[GPU]]:
    full, remainder = divmod(gpu_num, gpus_per_node)
    empty = [n for n in nodes if n.is_empty]
    if len(empty) < full:
        return None
    chosen: List[GPU] = []
    for node in empty[:full]:
        chosen.extend(node.gpus)
    if remainder == 0:
        return chosen
    used = {n.node_id for n in empty[:full]}
    rest = [n for n in nodes if n.node_id not in used]
    tail = best_fit_single_node(rest, remainder)
    if tail is None:
        return None
    return chosen + tail
