"""Cluster substrate: GPUs, nodes, virtual clusters and placement."""

from repro.cluster.cluster import Cluster, VirtualCluster, make_vc_names
from repro.cluster.gpu import GPU, MAX_RESIDENTS
from repro.cluster.node import CPUS_PER_NODE, GPUS_PER_NODE, Node
from repro.cluster.hetero import (
    A100,
    GPU_TYPES,
    GPUType,
    K80,
    P100,
    RTX3090,
    V100,
    allocation_speed,
    build_heterogeneous_cluster,
    find_consolidated_typed,
    find_tolerant_placement,
    node_speed,
)
from repro.cluster.placement import (
    find_consolidated,
    find_relaxed,
    find_shared,
    free_gpu_fragmentation,
)

__all__ = [
    "Cluster",
    "VirtualCluster",
    "make_vc_names",
    "GPU",
    "MAX_RESIDENTS",
    "Node",
    "GPUS_PER_NODE",
    "CPUS_PER_NODE",
    "find_consolidated",
    "find_relaxed",
    "find_shared",
    "free_gpu_fragmentation",
    "GPUType",
    "GPU_TYPES",
    "K80",
    "P100",
    "V100",
    "RTX3090",
    "A100",
    "allocation_speed",
    "build_heterogeneous_cluster",
    "find_consolidated_typed",
    "find_tolerant_placement",
    "node_speed",
]
