"""GPU device model.

A GPU can host at most :data:`MAX_RESIDENTS` jobs simultaneously (the paper
packs at most two jobs per GPU set — rule 3 of Indolent Packing) and tracks
device-memory reservations so the simulator can enforce the hard
out-of-memory limit (rule 1).
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.model_zoo import GPU_MEMORY_MB

#: Maximum number of jobs that may share one GPU.
MAX_RESIDENTS = 2


class GPU:
    """One physical GPU device.

    Parameters
    ----------
    gpu_id:
        Globally unique device index.
    node_id:
        Index of the hosting node.
    memory_mb:
        Device memory capacity in MB.
    """

    __slots__ = ("gpu_id", "node_id", "memory_mb", "speed_factor",
                 "healthy", "fault_slow", "_residents")

    def __init__(self, gpu_id: int, node_id: int,
                 memory_mb: float = GPU_MEMORY_MB,
                 speed_factor: float = 1.0) -> None:
        self.gpu_id = gpu_id
        self.node_id = node_id
        self.memory_mb = memory_mb
        #: Relative throughput of this device's generation (1.0 = the
        #: paper's RTX 3090 testbed); see repro.cluster.hetero.
        self.speed_factor = speed_factor
        #: Fault-injection state (repro.faults): an unhealthy device hosts
        #: nothing; ``fault_slow`` < 1 marks a transient straggler window.
        self.healthy = True
        self.fault_slow = 1.0
        self._residents: Dict[int, float] = {}  # job_id -> reserved MB

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def residents(self) -> List[int]:
        """Job ids currently resident on this device."""
        return list(self._residents)

    @property
    def n_residents(self) -> int:
        return len(self._residents)

    @property
    def is_free(self) -> bool:
        return not self._residents

    @property
    def is_shared(self) -> bool:
        return len(self._residents) > 1

    @property
    def memory_used_mb(self) -> float:
        return sum(self._residents.values())

    @property
    def memory_free_mb(self) -> float:
        return self.memory_mb - self.memory_used_mb

    def hosts(self, job_id: int) -> bool:
        return job_id in self._residents

    def can_host(self, memory_mb: float) -> bool:
        """Whether another job with the given footprint may join."""
        return (self.healthy
                and len(self._residents) < MAX_RESIDENTS
                and memory_mb <= self.memory_free_mb)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def attach(self, job_id: int, memory_mb: float) -> None:
        """Place a job on this device, reserving memory.

        Raises
        ------
        RuntimeError
            If the device is full, the job is already resident, or the
            reservation would exceed device memory.
        """
        if job_id in self._residents:
            raise RuntimeError(f"job {job_id} already on GPU {self.gpu_id}")
        if len(self._residents) >= MAX_RESIDENTS:
            raise RuntimeError(f"GPU {self.gpu_id} is full")
        if memory_mb > self.memory_free_mb:
            raise RuntimeError(
                f"GPU {self.gpu_id}: OOM attaching job {job_id} "
                f"({memory_mb:.0f} MB > {self.memory_free_mb:.0f} MB free)")
        self._residents[job_id] = memory_mb

    def detach(self, job_id: int) -> None:
        """Remove a job from this device, releasing its memory."""
        try:
            del self._residents[job_id]
        except KeyError:
            raise RuntimeError(
                f"job {job_id} is not resident on GPU {self.gpu_id}") from None

    def __repr__(self) -> str:
        return (f"GPU(id={self.gpu_id}, node={self.node_id}, "
                f"residents={sorted(self._residents)})")
