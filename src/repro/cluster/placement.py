"""Placement policies: consolidated (exclusive) and shared placement.

The paper applies *consolidated* placement to maximize training speed and
reduce resource fragmentation (§3.4): single-node jobs are packed onto the
node whose free-GPU count is smallest-but-sufficient (best fit), while
distributed jobs take wholly free nodes plus a best-fit remainder.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.gpu import GPU
from repro.cluster.node import Node


def find_consolidated(cluster: Cluster, gpu_num: int,
                      vc: Optional[str] = None,
                      min_memory_mb: float = 0.0) -> Optional[List[GPU]]:
    """Find GPUs for an exclusive, consolidated allocation.

    Parameters
    ----------
    cluster:
        Cluster to allocate in.
    gpu_num:
        Requested GPU count.
    vc:
        Restrict the search to one virtual cluster (``None`` = anywhere).

    Returns
    -------
    The chosen GPUs, or ``None`` when no consolidated placement exists.
    Single-node requests use best-fit (fewest leftover free GPUs);
    multi-node requests consume wholly free nodes first and place any
    remainder best-fit, so a 20-GPU job on 8-GPU nodes takes two full
    nodes plus four GPUs on a third.
    """
    nodes = [n for n in cluster.nodes_of(vc)
             if not n.gpus or n.gpus[0].memory_mb >= min_memory_mb]
    if gpu_num <= cluster.gpus_per_node:
        return best_fit_single_node(nodes, gpu_num)
    return _multi_node(nodes, gpu_num, cluster.gpus_per_node)


def best_fit_single_node(nodes: Sequence[Node], gpu_num: int
                          ) -> Optional[List[GPU]]:
    best: Optional[Node] = None
    for node in nodes:
        free = node.n_free_gpus
        if free >= gpu_num and (best is None or free < best.n_free_gpus):
            best = node
            if free == gpu_num:  # perfect fit
                break
    if best is None:
        return None
    return best.free_gpus[:gpu_num]


def _multi_node(nodes: Sequence[Node], gpu_num: int, gpus_per_node: int
                ) -> Optional[List[GPU]]:
    full_nodes_needed, remainder = divmod(gpu_num, gpus_per_node)
    empty = [n for n in nodes if n.is_empty and n.healthy]
    if len(empty) < full_nodes_needed:
        return None
    chosen: List[GPU] = []
    for node in empty[:full_nodes_needed]:
        chosen.extend(node.gpus)
    if remainder == 0:
        return chosen
    used_ids = {n.node_id for n in empty[:full_nodes_needed]}
    rest = [n for n in nodes if n.node_id not in used_ids]
    tail = best_fit_single_node(rest, remainder)
    if tail is None:
        return None
    return chosen + tail


def find_relaxed(cluster: Cluster, gpu_num: int,
                 vc: Optional[str] = None,
                 min_memory_mb: float = 0.0) -> Optional[List[GPU]]:
    """Find free GPUs with relaxed (non-consolidated) locality.

    Used for starvation relief: a multi-node job that has waited too long
    for wholly free nodes accepts a fragmented allocation spanning extra
    nodes (at a cross-node communication penalty — see the engine's
    fragmentation model).  Nodes with the most free GPUs are consumed
    first to keep the spread minimal.
    """
    eligible = [n for n in cluster.nodes_of(vc)
                if not n.gpus or n.gpus[0].memory_mb >= min_memory_mb]
    nodes = sorted(eligible, key=lambda n: -n.n_free_gpus)  # repro: noqa RPR121 — placement policy: most-free-first order is semantic
    chosen: List[GPU] = []
    for node in nodes:
        for gpu in node.free_gpus:
            chosen.append(gpu)
            if len(chosen) == gpu_num:
                return chosen
    return None


def find_shared(cluster: Cluster, mate_gpus: Sequence[GPU],
                memory_mb: float) -> Optional[List[GPU]]:
    """Validate packing a job onto the exact GPU set of a running mate.

    Rule 2 of Indolent Packing forbids packing jobs with different GPU
    demands, so a packed job always joins all of its mate's GPUs.  Returns
    the GPU list when every device can host the additional footprint, else
    ``None``.
    """
    gpus = list(mate_gpus)
    for gpu in gpus:
        if not gpu.can_host(memory_mb):
            return None
    return gpus


def free_gpu_fragmentation(cluster: Cluster, vc: Optional[str] = None) -> float:
    """Fragmentation score: 1 - (largest free block / total free GPUs).

    0.0 means all free GPUs sit on one node (no fragmentation); values near
    1.0 mean free capacity is scattered in small per-node slivers.  Used by
    ablation benchmarks to show consolidated placement keeps this low.
    """
    nodes = cluster.nodes_of(vc)
    free_counts = [n.n_free_gpus for n in nodes]
    total = sum(free_counts)
    if total == 0:
        return 0.0
    return 1.0 - max(free_counts) / total
