"""Compute node model (8-GPU servers, mirroring the paper's testbed)."""

from __future__ import annotations

from typing import List

from repro.cluster.gpu import GPU
from repro.workloads.model_zoo import GPU_MEMORY_MB

#: GPUs per server on the testbed and in the simulated clusters.
GPUS_PER_NODE = 8
#: CPU threads per server (dual-socket Xeon Gold 6326).
CPUS_PER_NODE = 64


class Node:
    """One multi-GPU server.

    Parameters
    ----------
    node_id:
        Globally unique node index.
    vc:
        Name of the virtual cluster this node belongs to.
    n_gpus:
        Number of GPU devices installed.
    first_gpu_id:
        Global id of this node's first GPU (ids are contiguous per node).
    """

    __slots__ = ("node_id", "vc", "gpus", "cpus", "cpus_used", "gpu_type",
                 "healthy")

    def __init__(self, node_id: int, vc: str, n_gpus: int = GPUS_PER_NODE,
                 first_gpu_id: int = 0,
                 gpu_memory_mb: float = GPU_MEMORY_MB) -> None:
        self.node_id = node_id
        self.vc = vc
        self.gpus: List[GPU] = [
            GPU(first_gpu_id + i, node_id, gpu_memory_mb) for i in range(n_gpus)
        ]
        self.cpus = CPUS_PER_NODE
        self.cpus_used = 0
        #: Optional GPU generation marker (repro.cluster.hetero).
        self.gpu_type = None
        #: Fault-injection state (repro.faults): a failed node accepts no
        #: placements until its NODE_RECOVER event fires.
        self.healthy = True

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)

    @property
    def free_gpus(self) -> List[GPU]:
        """Healthy GPUs with no resident job."""
        return [g for g in self.gpus if g.is_free and g.healthy]

    @property
    def n_free_gpus(self) -> int:
        return sum(1 for g in self.gpus if g.is_free and g.healthy)

    @property
    def is_empty(self) -> bool:
        return all(g.is_free for g in self.gpus)

    @property
    def busy_gpus(self) -> List[GPU]:
        """GPUs hosting at least one job."""
        return [g for g in self.gpus if not g.is_free]

    def shareable_gpus(self, memory_mb: float) -> List[GPU]:
        """Occupied GPUs that could additionally host the given footprint.

        ``can_host`` already excludes unhealthy devices.
        """
        return [g for g in self.gpus if not g.is_free and g.can_host(memory_mb)]

    def __repr__(self) -> str:
        return (f"Node(id={self.node_id}, vc={self.vc!r}, "
                f"free={self.n_free_gpus}/{self.n_gpus})")
