"""Cluster and virtual-cluster (VC) models.

Production DL clusters are partitioned into virtual clusters dedicated to
different product groups (§2.1).  Jobs are scheduled within their VC;
Lucid's Time-aware Scaling may temporarily *loan* nodes from idle VCs to
the profiling cluster, which is modelled by the separate profiler capacity
in :mod:`repro.core.profiler`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.cluster.gpu import GPU
from repro.cluster.node import GPUS_PER_NODE, Node
from repro.workloads.model_zoo import GPU_MEMORY_MB


class VirtualCluster:
    """A named partition of the cluster's nodes."""

    def __init__(self, name: str, nodes: Sequence[Node]) -> None:
        self.name = name
        self.nodes: List[Node] = list(nodes)

    @property
    def n_gpus(self) -> int:
        return sum(n.n_gpus for n in self.nodes)

    @property
    def n_free_gpus(self) -> int:
        return sum(n.n_free_gpus for n in self.nodes)

    @property
    def gpus(self) -> List[GPU]:
        return [g for node in self.nodes for g in node.gpus]

    def utilization(self) -> float:
        """Fraction of GPUs hosting at least one job."""
        total = self.n_gpus
        if total == 0:
            return 0.0
        return 1.0 - self.n_free_gpus / total

    def __repr__(self) -> str:
        return (f"VirtualCluster(name={self.name!r}, nodes={len(self.nodes)}, "
                f"free={self.n_free_gpus}/{self.n_gpus})")


class Cluster:
    """A multi-VC GPU cluster.

    Parameters
    ----------
    vc_nodes:
        Mapping of VC name to number of nodes in that VC.
    gpus_per_node:
        GPU devices per server.
    gpu_memory_mb:
        Device memory per GPU.
    """

    def __init__(self, vc_nodes: Dict[str, int],
                 gpus_per_node: int = GPUS_PER_NODE,
                 gpu_memory_mb: float = GPU_MEMORY_MB) -> None:
        if not vc_nodes:
            raise ValueError("cluster needs at least one VC")
        self.gpus_per_node = gpus_per_node
        self.gpu_memory_mb = gpu_memory_mb
        self.nodes: List[Node] = []
        self.vcs: Dict[str, VirtualCluster] = {}
        self._gpu_index: Dict[int, GPU] = {}
        self._node_index: Dict[int, Node] = {}
        node_id = 0
        gpu_id = 0
        # Caller-ordered mapping: VC -> node-id assignment deliberately
        # follows the insertion order the caller chose (dicts preserve it
        # deterministically); sorting here would silently relabel nodes.
        for vc_name, count in vc_nodes.items():  # repro: noqa RPR003
            if count <= 0:
                raise ValueError(f"VC {vc_name!r} must have >= 1 node")
            members: List[Node] = []
            for _ in range(count):
                node = Node(node_id, vc_name, gpus_per_node, gpu_id,
                            gpu_memory_mb)
                members.append(node)
                self.nodes.append(node)
                for gpu in node.gpus:
                    self._gpu_index[gpu.gpu_id] = gpu
                self._node_index[node.node_id] = node
                node_id += 1
                gpu_id += gpus_per_node
            self.vcs[vc_name] = VirtualCluster(vc_name, members)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(cls, n_nodes: int, vc_name: str = "default",
                    gpus_per_node: int = GPUS_PER_NODE) -> "Cluster":
        """Single-VC cluster of ``n_nodes`` identical servers."""
        return cls({vc_name: n_nodes}, gpus_per_node=gpus_per_node)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_gpus(self) -> int:
        return len(self._gpu_index)

    @property
    def n_free_gpus(self) -> int:
        return sum(n.n_free_gpus for n in self.nodes)

    @property
    def gpus(self) -> List[GPU]:
        return list(self._gpu_index.values())

    def gpu(self, gpu_id: int) -> GPU:
        """Look up a GPU by global id."""
        return self._gpu_index[gpu_id]

    def node(self, node_id: int) -> Node:
        """Look up a node by id."""
        return self._node_index[node_id]

    def vc(self, name: str) -> VirtualCluster:
        try:
            return self.vcs[name]
        except KeyError:
            raise KeyError(f"unknown VC {name!r}; known: {sorted(self.vcs)}") from None

    def nodes_of(self, vc: Optional[str]) -> List[Node]:
        """Nodes of one VC, or all nodes when ``vc`` is ``None``."""
        if vc is None:
            return self.nodes
        return self.vc(vc).nodes

    def active_gpu_fraction(self) -> float:
        """Fraction of GPUs with at least one resident job."""
        if not self._gpu_index:
            return 0.0
        busy = sum(1 for node in self.nodes for g in node.gpus
                   if not g.is_free)
        return busy / len(self._gpu_index)

    def shared_gpu_fraction(self) -> float:
        """Fraction of GPUs hosting two packed jobs."""
        if not self._gpu_index:
            return 0.0
        shared = sum(1 for node in self.nodes for g in node.gpus
                     if g.is_shared)
        return shared / len(self._gpu_index)

    def memory_used_fraction(self) -> float:
        """Cluster-wide GPU memory occupancy (node order fixes the float
        accumulation order)."""
        total = sum(g.memory_mb for node in self.nodes for g in node.gpus)
        used = sum(g.memory_used_mb for node in self.nodes
                   for g in node.gpus)
        return used / total if total else 0.0

    def __repr__(self) -> str:
        return (f"Cluster(vcs={len(self.vcs)}, nodes={len(self.nodes)}, "
                f"gpus={self.n_gpus}, free={self.n_free_gpus})")


def make_vc_names(count: int, prefix: str = "vc") -> List[str]:
    """Generate readable VC names, e.g. ``vc01 .. vc15``."""
    width = max(2, len(str(count)))
    return [f"{prefix}{i + 1:0{width}d}" for i in range(count)]
