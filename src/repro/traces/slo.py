"""Deadline assignment and SLO metrics (paper §6 extension)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.sim.metrics import SimulationResult
from repro.workloads.job import Job


def assign_deadlines(jobs: Sequence[Job], fraction: float = 0.3,
                     slack_range: Tuple[float, float] = (1.5, 4.0),
                     seed: int = 0) -> int:
    """Give a random fraction of jobs a completion deadline.

    A job's deadline is ``submit + slack * duration`` with ``slack`` drawn
    uniformly from ``slack_range`` — the usual way deadline workloads are
    synthesized (e.g. Chronus): the SLO is proportional to the work.
    Returns the number of deadline jobs.  Mutates the jobs in place.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    lo, hi = slack_range
    if not 1.0 <= lo <= hi:
        raise ValueError("slack_range must satisfy 1 <= lo <= hi")
    rng = np.random.default_rng(seed)
    count = 0
    for job in jobs:
        if rng.random() < fraction:
            slack = float(rng.uniform(lo, hi))
            job.deadline = job.submit_time + slack * job.duration
            count += 1
        else:
            job.deadline = None
    return count


def slo_report(result: SimulationResult) -> Dict[str, float]:
    """SLO attainment statistics of a finished simulation.

    Returns the number of deadline jobs, the attainment rate (fraction
    finishing by their deadline), the mean lateness of missed jobs in
    hours, and the best-effort average JCT (hours) so the cost of SLO
    prioritization is visible.
    """
    deadline_records = [r for r in result.records if r.deadline is not None]
    best_effort = [r for r in result.records if r.deadline is None]
    met = [r for r in deadline_records if r.met_deadline]
    missed = [r for r in deadline_records if not r.met_deadline]
    lateness = [
        (r.submit_time + r.jct - r.deadline) / 3600.0 for r in missed
    ]
    return {
        "n_slo_jobs": float(len(deadline_records)),
        "attainment": (len(met) / len(deadline_records)
                       if deadline_records else 1.0),
        "mean_lateness_hrs": float(np.mean(lateness)) if lateness else 0.0,
        "best_effort_jct_hrs": (
            float(np.mean([r.jct for r in best_effort])) / 3600.0
            if best_effort else 0.0),
    }
