"""Synthetic production-trace generator.

Synthesizes job streams with the statistical structure of the Helios and
Philly traces (see :mod:`repro.traces.spec` for the parameter sources):

* **Diurnal arrivals** — hour-of-day weighted Poisson submissions with
  occasional burst hours (exercises Time-aware Scaling).
* **Recurring templates** — each user owns a pool of job templates
  (model, batch size, AMP, GPU demand, base duration); ~90% of submissions
  re-run a template with lognormal duration jitter, which is exactly the
  signal Lucid's Workload Estimate Model learns.
* **Skewed durations** — a short/medium/long lognormal mixture whose long
  component is calibrated so the realized mean matches Table 2.
* **Early failures** — a fraction of re-runs die quickly, reproducing the
  debugging-heavy population of §2.2.
* **Correlated scale/heaviness** — long, many-GPU jobs skew toward heavy
  models (BERT, ResNet-50), as the paper's trace construction does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster, make_vc_names
from repro.traces.spec import TraceSpec
from repro.workloads.job import Job
from repro.workloads.model_zoo import (
    MODEL_ZOO,
    ModelSpec,
    WorkloadConfig,
    get_profile,
)

#: CPU threads per GPU by task family: RL rollouts and small-image input
#: pipelines are CPU-hungry; big-model training is compute-bound.  Only
#: consulted when the simulator's CPU model is enabled.
_CPU_DEMANDS = {
    "rl": (12.0, 0.9),
    "img_classification": (8.0, 0.6),
    "img_translation": (6.0, 0.4),
    "point_cloud": (6.0, 0.5),
    "recommendation": (6.0, 0.5),
    "question_answering": (3.0, 0.2),
    "language_modeling": (3.0, 0.2),
    "translation": (3.0, 0.2),
}

# Duration mixture components: (log-median, log-sigma).
_SHORT = (math.log(120.0), 1.0)
_MEDIUM = (math.log(3_600.0), 0.8)
_LONG = (math.log(36_000.0), 0.9)

#: GPU-demand distributions conditioned on the duration component.
_GPU_CHOICES = np.array([1, 2, 4, 8, 16, 32])
_GPU_PROBS = {
    "short": np.array([0.70, 0.15, 0.10, 0.05, 0.00, 0.00]),
    "medium": np.array([0.55, 0.15, 0.15, 0.12, 0.02, 0.01]),
    "long": np.array([0.35, 0.15, 0.20, 0.20, 0.07, 0.03]),
}

#: Fraction of template re-runs that fail or are cancelled early.
EARLY_FAILURE_RATE = 0.08


def _lognormal_mean(log_median: float, sigma: float) -> float:
    return math.exp(log_median + sigma * sigma / 2.0)


@dataclass
class JobTemplate:
    """A recurring job configuration owned by one user."""

    template_id: int
    user: str
    vc: str
    name: str
    config: WorkloadConfig
    gpu_num: int
    base_duration: float
    component: str


@dataclass
class _User:
    name: str
    vc: str
    templates: List[JobTemplate] = field(default_factory=list)


class TraceGenerator:
    """Deterministic synthetic trace generator for one :class:`TraceSpec`.

    The generator owns the user/template universe, so history jobs (used to
    train Lucid's models) and evaluation jobs (replayed by the simulator)
    share recurring templates — the property that makes duration prediction
    from history attainable (§2.3).
    """

    def __init__(self, spec: TraceSpec) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(spec.seed)
        self._vc_names = make_vc_names(spec.n_vcs)
        self._users = self._make_users()
        self._user_weights = self._zipf_weights(len(self._users))
        self._template_counter = 0
        self._job_counter = 0
        self._vc_capacity = {
            vc: nodes * 8
            for vc, nodes in zip(self._vc_names, self._vc_node_counts())
        }
        self._duration_scale = self._calibrate_duration_scale()
        self._model_names = list(MODEL_ZOO)
        self._model_utils = np.array(
            [MODEL_ZOO[m].base_gpu_util for m in self._model_names])

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def build_cluster(self) -> Cluster:
        """Instantiate the cluster described by the spec.

        Nodes are split unevenly across VCs (a mild geometric skew), so
        per-VC contention differs as in Figure 9.
        """
        counts = self._vc_node_counts()
        return Cluster({vc: n for vc, n in zip(self._vc_names, counts)})

    def generate(self, n_jobs: Optional[int] = None,
                 start_day: float = 0.0) -> List[Job]:
        """Generate the evaluation job stream, sorted by submission time."""
        n = n_jobs if n_jobs is not None else self.spec.n_jobs
        return self._generate_jobs(n, start_day=start_day,
                                   span_days=self.spec.span_days)

    def generate_history(self, multiplier: float = 3.0) -> List[Job]:
        """Generate a *preceding* period of completed jobs.

        These model the April–August (SenseTime) / Oct–Dec (Philly) data
        the paper uses to train its models: same user/template universe as
        :meth:`generate`, earlier in time, with realized durations.
        """
        n = max(200, int(self.spec.n_jobs * multiplier))
        span = self.spec.span_days * multiplier
        return self._generate_jobs(n, start_day=-span, span_days=span)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_users(self) -> List[_User]:
        rng = np.random.default_rng(self.spec.seed + 1)
        users = []
        for i in range(self.spec.n_users):
            vc = self._vc_names[int(rng.integers(len(self._vc_names)))]
            users.append(_User(name=f"user{i:03d}", vc=vc))
        # Every VC needs at least one user so no VC stays empty.
        covered = {u.vc for u in users}
        for vc in self._vc_names:
            if vc not in covered and users:
                users[int(rng.integers(len(users)))].vc = vc
                covered.add(vc)
        return users

    @staticmethod
    def _zipf_weights(n: int, a: float = 1.4) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=float)
        w = ranks ** -a
        return w / w.sum()

    def _vc_node_counts(self) -> List[int]:
        """Split nodes across VCs with a geometric skew, each VC >= 1 node."""
        spec = self.spec
        weights = np.array([0.85 ** i for i in range(spec.n_vcs)])
        weights = weights / weights.sum()
        counts = np.maximum(1, np.floor(weights * spec.n_nodes).astype(int))
        # Distribute the remainder to the largest VCs.
        while counts.sum() < spec.n_nodes:
            counts[int(np.argmin(counts / weights))] += 1
        while counts.sum() > spec.n_nodes:
            idx = int(np.argmax(counts))
            if counts[idx] > 1:
                counts[idx] -= 1
        return counts.tolist()

    def _mixture_weights(self) -> Tuple[float, float, float]:
        short = self.spec.short_fraction
        rest = 1.0 - short
        return short, rest * 0.6, rest * 0.4

    def _calibrate_duration_scale(self) -> float:
        """Scale factor for the long component so means match Table 2."""
        w_s, w_m, w_l = self._mixture_weights()
        base = (w_s * _lognormal_mean(*_SHORT)
                + w_m * _lognormal_mean(*_MEDIUM))
        long_mean = _lognormal_mean(*_LONG)
        scale = (self.spec.mean_duration - base) / (w_l * long_mean)
        if scale <= 0:
            # Target mean is below the short+medium contribution alone:
            # fall back to scaling every component uniformly.
            total = base + w_l * long_mean
            return self.spec.mean_duration / total
        return scale

    def _sample_component(self, rng: np.random.Generator) -> str:
        w = self._mixture_weights()
        return ("short", "medium", "long")[int(rng.choice(3, p=np.array(w)))]

    def _sample_duration(self, component: str, rng: np.random.Generator) -> float:
        params = {"short": _SHORT, "medium": _MEDIUM, "long": _LONG}[component]
        value = float(rng.lognormal(mean=params[0], sigma=params[1]))
        if component == "long" or self._duration_scale < 1.0:
            value *= self._duration_scale
        return max(15.0, value)

    def _sample_model(self, component: str, gpu_num: int,
                      rng: np.random.Generator) -> WorkloadConfig:
        bias = self.spec.utilization_bias
        if component == "long" and gpu_num >= 8:
            bias += 1.2  # long large jobs skew heavy (paper §4.1)
        elif component == "short":
            bias -= 0.6
        norm_util = (self._model_utils - 50.0) / 50.0
        weights = np.exp(bias * norm_util)
        weights /= weights.sum()
        name = self._model_names[int(rng.choice(len(weights), p=weights))]
        spec = MODEL_ZOO[name]
        batch = int(rng.choice(np.array(spec.batch_sizes)))
        amp = bool(spec.supports_amp and rng.random() < 0.5)
        return WorkloadConfig(name, batch, amp)

    def _new_template(self, user: _User, rng: np.random.Generator) -> JobTemplate:
        component = self._sample_component(rng)
        gpu_num = int(rng.choice(_GPU_CHOICES, p=_GPU_PROBS[component]))
        # A job can never be placed outside its VC, and demands near the VC
        # capacity stall the whole partition for ages, so clamp to half the
        # VC (small product groups own as little as 1 node and submit
        # correspondingly small jobs in the real traces).
        cap = max(1, self._vc_capacity[user.vc] // 2)
        if gpu_num > cap:
            gpu_num = int(_GPU_CHOICES[_GPU_CHOICES <= cap][-1])
        config = self._sample_model(component, gpu_num, rng)
        self._template_counter += 1
        tid = self._template_counter
        name = (f"{user.name}-{config.model.lower().replace('-', '')}"
                f"-g{gpu_num}-t{tid:05d}")
        template = JobTemplate(
            template_id=tid, user=user.name, vc=user.vc, name=name,
            config=config, gpu_num=gpu_num,
            base_duration=self._sample_duration(component, rng),
            component=component,
        )
        user.templates.append(template)
        return template

    def _arrival_times(self, n: int, start_day: float, span_days: float,
                       rng: np.random.Generator) -> np.ndarray:
        hours = max(1, int(span_days * 24))
        hod = np.arange(hours) % 24
        day = np.arange(hours) // 24
        # Diurnal shape: afternoon peak, deep overnight trough, weekend
        # dip.  Production DL clusters are strongly bursty (§3.3): load
        # concentrates in submission spikes over a light baseline.
        weights = 0.18 + 0.82 * np.exp(-((hod - 14.5) / 4.5) ** 2)
        weekend = (day % 7) >= 5
        weights = np.where(weekend, weights * 0.55, weights)
        # Burst hours: ~5% of hours see 5x submission pressure.
        burst = rng.random(hours) < 0.05
        weights = np.where(burst, weights * 5.0, weights)
        weights = weights / weights.sum()
        hour_idx = rng.choice(hours, size=n, p=weights)
        offsets = rng.uniform(0.0, 3600.0, size=n)
        times = (start_day * 86_400.0) + hour_idx * 3600.0 + offsets
        return np.sort(times)

    def _generate_jobs(self, n: int, start_day: float,
                       span_days: float) -> List[Job]:
        rng = self._rng
        times = self._arrival_times(n, start_day, span_days, rng)
        jobs: List[Job] = []
        for submit_time in times:
            user = self._users[int(rng.choice(len(self._users),
                                              p=self._user_weights))]
            reuse = user.templates and rng.random() < self.spec.recurrence
            if reuse:
                template = user.templates[int(rng.integers(len(user.templates)))]
            else:
                template = self._new_template(user, rng)
            duration = template.base_duration * float(
                rng.lognormal(mean=0.0, sigma=0.25))
            if reuse and rng.random() < EARLY_FAILURE_RATE:
                # Failed/cancelled re-run: dies early regardless of template.
                duration = float(rng.uniform(20.0, 600.0))
            duration = max(10.0, duration)
            self._job_counter += 1
            task = MODEL_ZOO[template.config.model].task
            cpu_per_gpu, cpu_sensitivity = _CPU_DEMANDS.get(task, (4.0, 0.5))
            jobs.append(Job(
                job_id=self._job_counter,
                name=template.name,
                user=template.user,
                vc=template.vc,
                submit_time=float(submit_time),
                duration=duration,
                gpu_num=template.gpu_num,
                profile=get_profile(template.config),
                amp=template.config.amp,
                template_id=template.template_id,
                cpu_per_gpu=cpu_per_gpu,
                cpu_sensitivity=cpu_sensitivity,
            ))
        return jobs


def generate_trace(spec: TraceSpec) -> Tuple[Cluster, List[Job], List[Job]]:
    """Convenience: build (cluster, history jobs, evaluation jobs)."""
    gen = TraceGenerator(spec)
    cluster = gen.build_cluster()
    history = gen.generate_history()
    jobs = gen.generate()
    return cluster, history, jobs
