"""Utilization-mix trace variants and CDF helpers (Figure 12a).

The paper evaluates Lucid's sensitivity to the cluster-wide GPU-utilization
distribution by generating Venus variants whose workload mix skews light
(Venus-L, mimicking Alibaba PAI), medium (Venus-M, the default used in the
end-to-end experiments) or heavy (Venus-H).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.traces.spec import (
    TraceSpec,
    UTIL_HIGH,
    UTIL_LOW,
    UTIL_MEDIUM,
)
from repro.workloads.job import Job


def utilization_variants(spec: TraceSpec) -> Dict[str, TraceSpec]:
    """The L/M/H variants of a trace spec, keyed ``"L"``/``"M"``/``"H"``."""
    return {
        UTIL_LOW: spec.with_utilization(UTIL_LOW),
        UTIL_MEDIUM: spec.with_utilization(UTIL_MEDIUM),
        UTIL_HIGH: spec.with_utilization(UTIL_HIGH),
    }


def job_utilization_samples(jobs: Sequence[Job]) -> np.ndarray:
    """Per-job exclusive GPU utilizations, for CDF plots like Figure 12a."""
    return np.array([job.profile.gpu_util for job in jobs])


def utilization_cdf(jobs: Sequence[Job],
                    grid: Sequence[float] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of job GPU utilization.

    Returns ``(grid, cdf)`` where ``cdf[i]`` is the fraction of jobs whose
    exclusive GPU utilization is <= ``grid[i]``.
    """
    samples = job_utilization_samples(jobs)
    xs = np.asarray(grid, dtype=float) if grid is not None else np.linspace(0, 100, 101)
    if samples.size == 0:
        return xs, np.zeros_like(xs)
    sorted_samples = np.sort(samples)
    cdf = np.searchsorted(sorted_samples, xs, side="right") / samples.size
    return xs, cdf


def mean_utilization(jobs: Sequence[Job]) -> float:
    """GPU-demand-weighted mean exclusive utilization of a job population."""
    if not jobs:
        return 0.0
    weights = np.array([job.gpu_num for job in jobs], dtype=float)
    utils = job_utilization_samples(jobs)
    return float(np.average(utils, weights=weights))
