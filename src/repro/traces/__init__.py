"""Trace substrate: Table-2 specs and synthetic production traces."""

from repro.traces.generator import JobTemplate, TraceGenerator, generate_trace
from repro.traces.spec import (
    PHILLY,
    PHILLY_FULL,
    SATURN,
    SATURN_FULL,
    TRACES,
    UTIL_HIGH,
    UTIL_LOW,
    UTIL_MEDIUM,
    VENUS,
    VENUS_FULL,
    TraceSpec,
    get_spec,
)
from repro.traces.io import (
    read_trace_csv,
    split_history,
    write_native_csv,
)
from repro.traces.slo import assign_deadlines, slo_report
from repro.traces.utilization import (
    job_utilization_samples,
    mean_utilization,
    utilization_cdf,
    utilization_variants,
)

__all__ = [
    "JobTemplate",
    "TraceGenerator",
    "generate_trace",
    "PHILLY",
    "SATURN",
    "VENUS",
    "TRACES",
    "TraceSpec",
    "get_spec",
    "UTIL_HIGH",
    "UTIL_LOW",
    "UTIL_MEDIUM",
    "job_utilization_samples",
    "mean_utilization",
    "utilization_cdf",
    "utilization_variants",
    "VENUS_FULL",
    "SATURN_FULL",
    "PHILLY_FULL",
    "read_trace_csv",
    "split_history",
    "write_native_csv",
    "assign_deadlines",
    "slo_report",
]
