"""Trace import/export.

The reproduction ships synthetic generators, but a downstream user with
access to the *real* public traces should be able to replay them.  This
module reads and writes job traces as CSV in three dialects:

* **native** — this project's own columns (round-trips everything,
  including resource profiles).
* **helios** — the column layout of the published SenseTime Helios traces
  (``job_id, user, vc, gpu_num, state, submit_time, duration, ...``).
* **philly** — the column layout of the published Microsoft Philly trace
  (``jobid, user, vc, submitted_time, run_time, num_gpus, status, ...``).

External rows carry no resource profiles (those traces predate Lucid's
profiler), so imported jobs are assigned profiles by sampling the model
zoo with the same hierarchical heuristic the paper uses for its own
workload assignment (§4.1): long/large jobs skew toward heavy models.
"""

from __future__ import annotations

import csv
import io
import math
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Union

import numpy as np

from repro.traces.generator import _GPU_CHOICES
from repro.workloads.job import Job
from repro.workloads.model_zoo import (
    HEAVY_MODELS,
    LIGHT_MODELS,
    MODEL_ZOO,
    ResourceProfile,
    get_profile,
    WorkloadConfig,
)

NATIVE_COLUMNS = [
    "job_id", "name", "user", "vc", "submit_time", "duration", "gpu_num",
    "gpu_util", "gpu_mem_util", "gpu_mem_mb", "amp", "template_id",
]

#: Completed-state markers accepted when filtering external traces.
_DONE_STATES = {"completed", "pass", "passed", "succeeded", "killed",
                "failed", "canceled", "cancelled"}


class TraceParseError(ValueError):
    """Raised when a trace file cannot be interpreted."""


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------
def write_native_csv(jobs: Sequence[Job],
                     path: Union[str, pathlib.Path, TextIO]) -> int:
    """Write jobs in the native dialect; returns the row count."""
    close = False
    if isinstance(path, (str, pathlib.Path)):
        handle = open(path, "w", newline="")
        close = True
    else:
        handle = path
    try:
        writer = csv.writer(handle)
        writer.writerow(NATIVE_COLUMNS)
        for job in jobs:
            writer.writerow([
                job.job_id, job.name, job.user, job.vc,
                f"{job.submit_time:.3f}", f"{job.duration:.3f}",
                job.gpu_num,
                f"{job.profile.gpu_util:.3f}",
                f"{job.profile.gpu_mem_util:.3f}",
                f"{job.profile.gpu_mem_mb:.3f}",
                int(job.amp),
                "" if job.template_id is None else job.template_id,
            ])
        return len(jobs)
    finally:
        if close:
            handle.close()


# ---------------------------------------------------------------------------
# Import
# ---------------------------------------------------------------------------
def read_trace_csv(path: Union[str, pathlib.Path, TextIO],
                   dialect: str = "auto",
                   seed: int = 0,
                   max_jobs: Optional[int] = None) -> List[Job]:
    """Read a job trace.

    Parameters
    ----------
    path:
        CSV file path or open text handle.
    dialect:
        ``"native"``, ``"helios"``, ``"philly"`` or ``"auto"`` (sniff from
        the header).
    seed:
        RNG seed for profile assignment of external dialects.
    max_jobs:
        Optional cap on imported rows (paper-scale traces are large).
    """
    close = False
    if isinstance(path, (str, pathlib.Path)):
        handle = open(path, newline="")
        close = True
    else:
        handle = path
    try:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise TraceParseError("empty trace file")
        fields = [f.strip().lower() for f in reader.fieldnames]
        reader.fieldnames = fields
        resolved = _resolve_dialect(dialect, fields)
        parser = {
            "native": _parse_native_row,
            "helios": _parse_helios_row,
            "philly": _parse_philly_row,
        }[resolved]
        rng = np.random.default_rng(seed)
        jobs: List[Job] = []
        next_id = 1
        for index, row in enumerate(reader):
            if max_jobs is not None and len(jobs) >= max_jobs:
                break
            parsed = parser(row, index)
            if parsed is None:
                continue
            job_id, name, user, vc, submit, duration, gpus, profile, amp, tid \
                = parsed
            if profile is None:
                profile, amp = _assign_profile(duration, gpus, rng)
            if job_id is None:
                job_id = next_id
            next_id = max(next_id, job_id + 1)
            jobs.append(Job(
                job_id=job_id, name=name, user=user, vc=vc,
                submit_time=submit, duration=duration, gpu_num=gpus,
                profile=profile, amp=amp, template_id=tid,
            ))
        jobs.sort(key=lambda j: (j.submit_time, j.job_id))
        _normalize_epoch(jobs)
        return jobs
    finally:
        if close:
            handle.close()


def _resolve_dialect(dialect: str, fields: List[str]) -> str:
    if dialect != "auto":
        if dialect not in ("native", "helios", "philly"):
            raise TraceParseError(f"unknown dialect {dialect!r}")
        return dialect
    if set(NATIVE_COLUMNS) <= set(fields):
        return "native"
    if "submitted_time" in fields or "run_time" in fields:
        return "philly"
    if "submit_time" in fields and "duration" in fields:
        return "helios"
    raise TraceParseError(
        f"cannot sniff trace dialect from header {fields!r}")


def _get(row: Dict[str, str], *names: str) -> Optional[str]:
    for name in names:
        value = row.get(name)
        if value is not None and value.strip() != "":
            return value.strip()
    return None


def _parse_float(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        return None


def _parse_native_row(row: Dict[str, str], index: int):
    duration = _parse_float(_get(row, "duration"))
    submit = _parse_float(_get(row, "submit_time"))
    gpus = _parse_float(_get(row, "gpu_num"))
    if duration is None or submit is None or gpus is None or duration <= 0:
        return None
    profile = ResourceProfile(
        gpu_util=float(_get(row, "gpu_util")),
        gpu_mem_util=float(_get(row, "gpu_mem_util")),
        gpu_mem_mb=float(_get(row, "gpu_mem_mb")),
        amp=bool(int(_get(row, "amp") or 0)),
    )
    template = _get(row, "template_id")
    return (
        int(float(_get(row, "job_id"))),
        _get(row, "name") or f"job{index}",
        _get(row, "user") or "unknown",
        _get(row, "vc") or "default",
        submit, duration, int(gpus), profile, profile.amp,
        int(template) if template else None,
    )


def _parse_helios_row(row: Dict[str, str], index: int):
    state = (_get(row, "state", "status") or "completed").lower()
    if state not in _DONE_STATES:
        return None
    duration = _parse_float(_get(row, "duration", "run_time"))
    submit = _parse_float(_get(row, "submit_time", "submitted_time"))
    gpus = _parse_float(_get(row, "gpu_num", "num_gpu", "num_gpus"))
    if duration is None or submit is None or duration <= 0:
        return None
    gpu_num = max(1, int(gpus or 1))
    raw_id = _get(row, "job_id", "jobid", "job id")
    return (
        _coerce_id(raw_id),
        _get(row, "job_name", "jobname", "name") or f"job{index}",
        _get(row, "user", "user_name") or "unknown",
        _get(row, "vc", "vc_name", "virtual_cluster") or "default",
        submit, duration, gpu_num, None, False, None,
    )


def _parse_philly_row(row: Dict[str, str], index: int):
    status = (_get(row, "status", "state") or "passed").lower()
    if status not in _DONE_STATES:
        return None
    duration = _parse_float(_get(row, "run_time", "runtime", "duration"))
    submit = _parse_float(_get(row, "submitted_time", "submit_time"))
    gpus = _parse_float(_get(row, "num_gpus", "gpu_num", "num_gpu"))
    if duration is None or submit is None or duration <= 0:
        return None
    raw_id = _get(row, "jobid", "job_id")
    return (
        _coerce_id(raw_id),
        _get(row, "jobname", "job_name") or f"job{index}",
        _get(row, "user", "vc_user") or "unknown",
        _get(row, "vc") or "default",
        submit, duration, max(1, int(gpus or 1)), None, False, None,
    )


def _coerce_id(raw: Optional[str]) -> Optional[int]:
    if raw is None:
        return None
    digits = "".join(ch for ch in raw if ch.isdigit())
    return int(digits) if digits else None


def _assign_profile(duration: float, gpu_num: int,
                    rng: np.random.Generator):
    """Hierarchical workload assignment for external rows (paper §4.1)."""
    heavy_bias = 0.0
    if duration > 6 * 3600.0:
        heavy_bias += 1.0
    if gpu_num >= 8:
        heavy_bias += 1.0
    pool = HEAVY_MODELS if rng.random() < 0.25 * heavy_bias + 0.2 \
        else LIGHT_MODELS
    model = MODEL_ZOO[pool[int(rng.integers(len(pool)))]]
    batch = int(rng.choice(np.array(model.batch_sizes)))
    amp = bool(model.supports_amp and rng.random() < 0.5)
    return model.profile(batch, amp), amp


def _normalize_epoch(jobs: List[Job]) -> None:
    """Shift submissions so the trace starts at t=0 (wall-clock epochs in
    the public traces would otherwise put everything billions of seconds
    out)."""
    if not jobs:
        return
    t0 = jobs[0].submit_time
    if t0 == 0.0:
        return
    for job in jobs:
        job.submit_time -= t0


def split_history(jobs: Sequence[Job], fraction: float = 0.5):
    """Chronologically split an imported trace into (history, evaluation).

    The history half plays the role of the paper's April-August training
    data; evaluation submissions are re-based to start at t=0.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    ordered = sorted(jobs, key=lambda j: j.submit_time)
    cut = int(len(ordered) * fraction)
    history, evaluation = list(ordered[:cut]), list(ordered[cut:])
    if evaluation:
        base = evaluation[0].submit_time
        for job in history:
            job.submit_time -= base
        for job in evaluation:
            job.submit_time -= base
    return history, evaluation
