"""Trace specifications for the three production clusters of Table 2.

The real Helios (SenseTime Venus/Saturn) and Microsoft Philly traces are
public but not bundled offline, so this reproduction synthesizes job streams
from seeded statistical generators whose parameters are taken from Table 2
and the workload characterization of §2.2:

* Venus  — 1,080 GPUs, 15 VCs, 23,859 jobs in September, mean 5,419 s
* Saturn — 2,080 GPUs, 20 VCs, 101,254 jobs in September, mean 13,006 s
* Philly — 864 GPUs, 1 VC, 12,389 jobs in one week of October, mean 25,533 s

plus the cross-cluster invariants: >95% of jobs within 8 GPUs, ~90%
recurring submissions, a large population of short debugging jobs, and
diurnal submission patterns.  Default job counts are scaled down so the
benchmark suite completes in minutes; ``scaled(1.0)`` restores paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

#: Utilization-mix variants of Figure 12(a).
UTIL_LOW = "L"
UTIL_MEDIUM = "M"
UTIL_HIGH = "H"

#: Exponential bias applied to model sampling per utilization variant.
UTILIZATION_BIAS: Dict[str, float] = {UTIL_LOW: -1.6, UTIL_MEDIUM: 0.0, UTIL_HIGH: 1.6}


@dataclass(frozen=True)
class TraceSpec:
    """Statistical description of one production trace.

    Attributes
    ----------
    name:
        Cluster name (``venus``/``saturn``/``philly`` or custom).
    n_nodes:
        Number of 8-GPU servers.
    n_vcs:
        Number of virtual clusters the nodes are partitioned into.
    n_jobs:
        Number of jobs to synthesize (already scaled for fast benches).
    full_n_jobs:
        Paper-scale job count from Table 2.
    mean_duration:
        Target mean job duration in seconds.
    span_days:
        Horizon over which submissions arrive.
    n_users:
        Size of the user population (Zipf-distributed activity).
    recurrence:
        Probability that a submission re-runs an existing template (§2.3).
    short_fraction:
        Mixture weight of short debugging/test jobs (§2.2).
    utilization:
        Workload-mix variant: ``"L"``, ``"M"`` or ``"H"`` (Figure 12a).
    seed:
        Base RNG seed; all generated artifacts are deterministic in it.
    """

    name: str
    n_nodes: int
    n_vcs: int
    n_jobs: int
    full_n_jobs: int
    mean_duration: float
    span_days: float
    n_users: int
    recurrence: float = 0.90
    short_fraction: float = 0.62
    utilization: str = UTIL_MEDIUM
    seed: int = 2023

    def __post_init__(self) -> None:
        if self.utilization not in UTILIZATION_BIAS:
            raise ValueError(f"utilization must be one of {sorted(UTILIZATION_BIAS)}")
        if not 0.0 <= self.recurrence <= 1.0:
            raise ValueError("recurrence must be in [0, 1]")
        if self.n_jobs <= 0 or self.n_nodes <= 0 or self.n_vcs <= 0:
            raise ValueError("n_jobs, n_nodes and n_vcs must be positive")
        if self.n_vcs > self.n_nodes:
            raise ValueError("cannot have more VCs than nodes")

    @property
    def n_gpus(self) -> int:
        return self.n_nodes * 8

    @property
    def utilization_bias(self) -> float:
        return UTILIZATION_BIAS[self.utilization]

    def scaled(self, fraction: float) -> "TraceSpec":
        """Return a copy with ``n_jobs`` set to a fraction of paper scale."""
        if fraction <= 0:
            raise ValueError("fraction must be > 0")
        return replace(self, n_jobs=max(1, int(self.full_n_jobs * fraction)))

    def with_utilization(self, level: str) -> "TraceSpec":
        """Return the Venus-L/M/H style variant of this spec (Figure 12)."""
        return replace(self, utilization=level)

    def with_seed(self, seed: int) -> "TraceSpec":
        return replace(self, seed=seed)

    def with_jobs(self, n_jobs: int) -> "TraceSpec":
        return replace(self, n_jobs=n_jobs)


# ---------------------------------------------------------------------------
# Table 2 presets.  Default n_jobs keeps a full 6-scheduler sweep of all
# three clusters within a few minutes of wall time.
# ---------------------------------------------------------------------------
# NOTE on scaling: simulating the paper-scale month of 10^5 jobs on 10^3
# GPUs takes hours in pure Python, so the default presets scale *both* the
# job count and the cluster size down while preserving the offered load
# (sum of GPU-seconds demanded / GPU-seconds available ~ 0.5-0.7 with
# diurnal peaks above 1), which is what produces realistic queuing
# dynamics.  ``paper_scale()`` restores Table-2 dimensions.

VENUS = TraceSpec(
    name="venus", n_nodes=60, n_vcs=15,
    n_jobs=2400, full_n_jobs=23_859, mean_duration=5_419.0,
    span_days=3.0, n_users=120, seed=41,
)
VENUS_FULL = TraceSpec(
    name="venus", n_nodes=135, n_vcs=15,
    n_jobs=23_859, full_n_jobs=23_859, mean_duration=5_419.0,
    span_days=30.0, n_users=400, seed=41,
)

SATURN = TraceSpec(
    name="saturn", n_nodes=200, n_vcs=20,
    n_jobs=3600, full_n_jobs=101_254, mean_duration=13_006.0,
    span_days=4.0, n_users=200, seed=42,
)
SATURN_FULL = TraceSpec(
    name="saturn", n_nodes=260, n_vcs=20,
    n_jobs=101_254, full_n_jobs=101_254, mean_duration=13_006.0,
    span_days=30.0, n_users=800, seed=42,
)

PHILLY = TraceSpec(
    name="philly", n_nodes=80, n_vcs=1,
    n_jobs=2200, full_n_jobs=12_389, mean_duration=25_533.0,
    span_days=4.0, n_users=80, short_fraction=0.55, seed=43,
)
PHILLY_FULL = TraceSpec(
    name="philly", n_nodes=108, n_vcs=1,
    n_jobs=12_389, full_n_jobs=12_389, mean_duration=25_533.0,
    span_days=7.0, n_users=300, short_fraction=0.55, seed=43,
)

TRACES: Dict[str, TraceSpec] = {s.name: s for s in (VENUS, SATURN, PHILLY)}


def get_spec(name: str) -> TraceSpec:
    """Look up one of the Table-2 trace presets by cluster name."""
    try:
        return TRACES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown trace {name!r}; known: {sorted(TRACES)}") from None
