"""Affine-Jobpair Binder (§3.3): Indolent Packing + Dynamic Strategy.

The Binder decides *whether and how* to colocate jobs, entirely from
non-intrusive signals.  **Indolent Packing** only packs jobs unlikely to
interfere: every GPU has a sharing capacity ``GSS`` (default 2) and a pair
may share only if the sum of their predicted Sharing Scores stays within
it.  The paper's packing rules are enforced here:

1. hard GPU-memory limit (no OOM),
2. only equal GPU demands are paired (straggler effect),
3. at most two jobs per GPU set,
4. packed jobs with unstable utilization are evicted introspectively,
5. distributed (multi-node) jobs are never packed.

The **Dynamic Strategy** adjusts the packing aggressiveness with the
cluster-throughput forecast: Default mode (GSS=2) under normal load,
Apathetic mode (GSS=1) when load is low, packing disabled when the cluster
is nearly idle and no burst is forecast.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from repro.cluster.placement import find_shared
from repro.obs.audit import BinderVerdict, DecisionAudit
from repro.workloads.job import Job, JobStatus


class PackingMode(enum.Enum):
    """Dynamic-strategy operating modes (§3.3)."""

    DEFAULT = 2    # GSS capacity 2
    APATHETIC = 1  # GSS capacity 1
    DISABLED = 0   # no sharing

    @property
    def gss_capacity(self) -> int:
        return self.value


class AffineJobpairBinder:
    """Selects interference-free packing mates for queued jobs.

    Parameters
    ----------
    gss_capacity:
        GPU Sharing Capacity in Default mode.
    min_mate_remaining:
        Do not pack onto a job estimated to finish sooner than this —
        time-awareness that avoids useless short-lived pairings (§3.1 C).
    """

    def __init__(self, gss_capacity: int = 2,
                 min_mate_remaining: float = 300.0) -> None:
        if gss_capacity not in (1, 2):
            raise ValueError("gss_capacity must be 1 or 2")
        self.base_capacity = gss_capacity
        self.mode = PackingMode.DEFAULT if gss_capacity == 2 else PackingMode.APATHETIC
        self.min_mate_remaining = min_mate_remaining
        self._pass_index: Optional[dict] = None
        #: Optional :class:`repro.obs.audit.DecisionAudit`; when set,
        #: every mate search leaves a :class:`BinderVerdict` explaining
        #: the accepted mate or the rejection-reason census.
        self.audit: Optional[DecisionAudit] = None
        #: Optional sharing-score attributor (``profile -> Attribution``),
        #: bound by the scheduler when the audit has ``attribution=True``;
        #: explains *why* the Packing Analyze Model scored the job.
        self.attributor: Optional[Callable] = None

    # ------------------------------------------------------------------
    @property
    def sharing_enabled(self) -> bool:
        return self.mode is not PackingMode.DISABLED

    @property
    def gss_capacity(self) -> int:
        if self.mode is PackingMode.DEFAULT:
            return min(2, self.base_capacity)
        if self.mode is PackingMode.APATHETIC:
            return 1
        return 0

    def set_mode(self, mode: PackingMode) -> None:
        self.mode = mode

    # ------------------------------------------------------------------
    def find_mate(self, engine, job: Job,
                  remaining_estimate: Callable[[Job], float]
                  ) -> Optional[Job]:
        """Best running mate for ``job``, or ``None``.

        Candidates must be running exclusively in the same VC with the
        same GPU demand on a single node; the pair must satisfy the GSS
        budget, fit device memory and pass the time-awareness filter.
        Among valid candidates the lowest-sharing-score (least
        interference) mate wins.
        """
        if not self.sharing_enabled:
            return self._verdict(job, None, rejections={"sharing_disabled": 1})
        if job.gpu_num > engine.cluster.gpus_per_node:
            # rule 5: never pack distributed jobs
            return self._verdict(job, None, rejections={"job_distributed": 1})
        if job.sharing_score is None:
            # unprofiled jobs are never packed
            return self._verdict(job, None, rejections={"job_unprofiled": 1})
        if self._pass_index is not None:
            candidates = self._pass_index.get((job.vc, job.gpu_num), [])
        else:
            candidates = engine.running_jobs()
        best: Optional[Job] = None
        best_key = None
        rejections: Optional[Dict[str, int]] = (
            {} if self.audit is not None else None)
        n_candidates = 0
        for mate in candidates:
            n_candidates += 1
            reason = self._reject_reason(engine, job, mate,
                                         remaining_estimate)
            if reason is not None:
                if rejections is not None:
                    rejections[reason] = rejections.get(reason, 0) + 1
                continue
            key = (mate.sharing_score,
                   self._cpu_overload(engine, job, mate),
                   mate.profile.gpu_util)
            if best_key is None or key < best_key:
                best_key = key
                best = mate
        return self._verdict(job, best, rejections=rejections or {},
                             candidates=n_candidates)

    def _verdict(self, job: Job, mate: Optional[Job],
                 rejections: Dict[str, int],
                 candidates: int = 0) -> Optional[Job]:
        """Record the search outcome in the audit (when enabled)."""
        if self.audit is not None:
            attribution = None
            if (self.audit.attribution and self.attributor is not None
                    and job.sharing_score is not None
                    and job.measured_profile is not None):
                attribution = self.attributor(job.measured_profile)
            self.audit.note_binder(BinderVerdict(
                job_id=job.job_id,
                mate_id=mate.job_id if mate is not None else None,
                mode=self.mode.name,
                gss_capacity=self.gss_capacity,
                job_score=job.sharing_score,
                mate_score=mate.sharing_score if mate is not None else None,
                candidates=candidates,
                rejections=rejections,
                attribution=attribution))
        return mate

    @staticmethod
    def _cpu_overload(engine, job: Job, mate: Job) -> float:
        """Predicted node-CPU oversubscription of pairing job with mate.

        Synergy-style soft preference (paper SS6): CPU budgets rank mate
        candidates — a pair that fits the node's CPUs beats one that
        starves both jobs' input pipelines — but never veto packing, which
        under contention is still worth more than the squeeze costs.
        Returns 0 when the CPU model is disabled.
        """
        if not getattr(engine, "model_cpu", False):
            return 0.0
        gpus = engine.gpus_of(mate)
        node = engine.cluster.node(gpus[0].node_id)
        demand = (job.cpu_per_gpu + mate.cpu_per_gpu) * job.gpu_num
        for node_gpu in node.gpus:
            for rid in node_gpu.residents:
                if rid != mate.job_id:
                    resident = engine.jobs[rid]
                    demand += resident.cpu_per_gpu
        return max(0.0, demand - node.cpus)

    def begin_pass(self, engine) -> None:
        """Index exclusive running jobs by (VC, GPU count) for one
        scheduling pass.  Pure performance aid: :meth:`_mate_ok` re-checks
        every condition, so a stale entry is filtered, never mis-packed."""
        index: dict = {}
        if self.sharing_enabled:
            for mate in engine.running_jobs():
                if (mate.status is JobStatus.RUNNING
                        and mate.sharing_score is not None
                        and mate.gpu_num <= engine.cluster.gpus_per_node
                        and not engine.has_mates(mate)):
                    index.setdefault((mate.vc, mate.gpu_num), []).append(mate)
        self._pass_index = index

    def end_pass(self) -> None:
        self._pass_index = None

    def _mate_ok(self, engine, job: Job, mate: Job,
                 remaining_estimate: Callable[[Job], float]) -> bool:
        return self._reject_reason(engine, job, mate,
                                   remaining_estimate) is None

    def _reject_reason(self, engine, job: Job, mate: Job,
                       remaining_estimate: Callable[[Job], float]
                       ) -> Optional[str]:
        """Why ``mate`` cannot host ``job``; ``None`` when it can.

        The reason strings feed the audit's rejection census, so they are
        stable identifiers, not prose.
        """
        if mate.job_id == job.job_id or mate.status is not JobStatus.RUNNING:
            return "not_running"
        if mate.vc != job.vc:
            return "different_vc"
        if mate.gpu_num != job.gpu_num:  # rule 2: equal demands only
            return "unequal_gpu_demand"
        if mate.gpu_num > engine.cluster.gpus_per_node:  # rule 5
            return "mate_distributed"
        if mate.sharing_score is None:
            return "mate_unprofiled"
        if engine.has_mates(mate):  # rule 3: at most two per GPU set
            return "has_mate"
        if mate.sharing_score + job.sharing_score > self.gss_capacity:
            return "gss_budget"  # Indolent Packing GSS budget
        mate_left = remaining_estimate(mate)
        if mate_left < self.min_mate_remaining:
            return "mate_finishing"  # packing buys nothing
        mate_gpus = engine.gpus_of(mate)
        if any(not g.healthy or g.fault_slow < 1.0 for g in mate_gpus):
            # Fault degradation: never pack onto a node that is draining
            # after a failure or crawling through a straggler window.
            return "node_draining"
        gpus = find_shared(engine.cluster, mate_gpus,
                           job.profile.gpu_mem_mb)  # rule 1: OOM guard
        return None if gpus is not None else "memory"

    # ------------------------------------------------------------------
    def update_mode(self, load_level: float, forecast_level: float,
                    queue_pressure: int = 0) -> PackingMode:
        """Dynamic Strategy: pick the mode from forecast + cluster state.

        ``load_level`` and ``forecast_level`` are throughput relative to
        the historical median (1.0 = typical); ``queue_pressure`` is the
        recent peak length of the main pending queue.  Per §3.3, the mode
        follows "its prediction and current cluster states": with no
        queue and no burst forecast, packing only slows jobs down, so
        sharing is disabled; under mild load it turns Apathetic (GSS=1);
        contention restores the Default mode.  Thresholds are the
        "customizable" knobs the paper mentions.
        """
        peak = max(load_level, forecast_level)
        if queue_pressure == 0 and peak < 1.3:
            self.mode = PackingMode.DISABLED
        elif queue_pressure <= 3:
            self.mode = PackingMode.APATHETIC
        else:
            self.mode = (PackingMode.DEFAULT if self.base_capacity == 2
                         else PackingMode.APATHETIC)
        return self.mode

    # ------------------------------------------------------------------
    def unstable_pairs(self, engine, rng, instability_rate: float = 0.0
                       ) -> List[Job]:
        """Rule 4: detect packed jobs with unstable utilization patterns.

        The ground-truth simulator has no utilization time series, so
        instability is modelled as a small per-check probability for each
        packed pair; returns the jobs to evict (the later-arrived of each
        flagged pair).
        """
        if instability_rate <= 0:
            return []
        evict: List[Job] = []
        seen = set()
        for job in engine.running_jobs():
            if job.job_id in seen:
                continue
            ids = engine.mate_ids(job)
            if not ids:
                continue
            # Rule 3 caps packing at two per GPU set, so a packed job
            # has exactly one mate.
            mate = engine.jobs[min(ids)]
            seen.add(job.job_id)
            seen.add(mate.job_id)
            if rng.random() < instability_rate:
                evict.append(max(job, mate, key=lambda j: j.job_id))
        return evict
