"""Heterogeneity-aware Lucid (paper §6 future work).

``HeteroLucidScheduler`` extends Lucid with GPU-generation-aware
placement: the Workload Estimate Model's duration prediction decides
whether a job is worth fast silicon.  Jobs with large estimated service
(duration × GPUs) are placed on the fastest available generation; short
debugging jobs are steered to older GPUs, which they leave quickly anyway
— the throughput-matching intuition of Gavel, implemented without its
LP-solver scalability cost (the placement ranking is O(nodes)).

Use with a cluster built by
:func:`repro.cluster.hetero.build_heterogeneous_cluster`; on a homogeneous
cluster it degrades exactly to :class:`~repro.core.lucid.LucidScheduler`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster.hetero import find_tolerant_placement
from repro.core.lucid import LucidConfig, LucidScheduler
from repro.workloads.job import Job


class HeteroLucidScheduler(LucidScheduler):
    """Lucid with GPU-generation-aware exclusive placement.

    Parameters
    ----------
    history, config, interference:
        As for :class:`LucidScheduler`.
    max_extra_fraction, max_extra_seconds:
        Tolerance of the slowest-tolerable-tier policy: a job accepts a
        slower generation while the extra runtime stays within
        ``max(max_extra_fraction * estimate, max_extra_seconds)``.
    """

    name = "lucid-hetero"

    def __init__(self, history: Sequence[Job],
                 config: Optional[LucidConfig] = None,
                 interference=None,
                 max_extra_fraction: float = 1.0,
                 max_extra_seconds: float = 1800.0) -> None:
        super().__init__(history, config=config, interference=interference)
        if max_extra_fraction < 0 or max_extra_seconds < 0:
            raise ValueError("tolerances must be non-negative")
        self.max_extra_fraction = max_extra_fraction
        self.max_extra_seconds = max_extra_seconds

    def attach(self, engine) -> None:
        super().attach(engine)
        self.orchestrator.place_exclusive = self._typed_placement

    # ------------------------------------------------------------------
    def _typed_placement(self, engine, job: Job) -> Optional[List]:
        estimate = (job.estimated_duration
                    if job.estimated_duration is not None else 3600.0)
        return find_tolerant_placement(
            engine.cluster, job.gpu_num,
            est_duration=max(60.0, estimate), vc=job.vc,
            min_memory_mb=job.profile.gpu_mem_mb,
            max_extra_fraction=self.max_extra_fraction,
            max_extra_seconds=self.max_extra_seconds)
