"""SLO-aware Lucid (paper §6 future work, in the spirit of Chronus).

The paper's first extension direction is "supporting more scheduling
objectives like fairness and SLO-guarantee".  ``SLOLucidScheduler`` adds
deadline awareness on top of Lucid's machinery:

* Jobs may carry a ``deadline`` (assign one with
  :func:`repro.traces.slo.assign_deadlines`).
* A deadline job's *slack* is ``deadline - now - estimated_remaining``.
  Jobs whose slack falls below a guard band are **urgent**: they jump to
  the front of the scheduling pass (before the priority order) so the
  next free consolidated block is theirs, and they are never packed (a
  packed job runs below full speed, eating slack).
* Non-urgent deadline jobs and best-effort jobs schedule exactly as in
  Lucid, so the JCT-optimizing behaviour is preserved when SLOs are easy.

Everything stays non-intrusive: slack uses Lucid's own duration estimate,
never the ground truth.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.lucid import LucidConfig, LucidScheduler
from repro.workloads.job import Job


class SLOLucidScheduler(LucidScheduler):
    """Lucid with an earliest-slack urgency tier for deadline jobs.

    Parameters
    ----------
    history, config, interference:
        As for :class:`LucidScheduler`.
    slack_guard:
        A deadline job becomes urgent when its estimated slack drops below
        ``slack_guard * estimated_remaining`` (relative guard band).
    """

    name = "lucid-slo"

    def __init__(self, history: Sequence[Job],
                 config: Optional[LucidConfig] = None,
                 interference=None,
                 slack_guard: float = 0.5) -> None:
        super().__init__(history, config=config, interference=interference)
        if slack_guard < 0:
            raise ValueError("slack_guard must be non-negative")
        self.slack_guard = slack_guard

    # ------------------------------------------------------------------
    def _slack(self, job: Job) -> Optional[float]:
        if job.deadline is None:
            return None
        return job.deadline - self.engine.now - self._remaining_estimate(job)

    def _is_urgent(self, job: Job) -> bool:
        slack = self._slack(job)
        if slack is None:
            return False
        guard = self.slack_guard * self._remaining_estimate(job)
        return slack <= guard

    def _priority(self, job: Job) -> float:
        # Urgent deadline jobs sort ahead of everything, ordered by slack
        # (most endangered first); the rest keep Lucid's priority.
        slack = self._slack(job)
        if slack is not None and self._is_urgent(job):
            return -1e15 + slack
        return super()._priority(job)

    def _find_mate(self, job: Job) -> Optional[Job]:
        # Packing slows the packed pair down; an urgent job cannot afford
        # it, and packing *onto* an urgent job would equally eat its slack.
        if self._is_urgent(job):
            return None
        mate = super()._find_mate(job)
        if mate is not None and self._is_urgent(mate):
            return None
        return mate
