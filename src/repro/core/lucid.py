"""The Lucid scheduler: composition of all modules (Figure 4).

Workflow (black arrows of Figure 4): submitted jobs first pass the
Non-intrusive Job Profiler (1), which filters debugging jobs and records
resource-usage metrics classified into sharing scores by the Packing
Analyze Model (2).  The Affine-Jobpair Binder decides packing under the
throughput-forecast-driven Dynamic Strategy (3), and the Resource
Orchestrator allocates by estimated-duration x GPU priority (4).  The
System Optimizer (Update Engine + System Tuner) maintains the models.

Every inter-module dependency of §3.1 is wired: the Orchestrator consumes
profiled features through the Workload Estimate Model (A), the Throughput
Predict Model drives both the Binder's mode and the Profiler's scaling
(B), and the Binder consumes duration estimates for time-aware packing
(C).  Ablation switches in :class:`LucidConfig` disable each dependency
for the Figure-11 micro-benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.binder import AffineJobpairBinder, PackingMode
from repro.core.estimator import WorkloadEstimateModel
from repro.core.orchestrator import ResourceOrchestrator
from repro.core.packing_model import PackingAnalyzeModel
from repro.core.profiler import NonIntrusiveProfiler
from repro.core.throughput import ThroughputPredictModel
from repro.core.update_engine import UpdateEngine
from repro.models.encoding import SECONDS_PER_HOUR, hourly_series
from repro.obs.audit import DecisionAudit, PlacementDecision
from repro.obs.logutil import get_logger
from repro.schedulers.base import Scheduler
from repro.workloads.colocation import InterferenceModel
from repro.workloads.job import Job, JobRecord, JobStatus

#: Fallback duration estimate when the estimator is ablated away.
RUNTIME_AGNOSTIC_ESTIMATE = 3600.0

logger = get_logger("core.lucid")


@dataclass(frozen=True)
class LucidConfig:
    """All operator-tunable knobs of Lucid.

    The defaults mirror the paper: ``T_prof`` 200 s (Table 6), ``N_prof``
    8 GPUs, GSS capacity 2, binder thresholds (0.85, 0.95), and a periodic
    model update.  The ``enable_*`` / ``packing_policy`` switches exist for
    the ablation studies of §4.5.
    """

    t_prof: float = 200.0
    n_prof: int = 8
    profiler_nodes: int = 2
    profiler_borrow_nodes: int = 2
    gss_capacity: int = 2
    tiny_threshold: float = 0.95
    medium_threshold: float = 0.85
    enable_profiler: bool = True
    space_aware_profiling: bool = True
    enable_estimator: bool = True
    use_profile_features: bool = True
    packing_policy: str = "indolent"  # "indolent" | "naive" | "off"
    dynamic_strategy: bool = True
    time_aware_scaling: bool = True
    update_interval: Optional[float] = 2 * 86_400.0
    control_interval: float = 300.0
    starvation_threshold: float = 8 * 3600.0
    instability_rate: float = 0.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.packing_policy not in ("indolent", "naive", "off"):
            raise ValueError("packing_policy must be indolent|naive|off")
        if self.t_prof <= 0 or self.n_prof < 1:
            raise ValueError("invalid profiler limits")

    def ablated(self, **changes) -> "LucidConfig":
        """Convenience for micro-benchmarks: a modified copy."""
        return replace(self, **changes)


class LucidScheduler(Scheduler):
    """Non-intrusive, scalable and interpretable DL-cluster scheduler.

    Parameters
    ----------
    history:
        Historical (completed) jobs used to train the Workload Estimate
        and Throughput Predict models — the April-August data of §4.1.
    config:
        Knobs; see :class:`LucidConfig`.
    interference:
        The offline colocation characterization apparatus used to train
        the Packing Analyze Model.  Note this is *training* data collected
        on a profiling testbed (Table 1), not a peek at the simulator's
        ground truth at decision time.
    audit:
        Optional :class:`~repro.obs.audit.DecisionAudit`.  When omitted,
        one is created automatically iff the engine is traced, so every
        placement becomes explainable at zero cost to untraced runs.
    """

    name = "lucid"

    def __init__(self, history: Sequence[Job],
                 config: Optional[LucidConfig] = None,
                 interference: Optional[InterferenceModel] = None,
                 audit: Optional[DecisionAudit] = None) -> None:
        super().__init__()
        if not history:
            raise ValueError("Lucid requires non-empty training history")
        self.audit = audit
        self.config = config or LucidConfig()
        self.history = list(history)
        self._train_interference = interference or InterferenceModel()
        self.tick_interval = self.config.control_interval

        self._rng = np.random.default_rng(self.config.seed)
        self.profiler: Optional[NonIntrusiveProfiler] = None
        self.packing_model: Optional[PackingAnalyzeModel] = None
        self.estimator: Optional[WorkloadEstimateModel] = None
        self.throughput_model: Optional[ThroughputPredictModel] = None
        self.binder: Optional[AffineJobpairBinder] = None
        self.orchestrator = ResourceOrchestrator(
            starvation_threshold=self.config.starvation_threshold)
        self.update_engine: Optional[UpdateEngine] = None
        self._submit_times: List[float] = []
        self._main_start: Dict[int, float] = {}
        self._next_control = 0.0
        self._queue_peak = 0
        self.mode_history: List[PackingMode] = []

    # ------------------------------------------------------------------
    # Training / attachment
    # ------------------------------------------------------------------
    def attach(self, engine) -> None:
        super().attach(engine)
        cfg = self.config
        if self.audit is None and engine.tracer.enabled:
            self.audit = DecisionAudit(tracer=engine.tracer)
        elif self.audit is not None and self.audit.tracer is None:
            self.audit.tracer = engine.tracer
        if cfg.enable_profiler:
            self.profiler = NonIntrusiveProfiler(
                base_nodes=cfg.profiler_nodes,
                max_borrowed_nodes=cfg.profiler_borrow_nodes,
                t_prof=cfg.t_prof, n_prof=cfg.n_prof,
                space_aware=cfg.space_aware_profiling, rng=self._rng)
        if cfg.packing_policy != "off":
            self.packing_model = PackingAnalyzeModel(
                tiny_threshold=cfg.tiny_threshold,
                medium_threshold=cfg.medium_threshold,
            ).fit(self._train_interference)
        if cfg.enable_estimator:
            self.estimator = WorkloadEstimateModel(
                use_profile=cfg.use_profile_features,
                random_state=cfg.seed).fit(self.history)
        self.throughput_model = ThroughputPredictModel(
            random_state=cfg.seed).fit_events(
                [j.submit_time for j in self.history])
        self.binder = AffineJobpairBinder(gss_capacity=cfg.gss_capacity)
        self.binder.audit = self.audit
        self.update_engine = UpdateEngine(self.estimator,
                                          interval=cfg.update_interval)
        self.update_engine.audit = self.audit
        self.update_engine.profiler = engine.profiler
        if self.audit is not None and self.audit.attribution:
            # Interpretability wiring: bind the frozen models' attributors
            # so every placement decision carries a per-feature Attribution
            # and ``audit.counterfactual`` can re-run the models on
            # perturbed inputs.  Pure observers — scheduling decisions are
            # bit-identical with attribution off.
            if self.estimator is not None:
                self.audit.bind_job_attributor(self.estimator.safe_attribute)
                self.audit.bind_vector_attributor(
                    "duration", self.estimator.attribute_vector)
            if self.packing_model is not None:
                self.binder.attributor = self.packing_model.attribute
                self.audit.bind_vector_attributor(
                    "sharing", self.packing_model.attribute_vector)
        self._next_control = 0.0

    # ------------------------------------------------------------------
    # Event callbacks
    # ------------------------------------------------------------------
    def on_job_submit(self, job: Job, now: float) -> None:
        self._submit_times.append(now)
        if self.profiler is not None and self.profiler.wants(job):
            if not self.profiler.is_down:
                self.profiler.enqueue(job)
                self.lineage_note(job, "profiler")
                self.trace_event("sched_submit", job, now,
                                 queue_depth=len(self.queue),
                                 routed="profiler")
                return
            # Graceful degradation: the profiling cluster is down, so the
            # job runs unprofiled — no sharing score means the binder
            # never packs it (conservative no-packing default).
            self._admit_to_main(job)
            self.lineage_note(job, "main_degraded")
            self.trace_event("sched_submit", job, now,
                             queue_depth=len(self.queue),
                             routed="main_degraded")
            return
        # Large-scale jobs skip profiling; metrics are collected on the fly.
        job.measured_profile = job.profile.with_noise(self._rng)
        self._admit_to_main(job)
        self.lineage_note(job, "main")
        self.trace_event("sched_submit", job, now,
                         queue_depth=len(self.queue), routed="main")

    def on_time_limit(self, job: Job, now: float) -> None:
        """Profiling window expired: evict, measure, hand to the main queue.

        Non-intrusive means no checkpoint: the evicted job restarts from
        scratch on the main cluster, losing at most ``T_prof`` of work.
        """
        job.measured_profile = self.profiler.measure(job)
        job.profiled = True
        self.engine.stop_job(job)
        job.progress = 0.0
        self._admit_to_main(job)

    def _admit_to_main(self, job: Job) -> None:
        if self.packing_model is not None and job.measured_profile is not None:
            job.sharing_score = self.packing_model.sharing_score(
                job.measured_profile)
        if self.estimator is not None:
            # safe_predict: a missing profile or degraded model yields the
            # conservative constant instead of crashing the schedule loop.
            self.profile_count("estimator_predictions")
            job.estimated_duration = self.estimator.safe_predict(
                job, default=RUNTIME_AGNOSTIC_ESTIMATE)
        self.queue.append(job)

    def on_job_finish(self, job: Job, now: float) -> None:
        super().on_job_finish(job, now)
        self._main_start.pop(job.job_id, None)
        if self.update_engine is not None:
            self.update_engine.collect(JobRecord.from_job(job), now)

    def on_job_failed(self, job: Job, now: float,
                      permanent: bool = False) -> None:
        """Fault-retry routing (see :mod:`repro.faults`).

        A job killed during profiling goes back through the profiler
        (when it is up); anything else re-enters the main queue.  With
        the profiling cluster down, jobs requeue unprofiled and fall
        back to no-packing defaults.
        """
        self._main_start.pop(job.job_id, None)
        if permanent:
            self.trace_event("sched_failed", job, now,
                             queue_depth=len(self.queue))
            return
        if (self.profiler is not None and self.profiler.wants(job)
                and not job.profiled and job.measured_profile is None
                and not self.profiler.is_down):
            self.profiler.enqueue(job)
            self.lineage_note(job, "profiler")
            self.trace_event("sched_retry", job, now,
                             queue_depth=len(self.queue), routed="profiler")
            return
        self._admit_to_main(job)
        self.lineage_note(job, "main")
        self.trace_event("sched_retry", job, now,
                         queue_depth=len(self.queue), routed="main")

    # ------------------------------------------------------------------
    # Estimation helpers
    # ------------------------------------------------------------------
    def _remaining_estimate(self, job: Job) -> float:
        """Non-intrusive remaining-runtime estimate (seconds).

        Uses only the duration estimate and observable wall time since the
        job started on the main cluster — never the ground-truth progress.
        """
        if job.estimated_duration is None:
            return RUNTIME_AGNOSTIC_ESTIMATE
        started = self._main_start.get(job.job_id)
        elapsed = 0.0 if started is None else max(0.0, self.engine.now - started)
        return max(30.0, job.estimated_duration - elapsed)

    def _priority(self, job: Job) -> float:
        if self.estimator is None:
            return job.submit_time  # runtime-agnostic ablation
        return job.gpu_num * self._remaining_estimate(job)

    # ------------------------------------------------------------------
    # Packing-mate selection per policy
    # ------------------------------------------------------------------
    def _find_mate(self, job: Job) -> Optional[Job]:
        policy = self.config.packing_policy
        if policy == "off":
            return None
        self.profile_count("binder_attempts")
        if policy == "indolent":
            return self.binder.find_mate(self.engine, job,
                                         self._remaining_estimate)
        return self._naive_mate(job)

    def _naive_mate(self, job: Job) -> Optional[Job]:
        """Naive bin-packing (the "w/o Binder" ablation): classic best-fit
        on GPU *memory* — pick the mate leaving the least free memory —
        with no interference or time awareness.  Memory-densest packing
        systematically pairs heavy jobs together, which is exactly the
        behaviour Indolent Packing exists to avoid."""
        from repro.cluster.placement import find_shared
        if job.gpu_num > self.engine.cluster.gpus_per_node:
            return None
        best = None
        best_free = None
        for mate in self.engine.running_jobs():
            if (mate.job_id == job.job_id
                    or mate.status is not JobStatus.RUNNING
                    or mate.vc != job.vc
                    or mate.gpu_num != job.gpu_num
                    or mate.gpu_num > self.engine.cluster.gpus_per_node
                    or self.engine.has_mates(mate)):
                continue
            gpus = find_shared(self.engine.cluster, self.engine.gpus_of(mate),
                               job.profile.gpu_mem_mb)
            if gpus is None:
                continue
            free_after = min(g.memory_free_mb for g in gpus) \
                - job.profile.gpu_mem_mb
            if best_free is None or free_after < best_free:
                best_free = free_after
                best = mate
        return best

    @property
    def _sharing_mode(self) -> str:
        """Orchestrator aggressiveness derived from the binder's mode."""
        if self.config.packing_policy == "off":
            return "off"
        if self.config.packing_policy == "naive":
            return "eager"  # naive bin-packing has no dynamic strategy
        mode = self.binder.mode
        if mode is PackingMode.DEFAULT:
            return "eager"
        if mode is PackingMode.APATHETIC:
            return "fallback"
        return "off"

    # ------------------------------------------------------------------
    # Scheduling loop
    # ------------------------------------------------------------------
    def schedule(self, now: float) -> None:
        self._queue_peak = max(self._queue_peak, len(self.queue))
        if now >= self._next_control:
            with self.profile_span("lucid.control"):
                self._control(now)
            self._next_control = now + self.config.control_interval
        if self.profiler is not None and self.profiler.is_down:
            # Degradation: move waiting candidates to the main queue so
            # they are not stranded behind dead profiler nodes.
            for waiting in self.profiler.drain():
                self._admit_to_main(waiting)
        if self.profiler is not None:
            with self.profile_span("lucid.profiler"):
                started = self.profiler.allocate(self.engine)
            if self.audit is not None:
                for job in started:
                    gpus = self.engine.gpus_of(job)
                    self.audit.record(PlacementDecision(
                        time=now, job_id=job.job_id, mode="profiling",
                        gpu_ids=tuple(g.gpu_id for g in gpus),
                        node_ids=tuple(g.node_id for g in gpus),
                        note=f"T_prof={self.profiler.t_prof:.0f}s, "
                             f"N_prof={self.profiler.n_prof}"))
        if self.config.packing_policy == "indolent":
            self.binder.begin_pass(self.engine)
        with self.profile_span("lucid.orchestrate"):
            placed = self.orchestrator.schedule(
                self.engine, self.queue, priority_fn=self._priority,
                find_mate=self._find_mate, sharing_mode=self._sharing_mode,
                now=now, audit=self.audit)
        self.binder.end_pass()
        for job in placed:
            self.queue.remove(job)
            self._main_start[job.job_id] = now

    # ------------------------------------------------------------------
    # Control plane: dynamic strategy, time-aware scaling, updates
    # ------------------------------------------------------------------
    def _recent_hourly_series(self, now: float, hours: int = 48) -> np.ndarray:
        cutoff = now - hours * SECONDS_PER_HOUR
        recent = [t for t in self._submit_times if t >= cutoff]
        if not recent:
            return np.zeros(hours)
        series, _ = hourly_series(recent, start_time=cutoff, end_time=now)
        return series

    def _control(self, now: float) -> None:
        cfg = self.config
        series = self._recent_hourly_series(now)
        current = float(series[-1]) if series.size else 0.0
        forecast = self.throughput_model.forecast_next(series[:-1], now)
        current_level = self.throughput_model.load_level(current)
        forecast_level = self.throughput_model.load_level(forecast)

        if cfg.dynamic_strategy and cfg.packing_policy == "indolent":
            previous = self.binder.mode
            mode = self.binder.update_mode(
                current_level, forecast_level,
                queue_pressure=self._queue_peak)
            self.mode_history.append(mode)
            if mode is not previous:
                logger.debug("dynamic strategy: %s -> %s at t=%.0fs "
                             "(load %.2f, forecast %.2f, queue peak %d)",
                             previous.name, mode.name, now, current_level,
                             forecast_level, self._queue_peak)
        self._queue_peak = len(self.queue)

        if cfg.time_aware_scaling and self.profiler is not None:
            burst = (self.profiler.pending_demand_gpus()
                     > self.profiler.capacity_gpus
                     or forecast_level > 1.5)
            if burst and not self.profiler.scaled_up:
                self.profiler.scale_up()
            elif not burst and self.profiler.scaled_up:
                self.profiler.scale_down()

        if cfg.instability_rate > 0 and cfg.packing_policy != "off":
            for job in self.binder.unstable_pairs(self.engine, self._rng,
                                                  cfg.instability_rate):
                self.engine.stop_job(job)
                self.queue.append(job)

        if self.update_engine is not None:
            refitted = self.update_engine.maybe_refit(now)
            if refitted:
                metrics = getattr(self.engine, "metrics", None)
                if metrics is not None:
                    # Surface refit quality in SimulationResult.telemetry
                    # (traced runs only — metrics is None otherwise).
                    metrics.counter("model_refits").inc()
                    quality = self.update_engine.last_quality
                    if quality is not None and quality[0] is not None:
                        metrics.gauge("estimator_r2").set(
                            float(quality[0]), now)
                    if quality is not None and quality[1] is not None:
                        metrics.gauge("estimator_fit_samples").set(
                            float(quality[1]), now)
