"""Lucid core: the paper's primary contribution."""

from repro.core.binder import AffineJobpairBinder, PackingMode
from repro.core.estimator import WorkloadEstimateModel
from repro.core.hetero_lucid import HeteroLucidScheduler
from repro.core.slo_lucid import SLOLucidScheduler
from repro.core.lucid import LucidConfig, LucidScheduler
from repro.core.orchestrator import ResourceOrchestrator
from repro.core.packing_model import (
    CLASS_NAMES,
    FEATURE_NAMES,
    SS_JUMBO,
    SS_MEDIUM,
    SS_TINY,
    PackingAnalyzeModel,
    build_colocation_dataset,
    label_for_speed,
)
from repro.core.profiler import NonIntrusiveProfiler
from repro.core.throughput import ThroughputPredictModel
from repro.core.tuner import SystemTuner
from repro.core.update_engine import UpdateEngine

__all__ = [
    "AffineJobpairBinder",
    "PackingMode",
    "WorkloadEstimateModel",
    "HeteroLucidScheduler",
    "SLOLucidScheduler",
    "LucidConfig",
    "LucidScheduler",
    "ResourceOrchestrator",
    "PackingAnalyzeModel",
    "build_colocation_dataset",
    "label_for_speed",
    "CLASS_NAMES",
    "FEATURE_NAMES",
    "SS_TINY",
    "SS_MEDIUM",
    "SS_JUMBO",
    "NonIntrusiveProfiler",
    "ThroughputPredictModel",
    "SystemTuner",
    "UpdateEngine",
]
