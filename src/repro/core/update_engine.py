"""Update Engine (§3.6.2): periodic model maintenance.

Production clusters drift — new users, new model families, shifting
submission patterns.  The Update Engine collects completed-job records in
real time and periodically refits Lucid's learned models so predictions do
not go stale.  The paper measures a 4.8% queuing-delay reduction from
weekly updates on Venus (plus 1.6% more for daily); the refit itself costs
seconds to minutes (Figure 10b), so frequent updates are affordable.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.audit import DecisionAudit
from repro.obs.logutil import get_logger
from repro.workloads.job import JobRecord

logger = get_logger("core.update_engine")


class UpdateEngine:
    """Collects fresh records and refits the estimator on an interval.

    Parameters
    ----------
    estimator:
        The :class:`~repro.core.estimator.WorkloadEstimateModel` to keep
        fresh (its lightweight recurrence statistics update immediately on
        :meth:`collect`; the GA²M itself is refit on the interval).
    interval:
        Seconds of simulated time between refits; ``None`` disables
        refitting entirely (the "static model" baseline of §4.5).
    min_new_records:
        Skip a scheduled refit when fewer new records than this arrived.
    """

    def __init__(self, estimator, interval: Optional[float] = 2 * 86_400.0,
                 min_new_records: int = 50) -> None:
        self.estimator = estimator
        self.interval = interval
        self.min_new_records = min_new_records
        self._new_records = 0
        self._last_refit: Optional[float] = None
        self.refits = 0
        #: Optional :class:`repro.obs.audit.DecisionAudit`; refits are
        #: recorded there so stale-model questions ("was the estimator
        #: fresh when job 42 was placed?") are answerable post-hoc.
        self.audit: Optional[DecisionAudit] = None
        #: Optional :class:`repro.obs.prof.SimProfiler` (the engine's, set
        #: by the scheduler's ``attach``).  Refit wall time is measured
        #: through its spans — simulation code never reads the wall clock
        #: directly (RPR002) — and is ``None`` on unprofiled runs.
        self.profiler = None
        #: ``(r2, samples, wall_seconds)`` of the most recent refit, for
        #: metric gauges; ``None`` until the first refit.
        self.last_quality: Optional[tuple] = None

    def collect(self, record: JobRecord, now: float) -> None:
        """Absorb one completed job."""
        if self.estimator is None:
            return
        self.estimator.update(record)
        self._new_records += 1
        if self._last_refit is None:
            self._last_refit = now

    def maybe_refit(self, now: float) -> bool:
        """Refit if the interval elapsed and enough new data arrived."""
        if self.estimator is None or self.interval is None:
            return False
        if self._last_refit is None:
            self._last_refit = now
            return False
        if now - self._last_refit < self.interval:
            return False
        if self._new_records < self.min_new_records:
            return False
        wall_seconds: Optional[float] = None
        if self.profiler is not None:
            before = self.profiler.span_seconds.get("lucid.refit", 0.0)
            with self.profiler.span("lucid.refit"):
                self.estimator.refit()
            wall_seconds = (self.profiler.span_seconds.get("lucid.refit",
                                                           0.0) - before)
        else:
            self.estimator.refit()
        r2: Optional[float] = None
        samples: Optional[int] = None
        if self.audit is not None:
            fit_quality = getattr(self.estimator, "fit_quality", None)
            if fit_quality is not None:
                r2, samples = fit_quality()
        self.last_quality = (r2, samples, wall_seconds)
        logger.info("refit workload estimator at t=%.0fs on %d new records",
                    now, self._new_records)
        if self.audit is not None:
            self.audit.record_refit(now, "workload_estimate",
                                    self._new_records, r2=r2,
                                    samples=samples,
                                    wall_seconds=wall_seconds)
        self._last_refit = now
        self._new_records = 0
        self.refits += 1
        return True
