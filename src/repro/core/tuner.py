"""System Tuner (§3.6.1): interpretability-guided configuration tuning.

Because Lucid is data-driven and its models are transparent, operators can
tune system knobs from prior trace data instead of by intuition.  The
tuner recommends profiler settings from the historical duration
distribution, sizes the profiling cluster from historical demand, and
applies monotonic-shape constraints (via PAV) to learned models.  §4.6
reports that guided profiler tuning cut profiling-stage queuing 2.8-8.7x
versus heuristic settings, and the gpu_num monotonic constraint improved
the estimator's R² by 2.6%.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.estimator import WorkloadEstimateModel


class SystemTuner:
    """Guided-configuration recommendations from historical traces."""

    @staticmethod
    def recommend_t_prof(history_durations: Sequence[float],
                         target_finish_rate: float = 0.45,
                         bounds: Tuple[float, float] = (60.0, 600.0)) -> float:
        """Pick ``T_prof`` so roughly ``target_finish_rate`` of historical
        jobs would finish inside the profiling window.

        Higher values complete more jobs during profiling but inflate
        profiling-stage queuing (Table 6's trade-off).
        """
        durations = np.asarray(list(history_durations), dtype=float)
        if durations.size == 0:
            raise ValueError("history_durations must be non-empty")
        if not 0.0 < target_finish_rate < 1.0:
            raise ValueError("target_finish_rate must be in (0, 1)")
        t_prof = float(np.quantile(durations, target_finish_rate))
        return float(np.clip(t_prof, *bounds))

    @staticmethod
    def recommend_profiler_nodes(history_jobs, t_prof: float,
                                 span_seconds: float, n_prof: int = 8,
                                 gpus_per_node: int = 8,
                                 headroom: float = 3.0) -> int:
        """Size the profiling cluster from average historical demand.

        Average concurrent profiling demand is the sum over profilable
        jobs of ``min(duration, T_prof) * gpu_num`` spread over the trace
        span; the headroom factor covers diurnal peaks.
        """
        if span_seconds <= 0:
            raise ValueError("span_seconds must be positive")
        demand = sum(min(j.duration, t_prof) * j.gpu_num
                     for j in history_jobs if j.gpu_num <= n_prof)
        avg_gpus = demand / span_seconds
        return max(1, math.ceil(avg_gpus * headroom / gpus_per_node))

    @staticmethod
    def apply_monotonic_constraints(estimator: WorkloadEstimateModel) -> None:
        """Pose the gpu_num-monotone constraint on the duration model."""
        estimator.constrain_gpu_monotonic()

    @staticmethod
    def binder_threshold_grid(
            medium_values: Sequence[float] = (0.75, 0.80, 0.85),
            tiny_values: Sequence[float] = (0.90, 0.95, 0.97),
    ) -> List[Tuple[float, float]]:
        """The (medium, tiny) threshold grid of the §4.5 sensitivity scan."""
        return [(m, t) for m in medium_values for t in tiny_values if m < t]
