"""Packing Analyze Model (§3.5.1, Figure 6).

Classifies a job into Tiny / Medium / Jumbo sharing-score categories from
its non-intrusive profile (GPU utilization, GPU memory utilization, GPU
memory usage) plus the optional user-declared AMP flag.  The model is a
CART decision tree compacted with minimal cost-complexity pruning.

Training data is the offline jobpair characterization of §2.3: every
Table-1 configuration pair is colocated on the testbed (here, the
interference model), each configuration's *average* normalized colocated
speed is computed, and thresholds convert it into the ternary label —
Tiny if >= ``tiny_threshold`` (default 0.95), Jumbo if < ``medium_threshold``
(default 0.85), Medium in between.  The model is cluster-agnostic and
trains in well under a second (§4.4).
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.models.attrib import Attribution, attribute_tree
from repro.models.metrics import accuracy
from repro.models.tree import DecisionTreeClassifier
from repro.workloads.colocation import InterferenceModel, average_colocation_speed
from repro.workloads.model_zoo import (
    ResourceProfile,
    WorkloadConfig,
    all_configurations,
    get_profile,
)

#: Sharing scores (§3.2): the Indolent Packing GSS budget consumes these.
SS_TINY = 0
SS_MEDIUM = 1
SS_JUMBO = 2

CLASS_NAMES = ("Tiny", "Medium", "Jumbo")
FEATURE_NAMES = ("gpu_util", "gpu_mem_util", "gpu_mem_mb", "amp")

DEFAULT_TINY_THRESHOLD = 0.95
DEFAULT_MEDIUM_THRESHOLD = 0.85


def label_for_speed(avg_speed: float, tiny_threshold: float,
                    medium_threshold: float) -> int:
    """Ternary sharing-score label from a mean colocated speed."""
    if avg_speed >= tiny_threshold:
        return SS_TINY
    if avg_speed >= medium_threshold:
        return SS_MEDIUM
    return SS_JUMBO


def build_colocation_dataset(
        interference: InterferenceModel,
        configs: Optional[Sequence[WorkloadConfig]] = None,
        tiny_threshold: float = DEFAULT_TINY_THRESHOLD,
        medium_threshold: float = DEFAULT_MEDIUM_THRESHOLD,
        n_replicas: int = 4,
        seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, List[WorkloadConfig]]:
    """Feature matrix, labels and configs of the packing training set.

    Each configuration contributes ``n_replicas`` rows whose features carry
    NVIDIA-SMI measurement noise — on the real testbed every profiling run
    reads slightly different counters, and that jitter is what keeps the
    learned tree anchored to the robust driver (GPU utilization) instead of
    a collinear proxy.
    """
    config_list = (list(configs) if configs is not None
                   else all_configurations())
    rng = np.random.default_rng(seed)
    rows: List[Tuple[float, float, float, float]] = []
    labels: List[int] = []
    for config in config_list:
        profile = get_profile(config)
        label = label_for_speed(
            average_colocation_speed(interference, config, config_list),
            tiny_threshold, medium_threshold)
        rows.append(profile.as_features())
        labels.append(label)
        for _ in range(max(0, n_replicas - 1)):
            rows.append(profile.with_noise(rng).as_features())
            labels.append(label)
    return np.array(rows), np.array(labels), config_list


class PackingAnalyzeModel:
    """Pruned decision tree over non-intrusive job features.

    Parameters
    ----------
    tiny_threshold, medium_threshold:
        Sharing-score label thresholds — the operator-adjustable "binder
        thresholds" of the §4.5 sensitivity analysis.
    max_depth, ccp_alpha:
        Tree capacity and pruning strength.
    """

    def __init__(self, tiny_threshold: float = DEFAULT_TINY_THRESHOLD,
                 medium_threshold: float = DEFAULT_MEDIUM_THRESHOLD,
                 max_depth: int = 6, ccp_alpha: float = 0.003) -> None:
        if not 0 < medium_threshold < tiny_threshold <= 1.0:
            raise ValueError("need 0 < medium_threshold < tiny_threshold <= 1")
        self.tiny_threshold = tiny_threshold
        self.medium_threshold = medium_threshold
        self.max_depth = max_depth
        self.ccp_alpha = ccp_alpha
        self.tree_: Optional[DecisionTreeClassifier] = None
        self.train_accuracy_: float = 0.0

    def fit(self, interference: InterferenceModel,
            configs: Optional[Sequence[WorkloadConfig]] = None
            ) -> "PackingAnalyzeModel":
        X, y, _ = build_colocation_dataset(
            interference, configs, self.tiny_threshold, self.medium_threshold)
        tree = DecisionTreeClassifier(max_depth=self.max_depth,
                                      min_samples_leaf=2)
        tree.fit(X, y)
        tree.prune(self.ccp_alpha)
        self.tree_ = tree
        self.train_accuracy_ = accuracy(y, tree.predict(X))
        return self

    def _check_fitted(self) -> None:
        if self.tree_ is None:
            raise RuntimeError("PackingAnalyzeModel is not fitted")

    def sharing_score(self, profile: ResourceProfile) -> int:
        """Predict the sharing score of one profiled job."""
        self._check_fitted()
        features = np.array([profile.as_features()])
        return int(self.tree_.predict(features)[0])

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        return self.tree_.predict(X)

    # ------------------------------------------------------------------
    # Interpretation (Figure 6)
    # ------------------------------------------------------------------
    def explain_text(self) -> str:
        """The learned tree as nested if/else rules."""
        self._check_fitted()
        return self.tree_.to_text(feature_names=FEATURE_NAMES,
                                  class_names=CLASS_NAMES)

    def feature_importances(self) -> List[Tuple[str, float]]:
        """Gini importances per feature, descending."""
        self._check_fitted()
        imps = self.tree_.feature_importances()
        pairs = list(zip(FEATURE_NAMES, imps.tolist()))
        return sorted(pairs, key=lambda p: -p[1])

    def attribute_vector(self, values: Sequence[float]) -> Attribution:
        """Decision-path attribution of a raw feature vector.

        The attributed quantity is the *expected* sharing score
        ``sum_c c * P(class_c)`` (0 = Tiny, 1 = Medium, 2 = Jumbo), which
        is exactly additive along the tree path — the categorical
        :meth:`sharing_score` is its argmax-rounded sibling.
        """
        self._check_fitted()
        attribution = attribute_tree(self.tree_, values,
                                     feature_names=FEATURE_NAMES)
        return _dc_replace(
            attribution,
            note="expected sharing score (0=Tiny, 1=Medium, 2=Jumbo)")

    def attribute(self, profile: ResourceProfile) -> Attribution:
        """Decision-path attribution of one profiled job's score."""
        return self.attribute_vector(profile.as_features())

    def decision_path(self, profile: ResourceProfile) -> List[str]:
        """Readable predicate trail for one prediction."""
        self._check_fitted()
        path = self.tree_.decision_path(np.array(profile.as_features()))
        rendered = []
        for feature, threshold, went_left in path:
            op = "<=" if went_left else ">"
            rendered.append(f"{FEATURE_NAMES[feature]} {op} {threshold:.2f}")
        return rendered
