"""Workload Estimate Model (§3.5.3, Figure 7c) — job-duration prediction.

A GA²M over submission metadata, calendar attributes and the profiled
resource features, combined with explicit recurrence matching: because
~90% of submissions re-run existing templates, the strongest signal is the
realized duration of the *same* (user, job name) in history.  The paper's
fallback ladder is implemented verbatim: new jobs without history are
estimated from the user's past behaviour, and jobs from brand-new users
from the average duration of jobs with the same GPU demand (§3.4).

Job names are featurized with Levenshtein distance + affinity propagation
(:mod:`repro.models.text`).
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.models.attrib import Attribution, attribute_gam
from repro.models.encoding import LabelEncoder, time_features
from repro.models.gam import GA2MRegressor, GlobalExplanation, LocalExplanation
from repro.models.metrics import r2_score
from repro.models.text import cluster_job_names
from repro.workloads.job import Job, JobRecord
from repro.workloads.model_zoo import ResourceProfile

FEATURE_NAMES = (
    "user", "name_cluster", "gpu_num", "hour", "dayofweek",
    "gpu_util", "gpu_mem_util", "gpu_mem_mb", "amp",
)

#: Blend weight of the template history mean vs the GA²M prediction.
TEMPLATE_WEIGHT = 0.75

_RUN_SUFFIX = re.compile(r"[-_]?t?\d+$")


def _name_stem(name: str) -> str:
    """Strip trailing run counters so template re-runs share a stem."""
    return _RUN_SUFFIX.sub("", name)


@dataclass
class _HistoryRow:
    user: str
    name: str
    gpu_num: int
    submit_time: float
    duration: float
    profile: Optional[ResourceProfile]
    amp: bool


def _row_from(job: Union[Job, JobRecord]) -> _HistoryRow:
    profile = getattr(job, "measured_profile", None) or job.profile
    return _HistoryRow(
        user=job.user, name=job.name, gpu_num=job.gpu_num,
        submit_time=job.submit_time, duration=job.duration,
        profile=profile, amp=getattr(job, "amp", bool(profile and profile.amp)),
    )


class WorkloadEstimateModel:
    """GA²M duration estimator with recurrence matching.

    Parameters
    ----------
    use_profile:
        Include profiled resource features (disabled for the ablation
        showing profiled features improve estimation, §4.8).
    n_rounds, n_interactions:
        GA²M capacity.
    """

    def __init__(self, use_profile: bool = True, n_rounds: int = 120,
                 n_interactions: int = 2, random_state: int = 0) -> None:
        self.use_profile = use_profile
        self.n_rounds = n_rounds
        self.n_interactions = n_interactions
        self.random_state = random_state
        self._user_encoder = LabelEncoder()
        self._name_clusters: Dict[str, int] = {}
        self._model: Optional[GA2MRegressor] = None
        self._rows: List[_HistoryRow] = []
        self._template_durations: Dict[Tuple[str, str], List[float]] = {}
        self._user_durations: Dict[str, List[float]] = {}
        self._gpu_durations: Dict[int, List[float]] = {}
        self._global_mean = 3600.0
        self._default_profile: Tuple[float, float, float] = (50.0, 30.0, 4000.0)

    # ------------------------------------------------------------------
    # Feature construction
    # ------------------------------------------------------------------
    def _feature_names(self) -> List[str]:
        names = list(FEATURE_NAMES)
        if not self.use_profile:
            names = names[:5]
        return names

    def _name_code(self, name: str) -> float:
        stem = _name_stem(name)
        code = self._name_clusters.get(stem)
        if code is None:
            return float(len(set(self._name_clusters.values())))  # unknown
        return float(code)

    def _profile_features(self, profile: Optional[ResourceProfile],
                          amp: bool) -> List[float]:
        if profile is None:
            util, mem_util, mem = self._default_profile
        else:
            util, mem_util, mem = (profile.gpu_util, profile.gpu_mem_util,
                                   profile.gpu_mem_mb)
        return [util, mem_util, mem, float(amp)]

    def _featurize(self, rows: Sequence[_HistoryRow]) -> np.ndarray:
        cal = time_features([r.submit_time for r in rows])
        columns = [
            self._user_encoder.transform([r.user for r in rows]),
            np.array([self._name_code(r.name) for r in rows]),
            np.array([float(r.gpu_num) for r in rows]),
            cal["hour"],
            cal["dayofweek"],
        ]
        if self.use_profile:
            prof = np.array([self._profile_features(r.profile, r.amp)
                             for r in rows])
            columns.extend(prof.T)
        return np.column_stack(columns)

    # ------------------------------------------------------------------
    # Fitting and updating
    # ------------------------------------------------------------------
    def fit(self, history: Sequence[Union[Job, JobRecord]],
            refresh_names: bool = True) -> "WorkloadEstimateModel":
        if not history:
            raise ValueError("history must be non-empty")
        self._rows = [_row_from(j) for j in history]
        self._rebuild_stats()
        self._user_encoder = LabelEncoder().fit([r.user for r in self._rows])
        if refresh_names or not self._name_clusters:
            # Affinity-propagation clustering is the expensive step; on
            # periodic refits the template structure is stable, so the
            # Update Engine reuses the existing buckets (new stems map to
            # the dedicated unknown code until the next full fit).
            stems = [_name_stem(r.name) for r in self._rows]
            self._name_clusters = cluster_job_names(stems)
        X = self._featurize(self._rows)
        y = np.log(np.array([r.duration for r in self._rows]))
        self._model = GA2MRegressor(
            n_rounds=self.n_rounds, n_interactions=self.n_interactions,
            feature_names=self._feature_names(),
            random_state=self.random_state)
        self._model.fit(X, y)
        return self

    def _rebuild_stats(self) -> None:
        self._template_durations = defaultdict(list)
        self._user_durations = defaultdict(list)
        self._gpu_durations = defaultdict(list)
        for row in self._rows:
            self._template_durations[(row.user, row.name)].append(row.duration)
            self._user_durations[row.user].append(row.duration)
            self._gpu_durations[row.gpu_num].append(row.duration)
        self._global_mean = float(np.mean([r.duration for r in self._rows]))
        if any(r.profile for r in self._rows):
            profiles = [r.profile for r in self._rows if r.profile]
            self._default_profile = (
                float(np.median([p.gpu_util for p in profiles])),
                float(np.median([p.gpu_mem_util for p in profiles])),
                float(np.median([p.gpu_mem_mb for p in profiles])),
            )

    def update(self, record: Union[Job, JobRecord]) -> None:
        """Record one completed job (stats update immediately; the GA²M is
        refreshed on the next :meth:`refit`, driven by the Update Engine)."""
        row = _row_from(record)
        self._rows.append(row)
        self._template_durations[(row.user, row.name)].append(row.duration)
        self._user_durations[row.user].append(row.duration)
        self._gpu_durations[row.gpu_num].append(row.duration)

    def refit(self) -> None:
        """Retrain on the accumulated history (Update Engine, §3.6.2)."""
        if not self._rows:
            raise RuntimeError("no history to refit on")
        self.fit(list(self._rows_as_records()), refresh_names=False)

    def _rows_as_records(self):
        for row in self._rows:
            yield JobRecord(
                job_id=-1, name=row.name, user=row.user, vc="",
                submit_time=row.submit_time, duration=row.duration,
                gpu_num=row.gpu_num, jct=row.duration, queue_delay=0.0,
                preemptions=0, finished_in_profiler=False,
                profile=row.profile)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self._model is None:
            raise RuntimeError("WorkloadEstimateModel is not fitted")

    def _model_prediction(self, row: _HistoryRow) -> float:
        X = self._featurize([row])
        log_pred = float(self._model.predict(X)[0])
        return float(np.clip(np.exp(log_pred), 10.0, 30 * 86400.0))

    def predict(self, job: Union[Job, JobRecord, "object"]) -> float:
        """Estimated duration in seconds for a (possibly new) job."""
        self._check_fitted()
        row = _HistoryRow(
            user=job.user, name=job.name, gpu_num=job.gpu_num,
            submit_time=job.submit_time, duration=0.0,
            profile=getattr(job, "measured_profile", None),
            amp=getattr(job, "amp", False),
        )
        template = self._template_durations.get((row.user, row.name))
        if template:
            # Median of recent re-runs is robust to the failed/cancelled
            # submissions that pollute recurring templates (§2.2); the
            # template weight grows with the evidence.
            recent = template[-8:]
            template_est = float(np.median(recent))
            weight = min(0.9, len(recent) / (len(recent) + 1.0))
            return (weight * template_est
                    + (1 - weight) * self._model_prediction(row))
        if row.user in self._user_durations:
            return self._model_prediction(row)
        # Brand-new user: average duration of jobs with the same GPU demand.
        same_gpu = self._gpu_durations.get(row.gpu_num)
        if same_gpu:
            return float(np.mean(same_gpu))
        return self._global_mean

    def safe_predict(self, job, default: float = 3600.0) -> float:
        """:meth:`predict` that degrades to ``default`` instead of raising.

        Graceful-degradation path (see :mod:`repro.faults`): an unfitted
        model or a pathological feature row must not crash the scheduling
        loop mid-simulation — a conservative constant estimate merely
        worsens ordering quality.
        """
        try:
            value = self.predict(job)
        except Exception:  # repro: noqa RPR007 — deliberate catch-all:
            # any model failure must degrade to the default estimate, not
            # crash the scheduling loop mid-simulation.
            return default
        if not np.isfinite(value) or value <= 0:
            return default
        return float(value)

    def predict_batch(self, jobs: Sequence) -> np.ndarray:
        return np.array([self.predict(j) for j in jobs])

    def featurize_jobs(self, jobs: Sequence) -> np.ndarray:
        """Feature matrix for external models (the Table-7 comparison
        trains black-box baselines on the identical representation)."""
        self._check_fitted()
        return self._featurize([_row_from(j) for j in jobs])

    def training_matrix(self) -> Tuple[np.ndarray, np.ndarray]:
        """(X, log-duration y) of the fitted history, for baselines."""
        self._check_fitted()
        X = self._featurize(self._rows)
        y = np.log(np.array([r.duration for r in self._rows]))
        return X, y

    def fit_quality(self) -> Tuple[float, int]:
        """Training fit of the GA²M: ``(R², n_samples)``.

        R² is computed in the model's native log-duration space over the
        fitted history — the Update Engine surfaces it on refit audit
        records so stale or degrading models are visible in telemetry.
        """
        self._check_fitted()
        X, y = self.training_matrix()
        return float(r2_score(y, self._model.predict(X))), int(len(y))

    # ------------------------------------------------------------------
    # Interpretation
    # ------------------------------------------------------------------
    def attribute_vector(self, values: Sequence[float]) -> Attribution:
        """GA²M attribution of a raw feature vector (counterfactuals).

        The vector must align with :meth:`_feature_names`.  Contributions
        are exact in the model's native log-duration space; the served
        estimate additionally blends template history and clips, so
        ``estimated_duration != exp(predicted)`` in general.
        """
        self._check_fitted()
        attribution = attribute_gam(self._model, values,
                                    feature_names=self._feature_names())
        return _dc_replace(attribution,
                           note="log-duration space; raw feature probe")

    def attribute(self, job) -> Attribution:
        """Attribution of one job's duration prediction (Figure 7c).

        Always the GA²M's exact per-term decomposition in log-duration
        space; ``note`` records which rung of the fallback ladder actually
        served the estimate (template blend / model / same-GPU mean /
        global mean), since the served value folds in template history
        and clipping on top of the model output.
        """
        self._check_fitted()
        row = _HistoryRow(
            user=job.user, name=job.name, gpu_num=job.gpu_num,
            submit_time=job.submit_time, duration=0.0,
            profile=getattr(job, "measured_profile", None),
            amp=getattr(job, "amp", False),
        )
        X = self._featurize([row])
        attribution = attribute_gam(self._model, X[0],
                                    feature_names=self._feature_names())
        template = self._template_durations.get((row.user, row.name))
        if template:
            recent = template[-8:]
            weight = min(0.9, len(recent) / (len(recent) + 1.0))
            served = (f"served by template blend "
                      f"({weight:.2f} history + {1 - weight:.2f} model)")
        elif row.user in self._user_durations:
            served = "served by GA2M model"
        elif self._gpu_durations.get(row.gpu_num):
            served = "served by same-GPU-demand mean"
        else:
            served = "served by global mean"
        return _dc_replace(attribution,
                           note=f"log-duration space; {served}")

    def safe_attribute(self, job) -> Optional[Attribution]:
        """:meth:`attribute` that degrades to ``None`` instead of raising.

        The audit's attribution hook must never crash the scheduling loop
        (mirror of :meth:`safe_predict`): a missing attribution merely
        leaves one decision unexplained.
        """
        try:
            return self.attribute(job)
        except Exception:  # repro: noqa RPR007 — deliberate catch-all:
            # attribution is observability, not control; any failure must
            # degrade to "unexplained", never crash the simulation.
            return None

    def explain_global(self) -> GlobalExplanation:
        self._check_fitted()
        return self._model.explain_global()

    def explain_local(self, job) -> LocalExplanation:
        """Per-feature score breakdown of one prediction (Figure 7c)."""
        self._check_fitted()
        row = _row_from(job) if hasattr(job, "duration") else job
        X = self._featurize([row])
        return self._model.explain_local(X[0])

    def constrain_gpu_monotonic(self) -> None:
        """System-Tuner constraint: duration non-decreasing in gpu_num."""
        self._check_fitted()
        self._model.constrain_monotonic(self._feature_names().index("gpu_num"),
                                        increasing=True)
