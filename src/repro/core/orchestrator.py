"""Resource Orchestrator (§3.4, Algorithm 2).

Assigns each queued job a priority value — estimated duration times GPU
demand — sorts the queue ascending, and walks it: if sharing is currently
allowed the Binder proposes an affine running mate (shared placement on
the mate's exact GPU set); otherwise, and as fallback, the job is placed
exclusively with consolidated best-fit inside its VC.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.placement import find_consolidated, find_relaxed
from repro.obs.audit import DecisionAudit, PlacementDecision
from repro.workloads.job import Job


class ResourceOrchestrator:
    """Priority-ordered allocator over exclusive and shared placements."""

    #: A queued job that has waited longer than this reserves its VC.
    DEFAULT_STARVATION_THRESHOLD = 8 * 3600.0

    def __init__(self, starvation_threshold: float =
                 DEFAULT_STARVATION_THRESHOLD,
                 place_exclusive: Optional[Callable] = None) -> None:
        if starvation_threshold <= 0:
            raise ValueError("starvation_threshold must be positive")
        self.starvation_threshold = starvation_threshold
        #: Optional override of the exclusive-placement policy with
        #: signature ``(engine, job) -> Optional[List[GPU]]``; used by the
        #: heterogeneous-GPU extension to rank generations.
        self.place_exclusive = place_exclusive

    def schedule(self, engine, queue: List[Job],
                 priority_fn: Callable[[Job], float],
                 find_mate: Callable[[Job], Optional[Job]],
                 sharing_mode: str = "eager",
                 now: float = 0.0,
                 audit: Optional[DecisionAudit] = None) -> List[Job]:
        """Place as many queued jobs as possible; returns the placed jobs.

        The caller removes placed jobs from its queue.  Jobs that fit
        neither shared nor exclusive are skipped (no head-of-line
        blocking), which is the greedy loop of Algorithm 2 — with one
        starvation guard: a *multi-node* job that has waited past
        ``starvation_threshold`` relaxes its consolidation requirement and
        accepts fragmented free GPUs across extra nodes (paying the
        engine's cross-node communication penalty).  Without the relief,
        multi-node jobs can wait indefinitely for wholly free nodes while
        small-job backfill keeps every node partially busy (the
        tail-fairness property of §4.3 / Table 5).

        ``sharing_mode`` is the Dynamic Strategy's aggressiveness:

        * ``"eager"`` — Algorithm 2 order: affine jobpair first, exclusive
          placement as fallback (Default mode, contended cluster).
        * ``"fallback"`` — exclusive placement first, packing only when the
          VC has no free consolidated slot (Apathetic mode).
        * ``"off"`` — exclusive only (sharing disabled).

        When ``audit`` is given, every placement leaves a
        :class:`~repro.obs.audit.PlacementDecision` carrying its inputs
        (priority, duration estimate, sharing mode, starvation trigger,
        binder verdict) so the allocation is explainable post-hoc.
        """
        if sharing_mode not in ("eager", "fallback", "off"):
            raise ValueError(f"bad sharing_mode {sharing_mode!r}")
        node_gpus = engine.cluster.gpus_per_node

        def starving(job: Job) -> bool:
            return (job.gpu_num > node_gpus
                    and now - job.submit_time > self.starvation_threshold)

        for job in queue:
            job.priority = priority_fn(job)
        # Starving multi-node jobs jump to the front of the pass so they
        # get first pick of free GPUs (otherwise small jobs drain the free
        # pool before the walk ever reaches them).
        ordered = sorted(queue,
                         key=lambda j: (not starving(j), j.priority,
                                        j.submit_time, j.job_id))
        def record(job: Job, mode: str, mate: Optional[Job],
                   relieved: bool) -> None:
            if audit is None:
                return
            gpus = engine.gpus_of(job)
            audit.record(PlacementDecision(
                time=now, job_id=job.job_id, mode=mode,
                gpu_ids=tuple(g.gpu_id for g in gpus),
                node_ids=tuple(g.node_id for g in gpus),
                priority=job.priority,
                estimated_duration=job.estimated_duration,
                sharing_mode=sharing_mode,
                mate_id=mate.job_id if mate is not None else None,
                starving=relieved,
                binder=audit.take_binder(job.job_id),
                attribution=audit.attribution_for(job)))

        placed: List[Job] = []
        for job in ordered:
            if sharing_mode == "eager":
                mate = find_mate(job)
                if mate is not None:
                    engine.start_job(job, engine.gpus_of(mate))
                    placed.append(job)
                    record(job, "shared", mate, starving(job))
                    continue
            if self.place_exclusive is not None:
                gpus = self.place_exclusive(engine, job)
            else:
                gpus = find_consolidated(
                    engine.cluster, job.gpu_num, vc=job.vc,
                    min_memory_mb=job.profile.gpu_mem_mb)
            relaxed = False
            if gpus is None and starving(job):
                # Starvation relief: relaxed (fragmented) placement.
                gpus = find_relaxed(engine.cluster, job.gpu_num, vc=job.vc,
                                    min_memory_mb=job.profile.gpu_mem_mb)
                relaxed = gpus is not None
            if gpus is not None:
                engine.start_job(job, gpus)
                placed.append(job)
                record(job, "relaxed" if relaxed else "exclusive", None,
                       relaxed)
                continue
            if sharing_mode == "fallback":
                mate = find_mate(job)
                if mate is not None:
                    engine.start_job(job, engine.gpus_of(mate))
                    placed.append(job)
                    record(job, "shared-fallback", mate, starving(job))
        return placed
