"""Scheduler factory: instantiate any scheduler of the evaluation by name.

Lives in ``core`` (the top of the library layering DAG — ``core`` may
depend on ``schedulers``) so that subsystems like ``serve`` can build
schedulers without umbrella-importing the top-level ``repro`` package.
``repro.make_scheduler`` re-exports this function unchanged.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["make_scheduler"]


def make_scheduler(name: str, history: Sequence[Any], **kwargs: Any) -> Any:
    """Instantiate a scheduler by name.

    Parameters
    ----------
    name:
        One of ``fifo``, ``sjf``, ``qssf``, ``tiresias``, ``horus``,
        ``lucid``.
    history:
        Historical jobs (required by the learned schedulers; ignored by
        the others).
    kwargs:
        Forwarded to the scheduler constructor (e.g. ``config=`` for
        Lucid).
    """
    # Lazy: pulling in every scheduler (and Lucid's model stack) is too
    # heavy for module import time.
    from repro.core.lucid import LucidScheduler
    from repro.schedulers import (
        FIFOScheduler,
        HorusScheduler,
        QSSFScheduler,
        SJFScheduler,
        TiresiasScheduler,
    )

    factories = {
        "fifo": lambda: FIFOScheduler(**kwargs),
        "sjf": lambda: SJFScheduler(**kwargs),
        "qssf": lambda: QSSFScheduler(history, **kwargs),
        "tiresias": lambda: TiresiasScheduler(**kwargs),
        "horus": lambda: HorusScheduler(history, **kwargs),
        "lucid": lambda: LucidScheduler(history, **kwargs),
    }
    try:
        return factories[name.lower()]()
    except KeyError:
        raise KeyError(f"unknown scheduler {name!r}; "
                       f"known: {sorted(factories)}") from None
