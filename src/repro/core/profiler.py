"""Non-intrusive Job Profiler (§3.2, Algorithm 1).

Every job within the scale limit ``N_prof`` first runs on a small,
dedicated profiling cluster for at most ``T_prof`` seconds while hardware
metrics (GPU utilization, memory utilization, memory footprint) are
sampled NVIDIA-SMI style.  Two optimizations make this cheap:

* **Space-aware Profiling** — the profiling queue is served least-GPU
  first with consolidated placement, dissolving head-of-line blocking in
  the small profiler (Figure 11b shows up to 11.6x queuing reduction over
  naive FIFO profiling).
* **Time-aware Scaling** — the profiler borrows nodes from idle VCs and
  shrinks ``T_prof`` when a submission burst is forecast, returning them
  when the burst drains.

Jobs that finish within ``T_prof`` never touch the main cluster at all —
this is the debugging-feedback fast path that filters 23-55% of jobs.
Evicted jobs restart from scratch on the main cluster (no checkpointing —
Lucid is non-intrusive), losing at most ``T_prof`` seconds of work.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.node import GPUS_PER_NODE
from repro.cluster.placement import best_fit_single_node
from repro.workloads.job import Job
from repro.workloads.model_zoo import ResourceProfile

DEFAULT_T_PROF = 200.0
DEFAULT_N_PROF = 8
#: NVIDIA-SMI sampling noise of the measured profile.
MEASUREMENT_NOISE = 0.05


class NonIntrusiveProfiler:
    """Profiling-cluster manager.

    Parameters
    ----------
    base_nodes:
        Dedicated 8-GPU profiler nodes.
    max_borrowed_nodes:
        Additional nodes Time-aware Scaling may loan from idle VCs.
    t_prof:
        Profiling runtime limit in seconds.
    n_prof:
        Job-scale limit; larger jobs skip profiling and are measured on
        the fly.
    space_aware:
        Least-GPU-first queue order (Algorithm 1); ``False`` reproduces
        the naive FIFO profiling of prior work for the Figure-11b ablation.
    """

    def __init__(self, base_nodes: int = 2, max_borrowed_nodes: int = 2,
                 t_prof: float = DEFAULT_T_PROF, n_prof: int = DEFAULT_N_PROF,
                 space_aware: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        if base_nodes < 1:
            raise ValueError("profiler needs at least one node")
        if n_prof > GPUS_PER_NODE:
            raise ValueError("n_prof cannot exceed one node's GPUs")
        self.base_t_prof = t_prof
        self.t_prof = t_prof
        self.n_prof = n_prof
        self.space_aware = space_aware
        self.base_nodes = base_nodes
        self.max_nodes = base_nodes + max_borrowed_nodes
        self.active_nodes = base_nodes
        self.cluster = Cluster.homogeneous(self.max_nodes, vc_name="profiler")
        self.queue: List[Job] = []
        self._rng = rng or np.random.default_rng(0)
        self.scaled_up = False

    # ------------------------------------------------------------------
    # Queue management (Algorithm 1)
    # ------------------------------------------------------------------
    def wants(self, job: Job) -> bool:
        """Whether this job goes through the profiling stage."""
        return job.gpu_num <= self.n_prof

    def enqueue(self, job: Job) -> None:
        self.queue.append(job)

    def _ordered_queue(self) -> List[Job]:
        if self.space_aware:
            # Least GPU first; FIFO within equal demand.
            return sorted(self.queue,
                          key=lambda j: (j.gpu_num, j.submit_time, j.job_id))
        return sorted(self.queue, key=lambda j: (j.submit_time, j.job_id))

    def allocate(self, engine) -> List[Job]:
        """Start as many queued profiling runs as fit; returns started jobs.

        Consolidated allocation on the active profiler nodes; with
        space-aware ordering the loop continues past unplaceable jobs
        only when a smaller job could still fit (it cannot — the queue is
        GPU-ascending, so the first failure ends the pass, exactly the
        ``break`` in Algorithm 1).
        """
        started: List[Job] = []
        nodes = [n for n in self.cluster.nodes[: self.active_nodes]
                 if n.healthy]
        if not nodes:
            return started  # profiler cluster is down (fault injection)
        for job in self._ordered_queue():
            gpus = best_fit_single_node(nodes, job.gpu_num)
            if gpus is None:
                # Space-aware: the queue is GPU-ascending, so nothing later
                # fits either.  Naive: strict FIFO head-of-line blocking,
                # as in prior profiling-based schedulers.
                break
            engine.start_job(job, gpus, time_limit=self.t_prof,
                             profiling=True)
            self.queue.remove(job)
            started.append(job)
        return started

    # ------------------------------------------------------------------
    # Fault awareness (repro.faults)
    # ------------------------------------------------------------------
    @property
    def is_down(self) -> bool:
        """Whether every active profiler node has failed.

        Lucid degrades gracefully: while the profiling cluster is down,
        submissions skip profiling and run unprofiled (conservative
        no-packing defaults) instead of queueing behind dead nodes.
        """
        return not any(n.healthy for n in
                       self.cluster.nodes[: self.active_nodes])

    def drain(self) -> List[Job]:
        """Hand back every queued (not yet started) profiling candidate."""
        drained = list(self.queue)
        self.queue.clear()
        return drained

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measure(self, job: Job) -> ResourceProfile:
        """NVIDIA-SMI style noisy measurement of the true profile."""
        return job.profile.with_noise(self._rng, rel_std=MEASUREMENT_NOISE)

    # ------------------------------------------------------------------
    # Time-aware Scaling (§3.2)
    # ------------------------------------------------------------------
    @property
    def capacity_gpus(self) -> int:
        return self.active_nodes * self.cluster.gpus_per_node

    def scale_up(self) -> None:
        """Borrow idle nodes and shorten the profiling limit for a burst."""
        self.active_nodes = self.max_nodes
        self.t_prof = max(60.0, self.base_t_prof / 2.0)
        self.scaled_up = True

    def scale_down(self) -> None:
        """Return borrowed nodes once the burst queue drains.

        A borrowed node that still hosts a profiling run cannot be shed
        yet, so the active window shrinks only down to the highest busy
        node index (the next scale-down attempt finishes the job).
        """
        highest_busy = 0
        for index, node in enumerate(self.cluster.nodes):
            if not node.is_empty:
                highest_busy = index + 1
        self.active_nodes = max(self.base_nodes, highest_busy)
        self.t_prof = self.base_t_prof
        self.scaled_up = False

    def pending_demand_gpus(self) -> int:
        return sum(j.gpu_num for j in self.queue)
