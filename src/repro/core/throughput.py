"""Throughput Predict Model (§3.5.2, Figures 7a/7b and 13a).

A GA²M time-series forecaster of cluster-wide job-submission throughput
(and optionally GPU-demand throughput).  Feature engineering follows the
paper: calendar encodings to capture diurnal/weekly seasonality plus
rolling means/medians, lags and weighted soft summations of the recent
series.  The forecast drives two scheduler mechanisms:

* the Binder's **Dynamic Strategy** — relax or disable packing when the
  cluster is, and will remain, lightly loaded (§3.3);
* the Profiler's **Time-aware Scaling** — borrow nodes and shrink the
  profiling time limit ahead of submission bursts (§3.2).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.models.encoding import (
    SECONDS_PER_HOUR,
    hourly_series,
    throughput_feature_table,
)
from repro.models.gam import GA2MRegressor, GlobalExplanation


class ThroughputPredictModel:
    """One-step-ahead hourly throughput forecaster.

    Parameters
    ----------
    n_rounds, n_interactions:
        GA²M capacity.
    """

    def __init__(self, n_rounds: int = 100, n_interactions: int = 2,
                 max_bins: int = 12, smoothing: float = 6.0,
                 random_state: int = 0) -> None:
        # Coarse bins + strong per-bin smoothing: hourly count series are
        # short and bursty, and fine-grained shape functions memorize
        # training spikes instead of the diurnal structure.
        self.n_rounds = n_rounds
        self.n_interactions = n_interactions
        self.max_bins = max_bins
        self.smoothing = smoothing
        self.random_state = random_state
        self._model: Optional[GA2MRegressor] = None
        self._feature_names: Sequence[str] = ()
        self._train_median: float = 0.0
        self._start_time: float = 0.0

    # ------------------------------------------------------------------
    def fit_events(self, event_times: Sequence[float],
                   weights: Optional[Sequence[float]] = None
                   ) -> "ThroughputPredictModel":
        """Fit from raw submission timestamps (weights = GPU demand).

        Histories shorter than two days are left-padded with zero hours so
        the calendar features still span full diurnal cycles — a bench
        trace carved out of a few hours of activity must not crash the
        scheduler's training step.
        """
        series, start = hourly_series(event_times, weights=weights)
        min_hours = 48
        if series.size < min_hours:
            pad = min_hours - series.size
            series = np.concatenate([np.zeros(pad), series])
            start -= pad * SECONDS_PER_HOUR
        return self.fit_series(series, start_time=start)

    def fit_series(self, series: Sequence[float],
                   start_time: float = 0.0) -> "ThroughputPredictModel":
        """Fit from an already-aggregated hourly series."""
        series = np.asarray(series, dtype=float)
        if series.size < 24:
            raise ValueError("need at least one day of hourly history")
        self._start_time = start_time
        X, names = throughput_feature_table(series, start_time=start_time)
        self._feature_names = names
        self._train_median = float(np.median(series))
        self._model = GA2MRegressor(
            n_rounds=self.n_rounds, n_interactions=self.n_interactions,
            max_bins=self.max_bins, smoothing=self.smoothing,
            feature_names=list(names), random_state=self.random_state)
        self._model.fit(X, series)
        return self

    def _check_fitted(self) -> None:
        if self._model is None:
            raise RuntimeError("ThroughputPredictModel is not fitted")

    # ------------------------------------------------------------------
    # Forecasting
    # ------------------------------------------------------------------
    def predict_series(self, series: Sequence[float],
                       start_time: Optional[float] = None) -> np.ndarray:
        """One-step-ahead predictions aligned with an observed series.

        ``out[t]`` is the forecast of ``series[t]`` from strictly earlier
        observations (every engineered feature is causal), which is the
        Figure-13a evaluation protocol.
        """
        self._check_fitted()
        t0 = self._start_time if start_time is None else start_time
        X, _ = throughput_feature_table(np.asarray(series, dtype=float),
                                        start_time=t0)
        return np.maximum(0.0, self._model.predict(X))

    def forecast_next(self, recent_series: Sequence[float],
                      next_time: float) -> float:
        """Forecast the next hour given the recent observed hours.

        ``next_time`` is the timestamp of the hour being forecast; the
        recent series must end with the hour immediately before it.
        """
        self._check_fitted()
        extended = np.append(np.asarray(recent_series, dtype=float), 0.0)
        start = next_time - (len(extended) - 1) * SECONDS_PER_HOUR
        X, _ = throughput_feature_table(extended, start_time=start)
        return float(max(0.0, self._model.predict(X[-1:])[0]))

    def load_level(self, forecast: float) -> float:
        """Forecast relative to the historical median (1.0 = typical)."""
        self._check_fitted()
        if self._train_median <= 0:
            return 1.0
        return forecast / self._train_median

    @property
    def train_median(self) -> float:
        return self._train_median

    # ------------------------------------------------------------------
    # Interpretation (Figure 7a/7b)
    # ------------------------------------------------------------------
    def explain_global(self) -> GlobalExplanation:
        self._check_fitted()
        return self._model.explain_global()

    def hour_shape(self) -> Tuple[np.ndarray, np.ndarray]:
        """The learned shape function of the hour feature (Figure 7b)."""
        self._check_fitted()
        idx = list(self._feature_names).index("hour")
        return self._model.shape_function(idx)
