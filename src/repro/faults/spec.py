"""Fault-model configuration: rates, retry knobs and explicit scripts.

Production DL clusters are not the perfect world the base simulator
assumes: the traces behind the paper's cluster characterization (§2) are
full of node failures, job crashes and stragglers.  A :class:`FaultSpec`
describes a *deterministic, seed-driven* failure model:

* **Stochastic rates** — per-node MTBF/MTTR (main and profiler clusters),
  a cluster-wide job-crash rate and a straggler (slowdown) rate.  All
  schedules are pre-generated from ``seed`` before the run starts, so the
  same spec always yields bit-identical fault timelines.
* **Explicit script** — a list of :class:`FaultScriptEntry` pinning exact
  fault times/targets, for tests and reproducible what-if studies.
* **Retry policy knobs** — retry budget, exponential backoff and the
  checkpoint interval of the progress model (crashed jobs lose only the
  work since their last checkpoint).

Specs parse from a JSON file or a compact inline ``key=value,...`` string
(the CLI's ``--faults`` argument accepts both).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple

from repro.faults.retry import RetryPolicy

__all__ = ["FaultSpec", "FaultScriptEntry", "FaultSpecError"]

#: Fault kinds accepted in scripts (mirrors the simulator event kinds).
SCRIPT_KINDS = ("node_fail", "job_crash", "slowdown")
#: Valid fault targets: the main cluster or Lucid's profiling cluster.
TARGETS = ("main", "profiler")


class FaultSpecError(ValueError):
    """Raised when a fault specification cannot be interpreted."""


@dataclass(frozen=True)
class FaultScriptEntry:
    """One explicitly scheduled fault.

    Attributes
    ----------
    time:
        Simulated time (seconds) at which the fault strikes.
    kind:
        ``node_fail`` | ``job_crash`` | ``slowdown``.
    node:
        Node index for ``node_fail``/``slowdown`` (within ``target``).
    target:
        ``main`` (default) or ``profiler`` — which cluster the node
        belongs to.  Ignored by ``job_crash``.
    job:
        Victim job id for ``job_crash``; ``None`` picks a seeded-random
        running job at fire time.
    duration:
        Repair time (``node_fail``) or straggler window (``slowdown``).
    factor:
        Speed multiplier during a ``slowdown`` (0 < factor < 1).
    """

    time: float
    kind: str
    node: Optional[int] = None
    target: str = "main"
    job: Optional[int] = None
    duration: Optional[float] = None
    factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in SCRIPT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; known: {SCRIPT_KINDS}")
        if self.target not in TARGETS:
            raise FaultSpecError(
                f"unknown fault target {self.target!r}; known: {TARGETS}")
        if self.time < 0:
            raise FaultSpecError(f"fault time must be >= 0, got {self.time}")
        if self.kind in ("node_fail", "slowdown") and self.node is None:
            raise FaultSpecError(f"{self.kind} entries need a node index")
        if self.kind == "slowdown":
            if self.factor is None or not 0.0 < self.factor < 1.0:
                raise FaultSpecError(
                    f"slowdown factor must be in (0, 1), got {self.factor}")


@dataclass(frozen=True)
class FaultSpec:
    """Complete fault-model configuration (all knobs optional).

    Rates of zero (the defaults) and an empty script mean no faults: a
    simulator given such a spec produces bit-identical results to one
    given no fault model at all.
    """

    #: Seed of every stochastic fault schedule and victim choice.
    seed: int = 0
    #: Pre-generation horizon in seconds; faults are only scheduled up to
    #: this simulated time (events past the trace's makespan are inert).
    horizon: float = 30 * 86_400.0
    #: Mean seconds between failures of each main-cluster node (Poisson
    #: process per node); ``None`` disables node failures.
    node_mtbf: Optional[float] = None
    #: Mean repair time of a failed main-cluster node.
    node_mttr: float = 1800.0
    #: Mean seconds between failures of each profiler node (Lucid only).
    profiler_mtbf: Optional[float] = None
    #: Mean repair time of a failed profiler node.
    profiler_mttr: float = 1800.0
    #: Cluster-wide job crashes per simulated hour (seeded-random victim).
    crash_rate: float = 0.0
    #: Cluster-wide straggler (node slowdown) events per simulated hour.
    slowdown_rate: float = 0.0
    #: Speed multiplier applied to a straggling node's GPUs.
    slowdown_factor: float = 0.5
    #: Mean duration of one straggler window.
    slowdown_duration: float = 1800.0
    #: Retry budget: a job may crash at most this many times and still be
    #: requeued; the next crash is a permanent failure.
    retry_limit: int = 3
    #: First retry delay; doubles (``backoff_factor``) up to ``backoff_cap``.
    backoff_base: float = 30.0
    backoff_factor: float = 2.0
    backoff_cap: float = 3600.0
    #: Progress-model checkpoint interval: a crashed job resumes from the
    #: last multiple of this many exclusive-execution seconds (0 disables
    #: checkpointing — crashes restart from scratch).
    checkpoint_interval: float = 600.0
    #: Explicit fault script, merged with the stochastic schedules.
    script: Tuple[FaultScriptEntry, ...] = ()

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise FaultSpecError("horizon must be positive")
        for name in ("node_mtbf", "profiler_mtbf"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise FaultSpecError(f"{name} must be positive, got {value}")
        for name in ("node_mttr", "profiler_mttr", "slowdown_duration",
                     "backoff_base", "backoff_cap"):
            if getattr(self, name) <= 0:
                raise FaultSpecError(f"{name} must be positive")
        for name in ("crash_rate", "slowdown_rate", "checkpoint_interval"):
            if getattr(self, name) < 0:
                raise FaultSpecError(f"{name} must be >= 0")
        if not 0.0 < self.slowdown_factor < 1.0:
            raise FaultSpecError("slowdown_factor must be in (0, 1)")
        if self.retry_limit < 0:
            raise FaultSpecError("retry_limit must be >= 0")
        if self.backoff_factor < 1.0:
            raise FaultSpecError("backoff_factor must be >= 1")

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether this spec can produce any fault at all."""
        return bool(self.script) or self.crash_rate > 0 \
            or self.slowdown_rate > 0 or self.node_mtbf is not None \
            or self.profiler_mtbf is not None

    def retry_policy(self) -> RetryPolicy:
        """The per-job retry policy this spec configures."""
        return RetryPolicy(
            max_retries=self.retry_limit,
            backoff_base=self.backoff_base,
            backoff_factor=self.backoff_factor,
            backoff_cap=self.backoff_cap,
            checkpoint_interval=self.checkpoint_interval,
        )

    def with_seed(self, seed: int) -> "FaultSpec":
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a spec from a JSON file path or an inline k=v string.

        Inline example::

            node_mtbf=43200,node_mttr=1800,crash_rate=0.2,seed=7

        JSON files may additionally carry a ``script`` array of
        :class:`FaultScriptEntry` objects.
        """
        text = text.strip()
        if not text:
            raise FaultSpecError("empty fault spec")
        if os.path.exists(text) or text.endswith(".json"):
            return cls.from_file(text)
        if text.startswith("{"):
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as exc:
                raise FaultSpecError(f"bad inline JSON fault spec: {exc}") \
                    from None
            return cls.from_dict(payload)
        return cls._from_kv(text)

    @classmethod
    def from_file(cls, path: str) -> "FaultSpec":
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise FaultSpecError(f"fault spec file not found: {path}") \
                from None
        except json.JSONDecodeError as exc:
            raise FaultSpecError(f"bad JSON in fault spec {path}: {exc}") \
                from None
        return cls.from_dict(payload)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSpec":
        if not isinstance(payload, dict):
            raise FaultSpecError("fault spec must be a JSON object")
        payload = dict(payload)
        raw_script = payload.pop("script", [])
        known = {f.name for f in fields(cls)} - {"script"}
        unknown = set(payload) - known
        if unknown:
            raise FaultSpecError(
                f"unknown fault spec keys: {sorted(unknown)}; "
                f"known: {sorted(known)}")
        script = []
        if not isinstance(raw_script, (list, tuple)):
            raise FaultSpecError("script must be a list of fault entries")
        for index, entry in enumerate(raw_script):
            if not isinstance(entry, dict):
                raise FaultSpecError(f"script[{index}] must be an object")
            entry_keys = {f.name for f in fields(FaultScriptEntry)}
            bad = set(entry) - entry_keys
            if bad:
                raise FaultSpecError(
                    f"script[{index}] has unknown keys {sorted(bad)}")
            if "time" not in entry or "kind" not in entry:
                raise FaultSpecError(
                    f"script[{index}] needs 'time' and 'kind'")
            script.append(FaultScriptEntry(**entry))
        try:
            return cls(script=tuple(script), **payload)
        except TypeError as exc:
            raise FaultSpecError(f"bad fault spec: {exc}") from None

    @classmethod
    def _from_kv(cls, text: str) -> "FaultSpec":
        numeric = {f.name for f in fields(cls)} - {"script"}
        payload: Dict[str, Any] = {}
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                raise FaultSpecError(
                    f"bad fault spec fragment {chunk!r}; expected key=value")
            key, _, value = chunk.partition("=")
            key = key.strip()
            if key not in numeric:
                raise FaultSpecError(
                    f"unknown fault spec key {key!r}; known: {sorted(numeric)}")
            try:
                number: Any = float(value)
            except ValueError:
                raise FaultSpecError(
                    f"fault spec key {key!r} needs a number, got {value!r}") \
                    from None
            if key in ("seed", "retry_limit"):
                number = int(number)
            payload[key] = number
        return cls.from_dict(payload)
