"""Deterministic, seed-driven fault-event generation.

The :class:`FaultInjector` turns a :class:`~repro.faults.spec.FaultSpec`
into concrete simulator events *before* the run starts: per-node failure /
recovery pairs (alternating exponential up/down times), cluster-wide job
crashes and straggler windows (Poisson processes), plus any explicit
script entries.  Every schedule is drawn from independent substreams of
the spec's seed, so a given (spec, cluster shape) always produces the
same fault timeline — benchmark comparisons across schedulers stay
apples-to-apples, and a failing run can be replayed exactly.

The only fire-time randomness is job-crash victim selection (the set of
running jobs is unknowable in advance); it uses its own substream and the
simulator is itself deterministic, so end-to-end runs remain bit-stable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.faults.retry import RetryPolicy
from repro.faults.spec import FaultScriptEntry, FaultSpec
from repro.sim.events import EventKind

__all__ = ["FaultInjector"]

#: Substream ids: one independent RNG per fault category, so e.g. adding
#: a crash rate never reshuffles the node-failure schedule.
_STREAM_NODES = 0
_STREAM_PROFILER = 1
_STREAM_CRASHES = 2
_STREAM_SLOWDOWNS = 3
_STREAM_VICTIMS = 4


class FaultInjector:
    """Schedules fault events into a simulator's event queue.

    Parameters
    ----------
    spec:
        The fault model; see :class:`~repro.faults.spec.FaultSpec`.
    retry_policy:
        Override of the spec's retry policy (tests / sweeps).
    """

    def __init__(self, spec: FaultSpec,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self.spec = spec
        self.retry = retry_policy if retry_policy is not None \
            else spec.retry_policy()
        self._victim_rng = self._stream(_STREAM_VICTIMS)

    def _stream(self, stream_id: int) -> np.random.Generator:
        return np.random.default_rng([self.spec.seed, stream_id])

    # ------------------------------------------------------------------
    # Schedule generation
    # ------------------------------------------------------------------
    def schedule_into(self, engine) -> int:
        """Push every fault event into ``engine.events``; returns count.

        Called by the engine once, after the scheduler attached (Lucid's
        profiler cluster only exists from that point on).
        """
        count = 0
        count += self._schedule_node_failures(engine)
        count += self._schedule_crashes(engine)
        count += self._schedule_slowdowns(engine)
        count += self._schedule_script(engine)
        return count

    def _schedule_node_failures(self, engine) -> int:
        spec = self.spec
        count = 0
        if spec.node_mtbf is not None:
            rng = self._stream(_STREAM_NODES)
            for index in range(len(engine.cluster.nodes)):
                for start, repair in self._failure_windows(
                        rng, spec.node_mtbf, spec.node_mttr, spec.horizon):
                    self._push_node_window(engine, "main", index, start,
                                           repair)
                    count += 2
        profiler = self._profiler_cluster(engine)
        if spec.profiler_mtbf is not None and profiler is not None:
            rng = self._stream(_STREAM_PROFILER)
            for index in range(len(profiler.nodes)):
                for start, repair in self._failure_windows(
                        rng, spec.profiler_mtbf, spec.profiler_mttr,
                        spec.horizon):
                    self._push_node_window(engine, "profiler", index, start,
                                           repair)
                    count += 2
        return count

    @staticmethod
    def _failure_windows(rng: np.random.Generator, mtbf: float, mttr: float,
                         horizon: float) -> List[Tuple[float, float]]:
        """Alternating up/down sampling of one node's failure windows."""
        windows: List[Tuple[float, float]] = []
        t = 0.0
        while True:
            t += float(rng.exponential(mtbf))
            if t >= horizon:
                return windows
            repair = max(1.0, float(rng.exponential(mttr)))
            windows.append((t, repair))
            t += repair

    @staticmethod
    def _push_node_window(engine, target: str, index: int, start: float,
                          repair: float) -> None:
        engine.events.push(start, EventKind.NODE_FAIL,
                           payload=(target, index))
        engine.events.push(start + repair, EventKind.NODE_RECOVER,
                           payload=(target, index))

    def _schedule_crashes(self, engine) -> int:
        spec = self.spec
        if spec.crash_rate <= 0:
            return 0
        rng = self._stream(_STREAM_CRASHES)
        count = 0
        for t in self._poisson_times(rng, 3600.0 / spec.crash_rate,
                                     spec.horizon):
            engine.events.push(t, EventKind.JOB_CRASH, payload=None)
            count += 1
        return count

    def _schedule_slowdowns(self, engine) -> int:
        spec = self.spec
        if spec.slowdown_rate <= 0:
            return 0
        rng = self._stream(_STREAM_SLOWDOWNS)
        n_nodes = len(engine.cluster.nodes)
        count = 0
        for t in self._poisson_times(rng, 3600.0 / spec.slowdown_rate,
                                     spec.horizon):
            index = int(rng.integers(n_nodes))
            duration = max(60.0, float(rng.exponential(
                spec.slowdown_duration)))
            self._push_slowdown(engine, "main", index, t,
                                spec.slowdown_factor, duration)
            count += 2
        return count

    @staticmethod
    def _poisson_times(rng: np.random.Generator, mean_gap: float,
                       horizon: float) -> List[float]:
        times: List[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(mean_gap))
            if t >= horizon:
                return times
            times.append(t)

    @staticmethod
    def _push_slowdown(engine, target: str, index: int, start: float,
                       factor: float, duration: float) -> None:
        engine.events.push(start, EventKind.SLOWDOWN,
                           payload=(target, index, factor))
        engine.events.push(start + duration, EventKind.SLOWDOWN_END,
                           payload=(target, index))

    def _schedule_script(self, engine) -> int:
        count = 0
        for entry in self.spec.script:
            count += self._schedule_entry(engine, entry)
        return count

    def _schedule_entry(self, engine, entry: FaultScriptEntry) -> int:
        if entry.kind == "node_fail":
            repair = entry.duration if entry.duration is not None \
                else self.spec.node_mttr
            self._push_node_window(engine, entry.target, entry.node,
                                   entry.time, repair)
            return 2
        if entry.kind == "job_crash":
            engine.events.push(entry.time, EventKind.JOB_CRASH,
                               payload=entry.job)
            return 1
        # slowdown (spec validation guarantees the kind set)
        duration = entry.duration if entry.duration is not None \
            else self.spec.slowdown_duration
        self._push_slowdown(engine, entry.target, entry.node, entry.time,
                            entry.factor, duration)
        return 2

    @staticmethod
    def _profiler_cluster(engine):
        """Lucid's profiling cluster, or ``None`` for baseline schedulers."""
        profiler = getattr(engine.scheduler, "profiler", None)
        return getattr(profiler, "cluster", None)

    # ------------------------------------------------------------------
    # Fire-time choices
    # ------------------------------------------------------------------
    def pick_victim(self, running_ids: List[int]) -> int:
        """Seeded-random victim among currently running job ids."""
        return running_ids[int(self._victim_rng.integers(len(running_ids)))]
