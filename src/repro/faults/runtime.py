"""Engine-side fault handling: kills, retries and recovery.

The :class:`FaultRuntime` owns every mutation a fault event performs on
the simulation — the engine's dispatch loop delegates the fault event
kinds here.  Responsibilities:

* **Node failures** — mark the node and its GPUs unhealthy (placement
  helpers skip them from that instant) and kill every resident job,
  including packed mates and multi-node jobs spanning the dead node.
* **Job crashes** — kill a single victim: the scripted job id, or a
  seeded-random choice among running jobs.
* **Retry/backoff** — killed jobs roll back to their last checkpoint,
  wait out an exponential backoff (``RETRY`` event), then re-enter their
  scheduler's queue via ``on_job_failed``; once the retry budget is
  exhausted the job fails permanently (terminal ``FAILED`` record).
* **Stragglers** — a slowdown window multiplies the node's GPU speeds by
  ``fault_slow`` < 1 until the paired ``SLOWDOWN_END`` fires.
* **Accounting** — restarts, lost GPU-hours, MTTR and goodput, reported
  as :class:`~repro.sim.metrics.FaultStats` on the simulation result.

The runtime only exists when a fault spec is active, so a fault-free run
executes the exact instruction stream of the seed engine.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.faults.injector import FaultInjector
from repro.obs.logutil import get_logger
from repro.sim.events import EventKind
from repro.sim.metrics import FaultStats
from repro.workloads.job import Job, JobRecord, JobStatus

__all__ = ["FaultRuntime"]

logger = get_logger("faults.runtime")


class FaultRuntime:
    """Applies fault events to a running :class:`~repro.sim.engine.Simulator`."""

    def __init__(self, engine, injector: FaultInjector) -> None:
        self._engine = engine
        self._injector = injector
        self.policy = injector.retry
        # Counters backing FaultStats.
        self.node_failures = 0
        self.node_recoveries = 0
        self.slowdowns = 0
        self.job_crashes = 0
        self.restarts = 0
        self.jobs_failed = 0
        self.lost_gpu_seconds = 0.0
        self.repair_seconds = 0.0
        self._down_since: Dict[Tuple[str, int], float] = {}

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, event, now: float) -> None:
        kind = event.kind
        if kind is EventKind.NODE_FAIL:
            self._handle_node_fail(event, now)
        elif kind is EventKind.NODE_RECOVER:
            self._handle_node_recover(event, now)
        elif kind is EventKind.JOB_CRASH:
            self._handle_job_crash(event, now)
        elif kind is EventKind.SLOWDOWN:
            self._handle_slowdown(event, now)
        elif kind is EventKind.SLOWDOWN_END:
            self._handle_slowdown_end(event, now)
        elif kind is EventKind.RETRY:
            self._handle_retry(event, now)

    def _resolve_node(self, target: str, index: int):
        """The addressed node, or ``None`` when the target does not exist
        (profiler faults against baseline schedulers, out-of-range script
        indices)."""
        if target == "profiler":
            profiler = getattr(self._engine.scheduler, "profiler", None)
            cluster = getattr(profiler, "cluster", None)
        else:
            cluster = self._engine.cluster
        if cluster is None or not 0 <= index < len(cluster.nodes):
            return None
        return cluster.nodes[index]

    # ------------------------------------------------------------------
    # Node failure / recovery
    # ------------------------------------------------------------------
    def _handle_node_fail(self, event, now: float) -> None:
        target, index = event.payload
        node = self._resolve_node(target, index)
        if node is None or not node.healthy:
            return  # unknown target or already down (overlapping windows)
        node.healthy = False
        for gpu in node.gpus:
            gpu.healthy = False
        self.node_failures += 1
        self._down_since[(target, index)] = now
        victims = set()
        for gpu in node.gpus:
            victims.update(gpu.residents)
        engine = self._engine
        if engine.lineage is not None:
            engine.lineage.on_node_fail(now, node.node_id,
                                        sorted(victims))
        if engine._tracing:
            engine.tracer.emit(now, "node_fail", None, target=target,
                               node=node.node_id, victims=sorted(victims))
            engine.metrics.counter("fault_node_failures").inc()
        logger.debug("t=%.0fs node_fail %s[%d]: %d victims", now, target,
                     index, len(victims))
        for job_id in sorted(victims):
            self._kill(engine.jobs[job_id], now, cause="node_fail")

    def _handle_node_recover(self, event, now: float) -> None:
        target, index = event.payload
        node = self._resolve_node(target, index)
        if node is None or node.healthy:
            return
        node.healthy = True
        for gpu in node.gpus:
            gpu.healthy = True
        self.node_recoveries += 1
        down = self._down_since.pop((target, index), None)
        if down is not None:
            self.repair_seconds += now - down
        engine = self._engine
        if engine.lineage is not None:
            engine.lineage.on_node_recover(now, node.node_id)
        if engine._tracing:
            engine.tracer.emit(now, "node_recover", None, target=target,
                               node=node.node_id)
            engine.metrics.counter("fault_node_recoveries").inc()

    # ------------------------------------------------------------------
    # Job crashes and retry
    # ------------------------------------------------------------------
    def _handle_job_crash(self, event, now: float) -> None:
        engine = self._engine
        if event.payload is not None:
            if event.payload not in engine.run_states:
                return  # scripted victim is not running; the crash fizzles
            victim = engine.jobs[event.payload]
        else:
            running = sorted(engine.run_states)
            if not running:
                return  # idle cluster: nothing to crash
            victim = engine.jobs[self._injector.pick_victim(running)]
        self._kill(victim, now, cause="crash")

    def _kill(self, job: Job, now: float, cause: str) -> None:
        """Remove a running job from its GPUs as a fault casualty."""
        engine = self._engine
        state = engine.run_states.pop(job.job_id)
        engine._integrate(job, state)
        gpus = state.gpus
        for gpu in gpus:
            gpu.detach(job.job_id)
        self.job_crashes += 1
        old_progress = job.progress
        if job.restarts >= self.policy.max_retries:
            # Retry budget exhausted: all surviving progress is wasted too.
            job.lost_work += old_progress
            self.lost_gpu_seconds += old_progress * job.gpu_num
            self._fail_permanently(job, now, cause, gpus=gpus,
                                   profiling=state.is_profiling)
        else:
            # Profiling runs restart from scratch (Lucid is non-intrusive:
            # no checkpoints in the profiler); main runs keep the last
            # checkpoint of the progress model.
            checkpoint = 0.0 if state.is_profiling else \
                self.policy.checkpointed_progress(old_progress)
            lost = old_progress - checkpoint
            job.progress = checkpoint
            job.lost_work += lost
            self.lost_gpu_seconds += lost * job.gpu_num
            job.restarts += 1
            self.restarts += 1
            job.status = JobStatus.CRASHED
            delay = self.policy.backoff(job.restarts)
            engine.events.push(now + delay, EventKind.RETRY, job.job_id)
            if engine.lineage is not None:
                engine.lineage.on_crash(
                    now, job.job_id, [g.gpu_id for g in gpus],
                    cause=cause, lost=lost, backoff=delay,
                    progress=job.progress,
                    profiling=state.is_profiling)
            if engine._tracing:
                engine.tracer.emit(now, "crash", job.job_id, cause=cause,
                                   restarts=job.restarts, lost=lost,
                                   backoff=delay,
                                   gpus=[g.gpu_id for g in gpus],
                                   nodes=[g.node_id for g in gpus],
                                   progress=job.progress,
                                   profiling=state.is_profiling)
                engine.metrics.counter("fault_job_crashes").inc()
                engine.metrics.counter("job_restarts").inc()
        engine._refresh_speeds_around(gpus)
        engine.utilization.update(now)

    def _fail_permanently(self, job: Job, now: float, cause: str,
                          gpus: Sequence = (),
                          profiling: bool = False) -> None:
        engine = self._engine
        job.status = JobStatus.FAILED
        job.finish_time = now
        engine.records.append(JobRecord.from_job(job))
        engine._unfinished -= 1
        self.jobs_failed += 1
        logger.debug("t=%.0fs job %d failed permanently after %d restarts",
                     now, job.job_id, job.restarts)
        if engine.lineage is not None:
            engine.lineage.on_job_failed(
                now, job.job_id, cause=cause,
                gpus=[g.gpu_id for g in gpus],
                progress=job.progress, profiling=profiling)
        if engine._tracing:
            engine.tracer.emit(now, "job_failed", job.job_id, cause=cause,
                               restarts=job.restarts,
                               gpus=[g.gpu_id for g in gpus],
                               nodes=[g.node_id for g in gpus],
                               progress=job.progress)
            engine.metrics.counter("fault_job_crashes").inc()
            engine.metrics.counter("jobs_failed").inc()
        self._notify_scheduler(job, now, permanent=True)

    def _handle_retry(self, event, now: float) -> None:
        job = self._engine.jobs[event.job_id]
        if job.status is not JobStatus.CRASHED:
            return
        job.status = JobStatus.PENDING
        if self._engine.lineage is not None:
            self._engine.lineage.on_retry(now, job.job_id)
        if self._engine._tracing:
            self._engine.tracer.emit(now, "retry", job.job_id,
                                     restarts=job.restarts)
        self._notify_scheduler(job, now, permanent=False)

    def _notify_scheduler(self, job: Job, now: float, permanent: bool) -> None:
        scheduler = self._engine.scheduler
        handler = getattr(scheduler, "on_job_failed", None)
        if handler is not None:
            handler(job, now, permanent=permanent)
        elif not permanent:
            # Duck-typed scheduler without the callback: best-effort requeue.
            queue = getattr(scheduler, "queue", None)
            if queue is not None:
                queue.append(job)

    # ------------------------------------------------------------------
    # Stragglers
    # ------------------------------------------------------------------
    def _handle_slowdown(self, event, now: float) -> None:
        target, index, factor = event.payload
        node = self._resolve_node(target, index)
        if node is None:
            return
        for gpu in node.gpus:
            gpu.fault_slow = factor
        self.slowdowns += 1
        engine = self._engine
        if engine._tracing:
            engine.tracer.emit(now, "slowdown", None, target=target,
                               node=node.node_id, factor=factor)
            engine.metrics.counter("fault_slowdowns").inc()
        engine._refresh_speeds_around(node.gpus)

    def _handle_slowdown_end(self, event, now: float) -> None:
        target, index = event.payload
        node = self._resolve_node(target, index)
        if node is None:
            return
        for gpu in node.gpus:
            gpu.fault_slow = 1.0
        engine = self._engine
        if engine._tracing:
            engine.tracer.emit(now, "slowdown_end", None, target=target,
                               node=node.node_id)
        engine._refresh_speeds_around(node.gpus)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def stats(self) -> FaultStats:
        """Failure-aware accounting for the simulation result.

        Work is measured in exclusive-execution GPU-seconds (the engine's
        progress unit): ``goodput`` is the fraction of executed work that
        ended up in finished jobs — rollback losses and the progress of
        permanently failed jobs are the waste.

        MTTR averages *completed* repairs only.  Nodes still down when
        the simulation ends are censored: their truncated downtimes
        would drag the mean below the true repair time, so they are
        excluded from ``mttr`` and surfaced as ``censored_repairs``
        (count) and ``censored_repair_hours`` (downtime accumulated so
        far, a lower bound on the eventual repair).
        """
        useful = sum(r.duration * r.gpu_num
                     for r in self._engine.records if not r.failed)
        total = useful + self.lost_gpu_seconds
        goodput = useful / total if total > 0 else 1.0
        mttr = (self.repair_seconds / self.node_recoveries
                if self.node_recoveries else 0.0)
        now = self._engine.now
        censored_seconds = sum(now - down
                               for down in sorted(self._down_since.values()))
        return FaultStats(
            node_failures=self.node_failures,
            node_recoveries=self.node_recoveries,
            slowdowns=self.slowdowns,
            job_crashes=self.job_crashes,
            restarts=self.restarts,
            jobs_failed=self.jobs_failed,
            lost_gpu_hours=self.lost_gpu_seconds / 3600.0,
            goodput=goodput,
            mttr=mttr,
            censored_repairs=len(self._down_since),
            censored_repair_hours=censored_seconds / 3600.0,
        )

    def export_metrics(self, registry, stats: FaultStats) -> None:
        """Publish final fault aggregates into the telemetry registry."""
        registry.gauge("lost_gpu_hours").set(stats.lost_gpu_hours)
        registry.gauge("goodput").set(stats.goodput)
        registry.gauge("mttr_seconds").set(stats.mttr)
        registry.gauge("censored_repairs").set(float(stats.censored_repairs))
