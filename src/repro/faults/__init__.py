"""Fault injection: deterministic failure events for the simulator.

See :mod:`repro.faults.spec` for the configuration surface,
:mod:`repro.faults.injector` for seed-driven schedule generation and
:mod:`repro.faults.runtime` for the engine-side kill/retry/recovery
semantics.
"""

from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy
from repro.faults.runtime import FaultRuntime
from repro.faults.spec import FaultScriptEntry, FaultSpec, FaultSpecError

__all__ = [
    "FaultInjector",
    "FaultRuntime",
    "FaultScriptEntry",
    "FaultSpec",
    "FaultSpecError",
    "RetryPolicy",
]
