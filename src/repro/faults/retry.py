"""Per-job retry policy: exponential backoff and checkpointed progress.

When a fault kills a running job, the engine consults the active
:class:`RetryPolicy` to decide (a) how much progress survives — the job
resumes from its last checkpoint, a multiple of ``checkpoint_interval``
exclusive-execution seconds — and (b) when the job may re-enter the
pending queue: after an exponentially growing backoff, until the retry
budget is exhausted and the job fails permanently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/checkpoint knobs applied to every job.

    Attributes
    ----------
    max_retries:
        Crashes a job survives; crash number ``max_retries + 1`` is a
        permanent failure (terminal ``FAILED`` state).
    backoff_base, backoff_factor, backoff_cap:
        The n-th retry waits ``min(cap, base * factor**(n-1))`` seconds
        before the job is handed back to its scheduler.
    checkpoint_interval:
        Checkpoint cadence in exclusive-execution seconds; a crashed job
        resumes from ``floor(progress / interval) * interval``.  ``0``
        disables checkpointing (crashes restart from scratch).
    """

    max_retries: int = 3
    backoff_base: float = 30.0
    backoff_factor: float = 2.0
    backoff_cap: float = 3600.0
    checkpoint_interval: float = 600.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0 or self.backoff_cap <= 0:
            raise ValueError("backoff bounds must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))

    def checkpointed_progress(self, progress: float) -> float:
        """Progress surviving a crash: the last completed checkpoint."""
        interval = self.checkpoint_interval
        if interval <= 0:
            return 0.0
        return math.floor(progress / interval) * interval
