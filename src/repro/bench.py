"""``repro bench``: the repo's performance-trajectory harness.

Runs a standard scenario matrix (schedulers x trace scales, fully
seeded) with the :class:`~repro.obs.prof.SimProfiler` attached and
writes a ``BENCH_<timestamp>.json`` file recording wall time, simulator
throughput (events/sec), peak RSS and the per-phase breakdown of every
scenario.  Each future PR extends the trajectory: CI runs the quick
matrix on every change and fails when events/sec regresses beyond a
threshold against the committed baseline
(``benchmarks/results/bench_baseline.json``).

Two bench files are comparable when their scenarios share the same
``(scheduler, trace, jobs, seed)`` key; :func:`diff_bench` matches on
that key, so adding scenarios to the matrix never breaks old baselines.

This module is deliberately free of simulation logic — it only drives
``Simulator`` runs — and lives at the application layer (a top-level
module, above every library package in the layering DAG), so its
wall-clock and timestamp reads are outside RPR002's scope.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.ioutil import atomic_write_text
from repro.obs.prof import SimProfiler

__all__ = [
    "BENCH_SCHEMA",
    "BenchScenario",
    "FULL_MATRIX",
    "QUICK_MATRIX",
    "bench_filename",
    "diff_bench",
    "format_diff",
    "load_bench",
    "run_bench",
    "validate_bench",
    "write_bench",
]

#: Schema tag; bump on incompatible layout changes.
BENCH_SCHEMA = "repro-bench/v1"

#: Keys every scenario entry must carry (enforced by validate_bench and
#: schema-checked in tests).
_SCENARIO_KEYS = ("name", "scheduler", "trace", "jobs", "seed",
                  "wall_seconds", "events", "events_per_sec",
                  "peak_rss_mb", "makespan_hrs", "avg_jct_hrs", "phases")
#: Top-level keys of a bench document.
_DOC_KEYS = ("schema", "created", "quick", "python", "platform",
             "scenarios", "totals")


@dataclass(frozen=True)
class BenchScenario:
    """One cell of the benchmark matrix."""

    scheduler: str
    trace: str
    jobs: int
    seed: int = 7

    @property
    def name(self) -> str:
        return f"{self.scheduler}/{self.trace}@{self.jobs}j-s{self.seed}"

    @property
    def key(self) -> Tuple[str, str, int, int]:
        """Identity used to match scenarios across bench files."""
        return (self.scheduler, self.trace, self.jobs, self.seed)


#: Quick matrix: the CI per-PR perf gate (seconds, not minutes).
QUICK_MATRIX: Tuple[BenchScenario, ...] = (
    BenchScenario("fifo", "venus", 120),
    BenchScenario("tiresias", "venus", 120),
    BenchScenario("lucid", "venus", 120),
)

#: Full matrix: scheduler sweep across two trace scales.
FULL_MATRIX: Tuple[BenchScenario, ...] = tuple(
    BenchScenario(scheduler, trace, jobs)
    for trace, jobs in (("venus", 300), ("venus", 600), ("saturn", 600))
    for scheduler in ("fifo", "sjf", "qssf", "tiresias", "lucid"))


def run_scenario(scenario: BenchScenario) -> Dict[str, Any]:
    """Run one profiled simulation and distill its bench record."""
    # Imported lazily: the scheduler stack is too heavy to pull in at
    # module import time for diff-only use.
    from repro.core.factory import make_scheduler
    from repro.sim.engine import Simulator
    from repro.traces.generator import TraceGenerator
    from repro.traces.spec import get_spec

    spec = get_spec(scenario.trace).with_jobs(scenario.jobs) \
        .with_seed(scenario.seed)
    generator = TraceGenerator(spec)
    profiler = SimProfiler()
    simulator = Simulator(generator.build_cluster(), generator.generate(),
                          make_scheduler(scenario.scheduler,
                                         generator.generate_history()),
                          profile=profiler)
    result = simulator.run()
    profile = profiler.to_dict()
    return {
        "name": scenario.name,
        "scheduler": scenario.scheduler,
        "trace": scenario.trace,
        "jobs": scenario.jobs,
        "seed": scenario.seed,
        "wall_seconds": profile["wall_seconds"],
        "events": profile["events_processed"],
        "events_per_sec": profile["events_per_sec"],
        "peak_rss_mb": profile["peak_rss_mb"],
        "makespan_hrs": result.makespan / 3600.0,
        "avg_jct_hrs": result.avg_jct / 3600.0,
        "phases": {
            "event_kinds": profile["event_kinds"],
            "schedule_passes": profile["schedule_passes"],
            "spans": profile["spans"],
            "counters": profile["counters"],
        },
    }


def run_bench(scenarios: Sequence[BenchScenario],
              quick: bool = False,
              created: Optional[str] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> Dict[str, Any]:
    """Run a scenario matrix and assemble the bench document."""
    entries: List[Dict[str, Any]] = []
    for scenario in scenarios:
        if progress is not None:
            progress(f"bench: {scenario.name} ...")
        entries.append(run_scenario(scenario))
    wall = sum(e["wall_seconds"] for e in entries)
    events = sum(e["events"] for e in entries)
    rss = [e["peak_rss_mb"] for e in entries if e["peak_rss_mb"] is not None]
    return {
        "schema": BENCH_SCHEMA,
        "created": created if created is not None
        else time.strftime("%Y-%m-%dT%H:%M:%S"),
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "scenarios": entries,
        "totals": {
            "wall_seconds": wall,
            "events": events,
            "events_per_sec": events / wall if wall > 0 else 0.0,
            "peak_rss_mb": max(rss) if rss else None,
        },
    }


def bench_filename(created: Optional[float] = None) -> str:
    """Canonical ``BENCH_<timestamp>.json`` name for a fresh run."""
    stamp = time.strftime(
        "%Y%m%d-%H%M%S",
        time.localtime(created) if created is not None else time.localtime())
    return f"BENCH_{stamp}.json"


def validate_bench(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid bench file."""
    if not isinstance(document, dict):
        raise ValueError("bench document must be a JSON object")
    if document.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"unsupported bench schema "
                         f"{document.get('schema')!r}; "
                         f"expected {BENCH_SCHEMA!r}")
    missing = [k for k in _DOC_KEYS if k not in document]
    if missing:
        raise ValueError(f"bench document misses keys: {missing}")
    scenarios = document["scenarios"]
    if not isinstance(scenarios, list) or not scenarios:
        raise ValueError("bench document has no scenarios")
    for entry in scenarios:
        gone = [k for k in _SCENARIO_KEYS if k not in entry]
        if gone:
            raise ValueError(
                f"scenario {entry.get('name', '?')!r} misses keys: {gone}")
        if entry["events_per_sec"] < 0 or entry["wall_seconds"] < 0:
            raise ValueError(
                f"scenario {entry['name']!r} has negative measurements")


def write_bench(document: Dict[str, Any], path: str) -> None:
    validate_bench(document)
    atomic_write_text(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_bench(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        document = json.load(handle)
    validate_bench(document)
    return document


# ----------------------------------------------------------------------
# Regression diffing
# ----------------------------------------------------------------------
def _scenario_key(entry: Dict[str, Any]) -> Tuple[str, str, int, int]:
    return (entry["scheduler"], entry["trace"], entry["jobs"], entry["seed"])


def diff_bench(baseline: Dict[str, Any], candidate: Dict[str, Any],
               threshold: float = 0.25
               ) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Compare two bench documents on events/sec.

    Returns ``(rows, regressions)``: one row per scenario shared by both
    documents (matched on the ``(scheduler, trace, jobs, seed)`` key)
    plus a list of human-readable regression descriptions for scenarios
    whose candidate throughput fell more than ``threshold`` below the
    baseline.  Scenarios present in only one document are reported as
    rows with a ``note`` and never count as regressions.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    base_by_key = {_scenario_key(e): e for e in baseline["scenarios"]}
    cand_by_key = {_scenario_key(e): e for e in candidate["scenarios"]}
    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []
    for key in sorted(set(base_by_key) | set(cand_by_key)):
        base = base_by_key.get(key)
        cand = cand_by_key.get(key)
        if base is None or cand is None:
            rows.append({
                "name": (cand or base)["name"],
                "baseline_eps": base["events_per_sec"] if base else None,
                "candidate_eps": cand["events_per_sec"] if cand else None,
                "ratio": None,
                "note": "baseline-only" if cand is None else "new scenario",
            })
            continue
        base_eps = base["events_per_sec"]
        cand_eps = cand["events_per_sec"]
        ratio = cand_eps / base_eps if base_eps > 0 else float("inf")
        row = {
            "name": cand["name"],
            "baseline_eps": base_eps,
            "candidate_eps": cand_eps,
            "ratio": ratio,
            "note": "",
        }
        if ratio < 1.0 - threshold:
            row["note"] = "REGRESSION"
            regressions.append(
                f"{cand['name']}: events/sec fell "
                f"{(1.0 - ratio) * 100.0:.1f}% "
                f"({base_eps:,.0f} -> {cand_eps:,.0f}; "
                f"threshold {threshold * 100.0:.0f}%)")
        rows.append(row)
    return rows, regressions


def format_diff(rows: Sequence[Dict[str, Any]],
                regressions: Sequence[str],
                threshold: float) -> str:
    """Human-readable diff report."""
    lines = [f"{'scenario':<28} {'baseline ev/s':>14} "
             f"{'candidate ev/s':>15} {'ratio':>7}  note"]
    for row in rows:
        base = (f"{row['baseline_eps']:,.0f}"
                if row["baseline_eps"] is not None else "-")
        cand = (f"{row['candidate_eps']:,.0f}"
                if row["candidate_eps"] is not None else "-")
        ratio = f"{row['ratio']:.2f}" if row["ratio"] is not None else "-"
        lines.append(f"{row['name']:<28} {base:>14} {cand:>15} "
                     f"{ratio:>7}  {row['note']}")
    if regressions:
        lines.append(f"bench: {len(regressions)} regression(s) beyond "
                     f"{threshold * 100.0:.0f}%:")
        lines.extend(f"  {r}" for r in regressions)
    else:
        lines.append(f"bench: no events/sec regression beyond "
                     f"{threshold * 100.0:.0f}%")
    return "\n".join(lines)
