"""repro — reproduction of Lucid (ASPLOS '23).

A from-scratch Python implementation of the Lucid non-intrusive DL-cluster
scheduler, its substrates (cluster/workload/trace models, a discrete-event
simulator, an interpretable-model toolkit), the baselines it is compared
against, and a benchmark harness regenerating every table and figure of
the paper's evaluation.

Quickstart::

    from repro import quick_simulation
    result = quick_simulation("venus", scheduler="lucid", n_jobs=500)
    print(result.summary())
"""

from repro.core import LucidConfig, LucidScheduler
from repro.core.factory import make_scheduler
from repro.faults import FaultInjector, FaultSpec, FaultSpecError, RetryPolicy
from repro.sim import SimulationError, SimulationResult, Simulator
from repro.traces import PHILLY, SATURN, VENUS, TraceGenerator, TraceSpec, get_spec
from repro.workloads import InterferenceModel, Job

__version__ = "1.0.0"

__all__ = [
    "LucidConfig",
    "LucidScheduler",
    "FaultInjector",
    "FaultSpec",
    "FaultSpecError",
    "RetryPolicy",
    "SimulationError",
    "SimulationResult",
    "Simulator",
    "TraceGenerator",
    "TraceSpec",
    "VENUS",
    "SATURN",
    "PHILLY",
    "get_spec",
    "InterferenceModel",
    "Job",
    "quick_simulation",
    "make_scheduler",
]


def quick_simulation(trace="venus", scheduler="lucid", n_jobs=None,
                     seed=None, tracer=None, faults=None, profile=None,
                     series=None, lineage=None, **scheduler_kwargs):
    """Generate a trace, run one scheduler over it, return the results.

    Pass a :class:`repro.obs.RingBufferTracer` as ``tracer`` to collect
    structured events, metrics and (for Lucid) a decision audit on the
    returned result's ``telemetry`` field.  Pass a
    :class:`repro.faults.FaultSpec` (or a spec string accepted by
    ``FaultSpec.parse``) as ``faults`` to inject failures.  ``profile``
    and ``series`` forward to :class:`~repro.sim.engine.Simulator` to
    attach a :class:`~repro.obs.prof.SimProfiler` /
    :class:`~repro.obs.series.SeriesCollector`.
    """
    spec = get_spec(trace)
    if n_jobs is not None:
        spec = spec.with_jobs(n_jobs)
    if seed is not None:
        spec = spec.with_seed(seed)
    if isinstance(faults, str):
        faults = FaultSpec.parse(faults)
    generator = TraceGenerator(spec)
    cluster = generator.build_cluster()
    history = generator.generate_history()
    jobs = generator.generate()
    sched = make_scheduler(scheduler, history, **scheduler_kwargs)
    return Simulator(cluster, jobs, sched, tracer=tracer,
                     faults=faults, profile=profile, series=series,
                     lineage=lineage).run()
