"""Report formatting for examples and the benchmark harness.

Every benchmark prints the paper's reported numbers next to the measured
ones so the *shape* comparison (who wins, by what factor) is auditable at
a glance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, precision: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                title: Optional[str] = None, precision: int = 2) -> str:
    """Render a fixed-width table."""
    str_rows = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def comparison_table(metric: str, paper: Dict[str, float],
                     measured: Dict[str, float],
                     title: Optional[str] = None) -> str:
    """Side-by-side paper-vs-measured table with normalized columns.

    Both columns are additionally normalized to their respective best
    (minimum) entry, because the reproduction is expected to match ratios,
    not absolute values.
    """
    keys = [k for k in paper if k in measured]
    best_paper = min(paper[k] for k in keys) if keys else 1.0
    best_measured = min(measured[k] for k in keys) if keys else 1.0
    rows = []
    for key in keys:
        rows.append([
            key,
            paper[key],
            paper[key] / best_paper if best_paper > 1e-9 else None,
            measured[key],
            measured[key] / best_measured if best_measured > 1e-9 else None,
        ])
    headers = [metric, "paper", "paper/best", "measured", "measured/best"]
    return ascii_table(headers, rows, title=title)


def cdf_summary(xs, cdf, points: Sequence[float]) -> Dict[float, float]:
    """Sample a CDF at the given x points (for compact CDF reporting)."""
    import numpy as np

    xs = np.asarray(xs)
    cdf = np.asarray(cdf)
    out = {}
    for point in points:
        idx = int(np.searchsorted(xs, point, side="right")) - 1
        out[point] = float(cdf[max(0, min(idx, len(cdf) - 1))])
    return out
