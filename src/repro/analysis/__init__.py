"""Reporting helpers for examples and benchmarks."""

from repro.analysis.fairness import (
    finish_time_fairness,
    group_slowdowns,
    jain_index,
    slowdown,
    starvation_ratio,
    user_fairness,
    vc_fairness,
)
from repro.analysis.report import ascii_table, cdf_summary, comparison_table

__all__ = [
    "ascii_table",
    "cdf_summary",
    "comparison_table",
    "finish_time_fairness",
    "group_slowdowns",
    "jain_index",
    "slowdown",
    "starvation_ratio",
    "user_fairness",
    "vc_fairness",
]
