"""Fairness metrics — the paper's first future-work direction (§6).

Lucid's evaluation already touches fairness through tail queuing (Table 4)
and job-scale analysis (Table 5); this module adds the standard quantities
a fairness-aware extension would optimize, computable from any
:class:`~repro.sim.metrics.SimulationResult`:

* **Jain's fairness index** over per-group average slowdown — 1.0 when all
  groups are treated identically, 1/n in the worst case.
* **Finish-time fairness (rho)** in the spirit of Themis: a job's JCT
  divided by its ideal JCT (its duration), aggregated per group.
* **Max/mean queue ratio** — a blunt starvation indicator.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.sim.metrics import SimulationResult
from repro.workloads.job import JobRecord


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("jain_index needs at least one value")
    denom = arr.size * float(np.sum(arr ** 2))
    if denom == 0.0:
        return 1.0  # all zeros: perfectly equal
    return float(np.sum(arr) ** 2 / denom)


def slowdown(record: JobRecord) -> float:
    """JCT normalized by ideal (queue-free, exclusive) completion time."""
    return record.jct / max(record.duration, 1e-9)


def group_slowdowns(result: SimulationResult,
                    key: Callable[[JobRecord], str]) -> Dict[str, float]:
    """Average slowdown per group (e.g. per user or per VC)."""
    groups: Dict[str, list] = {}
    for record in result.records:
        groups.setdefault(key(record), []).append(slowdown(record))
    return {name: float(np.mean(values)) for name, values in groups.items()}


def user_fairness(result: SimulationResult) -> float:
    """Jain's index over per-user average slowdowns."""
    return jain_index(list(group_slowdowns(
        result, lambda r: r.user).values()))


def vc_fairness(result: SimulationResult) -> float:
    """Jain's index over per-VC average slowdowns."""
    return jain_index(list(group_slowdowns(result, lambda r: r.vc).values()))


def finish_time_fairness(result: SimulationResult) -> Dict[str, float]:
    """Summary of the per-job slowdown distribution (Themis' rho)."""
    rhos = np.array([slowdown(r) for r in result.records])
    if rhos.size == 0:
        return {"mean": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "mean": float(rhos.mean()),
        "p95": float(np.percentile(rhos, 95)),
        "max": float(rhos.max()),
    }


def starvation_ratio(result: SimulationResult) -> float:
    """Max queue delay over mean queue delay (1.0 = perfectly even)."""
    delays = result.queue_delays()
    if delays.size == 0 or delays.mean() <= 0:
        return 1.0
    return float(delays.max() / delays.mean())
