"""First-In-First-Out scheduler (Yarn/Kubernetes default queue policy)."""

from __future__ import annotations

from typing import Dict, List

from repro.schedulers.base import Scheduler
from repro.workloads.job import Job


class FIFOScheduler(Scheduler):
    """Strict per-VC FIFO with head-of-line blocking.

    Each virtual cluster runs its own FIFO queue (VCs are independent
    resource partitions); within a VC, a job that does not fit blocks all
    jobs behind it.  This runtime-agnostic paradigm is what makes FIFO's
    average JCT 5-8x worse than Lucid's in Table 4.
    """

    name = "fifo"

    def schedule(self, now: float) -> None:
        by_vc: Dict[str, List[Job]] = {}
        for job in self.queue:
            by_vc.setdefault(job.vc, []).append(job)
        # VCs are independent partitions, but a sorted walk keeps the
        # placement order (and any shared tie-breaking) deterministic.
        for _, vc_jobs in sorted(by_vc.items()):
            vc_jobs.sort(key=lambda j: (j.submit_time, j.job_id))
            self.place_in_order(vc_jobs, strict=True)
