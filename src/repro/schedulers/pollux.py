"""Pollux-style elastic scheduler [OSDI'21] — the §4.7 comparison.

Pollux co-adapts each job's GPU allocation and batch size to maximize
cluster-wide *goodput*.  This lightweight reproduction keeps the two
properties the paper's comparison hinges on:

* **Elasticity** — jobs run on fewer or more GPUs than requested, with a
  diminishing-returns speedup curve and a rescale overhead.  Under light
  load elasticity accelerates jobs beyond their request; under heavy load
  every job is squeezed and the overheads dominate (Figure 14a crossover).
* **Adaptive training cost** — scaling the batch size buys throughput but
  degrades final model quality (Figure 14b; the paper measures 89.84% vs
  87.63% best validation accuracy for EfficientNet).

It also inherits Pollux's scalability ceiling: each round solves a
cluster-wide reallocation, so decision latency grows with job count
(benchmarked in Figure 10a's comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.sim.metrics import SimulationResult, UtilizationSummary
from repro.workloads.job import Job, JobRecord

#: Seconds of lost work whenever a job's allocation changes (checkpoint,
#: re-partition, warmup) — Pollux's elasticity is user-code intrusive.
RESCALE_OVERHEAD = 30.0
#: Throughput bonus of adaptive batch-size scaling.
ADAPTIVE_SPEEDUP = 1.10


def elastic_speedup(allocated: int, requested: int) -> float:
    """Relative speed at ``allocated`` GPUs vs the requested allocation.

    Below the request the loss is *super-linear* (exponent > 1): squeezing
    a job onto fewer replicas than it was tuned for shrinks its effective
    batch and pays fixed per-step costs, so aggregate per-GPU goodput
    drops — the reason Pollux's rescaling "techniques are limited when
    clusters are overloaded" (§4.7).  Above the request returns diminish
    (statistical efficiency), capped at 1.6x.
    """
    if allocated <= 0:
        return 0.0
    ratio = allocated / requested
    if ratio <= 1.0:
        return ratio ** 1.3
    return min(1.6, 1.0 + 0.45 * math.log2(ratio))


class PolluxSimulator:
    """Round-based elastic cluster simulator.

    Parameters
    ----------
    n_gpus:
        Cluster size (Pollux ignores VC partitions; it manages the pool).
    round_interval:
        Seconds between reallocation rounds (Pollux uses 60 s).
    adaptive:
        Enable batch-size adaptation (throughput bonus, quality cost).
    """

    def __init__(self, n_gpus: int, round_interval: float = 60.0,
                 adaptive: bool = True) -> None:
        if n_gpus <= 0:
            raise ValueError("n_gpus must be positive")
        self.n_gpus = n_gpus
        self.round_interval = round_interval
        self.adaptive = adaptive

    # ------------------------------------------------------------------
    def _allocate(self, active: List[Job]) -> Dict[int, int]:
        """Greedy marginal-goodput allocation of the GPU pool."""
        alloc: Dict[int, int] = {j.job_id: 0 for j in active}
        free = self.n_gpus
        # Guarantee progress: one GPU per job while capacity lasts,
        # shortest-remaining first (Pollux's fairness-adjusted goodput
        # strongly favours jobs close to completion).
        for job in sorted(active, key=lambda j: j.remaining):
            if free <= 0:
                break
            alloc[job.job_id] = 1
            free -= 1
        # Spend the rest on the best marginal speedup per GPU.
        while free > 0:
            best_job = None
            best_gain = 0.0
            for job in active:
                a = alloc[job.job_id]
                if a == 0:
                    continue
                gain = (elastic_speedup(a + 1, job.gpu_num)
                        - elastic_speedup(a, job.gpu_num))
                if gain > best_gain:
                    best_gain = gain
                    best_job = job
            if best_job is None or best_gain <= 1e-6:
                break
            alloc[best_job.job_id] += 1
            free -= 1
        return alloc

    def run(self, jobs: Sequence[Job]) -> SimulationResult:
        """Simulate the trace and return engine-compatible results."""
        pending = sorted(jobs, key=lambda j: j.submit_time)
        for job in pending:
            job.progress = 0.0
            job.service_time = 0.0
            job.finish_time = None
        active: List[Job] = []
        records: List[JobRecord] = []
        prev_alloc: Dict[int, int] = {}
        overhead_left: Dict[int, float] = {}
        now = 0.0
        idx = 0
        n_total = len(pending)
        busy_integral = 0.0
        while len(records) < n_total:
            # Admit arrivals up to now.
            while idx < n_total and pending[idx].submit_time <= now:
                job = pending[idx]
                active.append(job)
                overhead_left[job.job_id] = 0.0
                idx += 1
            if not active:
                now = pending[idx].submit_time
                continue
            alloc = self._allocate(active)
            for job in active:
                if alloc[job.job_id] != prev_alloc.get(job.job_id) and \
                        prev_alloc.get(job.job_id, 0) > 0:
                    overhead_left[job.job_id] = RESCALE_OVERHEAD
            prev_alloc = dict(alloc)
            # Advance one round (or to the next arrival if sooner).
            horizon = now + self.round_interval
            if idx < n_total:
                horizon = min(horizon, pending[idx].submit_time)
            dt = max(1e-9, horizon - now)
            busy_integral += sum(alloc.values()) * dt
            finished: List[Job] = []
            for job in active:
                a = alloc[job.job_id]
                if a == 0:
                    continue
                lag = min(dt, overhead_left[job.job_id])
                overhead_left[job.job_id] -= lag
                productive = dt - lag
                speed = elastic_speedup(a, job.gpu_num)
                if self.adaptive:
                    speed *= ADAPTIVE_SPEEDUP
                job.progress += productive * speed
                job.service_time += productive
                if job.progress >= job.duration - 1e-9:
                    # Interpolate the exact completion instant.
                    overshoot = ((job.progress - job.duration)
                                 / max(speed, 1e-9))
                    job.finish_time = horizon - overshoot
                    job.progress = job.duration
                    finished.append(job)
            for job in finished:
                active.remove(job)
                records.append(JobRecord.from_job(job))
            now = horizon
        busy = busy_integral / (self.n_gpus * max(now, 1e-9))
        return SimulationResult(
            records=records, makespan=now,
            utilization=UtilizationSummary(gpu_busy=min(1.0, busy),
                                           gpu_shared=0.0, memory_used=0.0))

    def decision_latency(self, n_jobs: int) -> float:
        """Model of per-round solver latency as a function of job count.

        Pollux reports ~30 min for a 160-job trace and >3 h for 320 jobs
        (§4.1); its round solve scales super-linearly.  Used only by the
        scalability comparison in Figure 10a.
        """
        return 2e-4 * n_jobs ** 1.8


def validation_accuracy(epochs: int, adaptive: bool,
                        seed: int = 0) -> np.ndarray:
    """Synthetic EfficientNet validation-accuracy curve (Figure 14b).

    Saturating learning curve with small noise; adaptive (large-batch)
    training converges a little faster but to a lower plateau — 87.63% vs
    89.84% best accuracy, the paper's measured gap (G3).
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    rng = np.random.default_rng(seed)
    e = np.arange(1, epochs + 1, dtype=float)
    if adaptive:
        plateau, rate = 87.63, 28.0
    else:
        plateau, rate = 89.84, 35.0
    curve = 35.0 + (plateau - 35.0) * (1.0 - np.exp(-e / rate))
    noise = rng.normal(0.0, 0.35, size=epochs) * np.exp(-e / (epochs / 2))
    return np.minimum(plateau, curve + noise)
