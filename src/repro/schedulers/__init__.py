"""Baseline schedulers evaluated against Lucid."""

from repro.schedulers.base import Scheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.horus import HorusScheduler
from repro.schedulers.pollux import (
    PolluxSimulator,
    elastic_speedup,
    validation_accuracy,
)
from repro.schedulers.qssf import HistoryDurationModel, QSSFScheduler
from repro.schedulers.sjf import SJFScheduler
from repro.schedulers.tiresias import PREEMPTION_OVERHEAD, TiresiasScheduler

__all__ = [
    "Scheduler",
    "FIFOScheduler",
    "SJFScheduler",
    "QSSFScheduler",
    "HistoryDurationModel",
    "TiresiasScheduler",
    "PREEMPTION_OVERHEAD",
    "HorusScheduler",
    "PolluxSimulator",
    "elastic_speedup",
    "validation_accuracy",
]
