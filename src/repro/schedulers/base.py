"""Scheduler base class and shared allocation helpers."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.placement import find_consolidated
from repro.obs.logutil import get_logger
from repro.obs.prof import NULL_SPAN
from repro.workloads.job import Job, JobStatus

logger = get_logger("schedulers")


class Scheduler:
    """Base class for all schedulers driven by the simulation engine.

    Subclasses implement :meth:`schedule` (and optionally the event
    callbacks).  The base maintains the pending queue: submitted jobs are
    appended and placed jobs must be removed by the subclass (the helpers
    here do it for you).

    Every scheduler built on this base gets submit/finish tracing for
    free: the event callbacks emit scheduler-perspective trace events
    (``sched_submit`` with the current queue depth, ``sched_finish``)
    through the engine's tracer.  Subclasses that override a callback
    without calling ``super()`` can emit via :meth:`trace_event`.
    """

    #: Human-readable name used by benchmark tables.
    name = "base"
    #: Seconds between periodic wake-ups, or None for event-driven only.
    tick_interval: Optional[float] = None

    def __init__(self) -> None:
        self.engine = None
        self.queue: List[Job] = []

    # ------------------------------------------------------------------
    # Engine lifecycle
    # ------------------------------------------------------------------
    def attach(self, engine) -> None:
        """Bind to the engine; subclasses may train models here."""
        self.engine = engine
        self.queue = []

    def trace_event(self, kind: str, job: Optional[Job], now: float,
                    **data) -> None:
        """Emit a scheduler-perspective trace event (no-op untraced)."""
        engine = self.engine
        if engine is not None and engine.tracer.enabled:
            engine.tracer.emit(now, kind,
                               job.job_id if job is not None else None,
                               scheduler=self.name, **data)

    def lineage_note(self, job: Job, routed: str) -> None:
        """Annotate the lineage DAG with where ``job`` now waits.

        ``routed`` is ``"profiler"`` / ``"main"`` / ``"main_degraded"``;
        the collector uses it to classify the waiting interval that just
        opened (pending-profiling vs. pending-main-queue).  No-op when
        ``Simulator(lineage=None)``.
        """
        engine = self.engine
        if engine is not None and engine.lineage is not None:
            engine.lineage.note_routing(job.job_id, routed)

    def profile_count(self, name: str, n: int = 1) -> None:
        """Bump a hot-path counter on the engine's profiler (no-op off).

        Schedulers use this to expose invocation counts of their
        expensive inner machinery (binder mate searches, estimator
        predictions, ...) to ``Simulator(profile=...)``.
        """
        engine = self.engine
        if engine is not None and engine.profiler is not None:
            engine.profiler.count(name, n)

    def profile_span(self, name: str):
        """Context manager timing a named pass phase when profiling.

        Returns the shared no-op span when the engine is unprofiled, so
        ``with self.profile_span("lucid.control"):`` costs one attribute
        check on plain runs and never touches simulated state.
        """
        engine = self.engine
        if engine is not None and engine.profiler is not None:
            return engine.profiler.span(name)
        return NULL_SPAN

    def on_job_submit(self, job: Job, now: float) -> None:
        self.queue.append(job)
        self.lineage_note(job, "main")
        self.trace_event("sched_submit", job, now,
                         queue_depth=len(self.queue), routed="main")

    def on_job_finish(self, job: Job, now: float) -> None:
        self.trace_event("sched_finish", job, now,
                         queue_depth=len(self.queue))

    def on_time_limit(self, job: Job, now: float) -> None:
        pass

    def on_job_failed(self, job: Job, now: float,
                      permanent: bool = False) -> None:
        """A fault killed this job (see :mod:`repro.faults`).

        Non-permanent failures arrive after the job's retry backoff
        expired, ready to requeue; permanent ones are terminal — the
        engine has already recorded the job as FAILED, the scheduler
        just drops it.
        """
        if permanent:
            self.trace_event("sched_failed", job, now,
                             queue_depth=len(self.queue))
            return
        self.queue.append(job)
        self.lineage_note(job, "main")
        self.trace_event("sched_retry", job, now,
                         queue_depth=len(self.queue), routed="main")

    def schedule(self, now: float) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def try_place_exclusive(self, job: Job, overhead: float = 0.0) -> bool:
        """Consolidated exclusive placement inside the job's VC."""
        gpus = find_consolidated(self.engine.cluster, job.gpu_num, vc=job.vc)
        if gpus is None:
            return False
        self.engine.start_job(job, gpus, overhead=overhead)
        return True

    def place_in_order(self, ordered: List[Job], strict: bool = False) -> None:
        """Try to start queued jobs in the given order.

        ``strict=True`` stops at the first job that does not fit (FIFO
        head-of-line semantics); otherwise unplaceable jobs are skipped,
        which is the greedy loop of the paper's Algorithm 2.
        """
        for job in ordered:
            placed = self.try_place_exclusive(job)
            if placed:
                self.queue.remove(job)
            elif strict:
                break
