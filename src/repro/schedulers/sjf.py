"""Shortest-Job-First oracle scheduler.

SJF is the paper's idealized non-preemptive baseline: it sorts the queue
by the *ground-truth* remaining duration, which no deployable system can
know.  It upper-bounds what duration-ordering alone can achieve and is the
reference point that QSSF and Lucid's estimator approximate.
"""

from __future__ import annotations

from repro.schedulers.base import Scheduler


class SJFScheduler(Scheduler):
    """Non-preemptive shortest-job-first with perfect duration knowledge."""

    name = "sjf"

    def schedule(self, now: float) -> None:
        ordered = sorted(self.queue,
                         key=lambda j: (j.remaining, j.submit_time, j.job_id))
        self.place_in_order(ordered)
