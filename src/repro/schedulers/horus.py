"""Horus: intrusive prediction-based packing scheduler [TPDS'22].

Horus converts user models into ONNX graphs (user-code intrusion) to
predict per-job GPU utilization, then colocates jobs whose combined
predicted utilization stays under a target.  We model its intrusive
predictor as the ground-truth profile plus small noise — strictly more
information than Lucid's non-intrusive profiler gets — but Horus lacks a
profiling stage, duration awareness and a dynamic strategy, which is why
Table 4 places it between SJF and Tiresias (and behind SJF on Philly).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.placement import find_shared
from repro.schedulers.base import Scheduler
from repro.workloads.job import Job, JobStatus


class HorusScheduler(Scheduler):
    """Utilization-predicted greedy packing over FIFO-with-skip ordering.

    Parameters
    ----------
    util_target:
        Maximum combined predicted GPU utilization for a packed pair.
    prediction_noise:
        Relative noise of the intrusive utilization predictor.
    """

    name = "horus"

    def __init__(self, history=None, util_target: float = 100.0,
                 prediction_noise: float = 0.05,
                 random_state: int = 0) -> None:
        super().__init__()
        if util_target <= 0:
            raise ValueError("util_target must be positive")
        self.util_target = util_target
        self.prediction_noise = prediction_noise
        self._history = list(history) if history else []
        self._duration_model = None
        self._rng = np.random.default_rng(random_state)
        self._predicted: dict = {}

    def attach(self, engine) -> None:
        super().attach(engine)
        self._predicted = {}

    def _predicted_util(self, job: Job) -> float:
        cached = self._predicted.get(job.job_id)
        if cached is None:
            noisy = job.profile.gpu_util * self._rng.normal(
                1.0, self.prediction_noise)
            cached = float(np.clip(noisy, 1.0, 100.0))
            self._predicted[job.job_id] = cached
        return cached

    def _find_pack_target(self, job: Job) -> Optional[Job]:
        """Best-fit running mate: same GPU count, single node, util fits."""
        if job.gpu_num > self.engine.cluster.gpus_per_node:
            return None
        job_util = self._predicted_util(job)
        best: Optional[Job] = None
        best_combined = -1.0
        for mate in self.engine.running_jobs():
            if (mate.gpu_num != job.gpu_num
                    or mate.gpu_num > self.engine.cluster.gpus_per_node
                    or mate.vc != job.vc
                    or mate.status is not JobStatus.RUNNING
                    or self.engine.has_mates(mate)):
                continue
            combined = job_util + self._predicted_util(mate)
            if combined > self.util_target:
                continue
            gpus = find_shared(self.engine.cluster, self.engine.gpus_of(mate),
                               job.profile.gpu_mem_mb)
            if gpus is None:
                continue
            if combined > best_combined:  # best fit = densest packing
                best_combined = combined
                best = mate
        return best

    def _order_key(self, job: Job):
        # Horus predicts resource usage, not runtime: its queue order is
        # runtime-agnostic (arrival order with skip), which is why the
        # duration-aware schedulers out-order it.
        return (job.submit_time, job.job_id)

    def schedule(self, now: float) -> None:
        # Horus packs eagerly: colocation is attempted *before* exclusive
        # placement to drive utilization up, without Lucid's indolent
        # interference caution — the design difference that costs it under
        # contention-heavy traces like Philly (Table 4).
        for job in sorted(self.queue, key=self._order_key):
            mate = self._find_pack_target(job)
            if mate is not None:
                self.engine.start_job(job, self.engine.gpus_of(mate))
                self.queue.remove(job)
            elif self.try_place_exclusive(job):
                self.queue.remove(job)
