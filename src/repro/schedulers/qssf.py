"""Quasi-Shortest-Service-First (QSSF) scheduler [Helios, SC'21].

QSSF prioritizes jobs by *predicted service* = predicted duration x GPU
demand, with the prediction produced by a black-box gradient-boosting model
(Helios uses LightGBM) trained on historical submissions.  It is the
state-of-the-art non-intrusive baseline the paper compares Lucid against;
unlike Lucid it has no profiler, no packing and no interpretability.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.boosting import lightgbm_like
from repro.models.encoding import LabelEncoder, time_features
from repro.schedulers.base import Scheduler
from repro.workloads.job import Job


class HistoryDurationModel:
    """Black-box GBDT duration predictor from submission metadata.

    Trains on ``log(duration)`` of historical jobs using only
    submission-time features (user, job-name hash bucket, GPU demand,
    calendar attributes) — the information QSSF has without any profiling.
    """

    N_NAME_BUCKETS = 64

    def __init__(self, random_state: int = 0) -> None:
        self._user_encoder = LabelEncoder()
        self._model = lightgbm_like(random_state=random_state)
        self._fallback = 3600.0
        self._template_means: Dict[Tuple[str, str], float] = {}

    @staticmethod
    def _name_bucket(name: str) -> float:
        # Strip trailing run counters so re-runs of a template collide.
        stem = name.rstrip("0123456789")
        return float(hash(stem) % HistoryDurationModel.N_NAME_BUCKETS)

    def _features(self, jobs: Sequence[Job]) -> np.ndarray:
        users = self._user_encoder.transform([j.user for j in jobs])
        cal = time_features([j.submit_time for j in jobs])
        return np.column_stack([
            users,
            [self._name_bucket(j.name) for j in jobs],
            [float(j.gpu_num) for j in jobs],
            cal["hour"],
            cal["dayofweek"],
        ])

    def fit(self, history: Sequence[Job]) -> "HistoryDurationModel":
        if not history:
            raise ValueError("history must be non-empty")
        self._user_encoder.fit([j.user for j in history])
        X = self._features(history)
        y = np.log(np.array([j.duration for j in history]))
        self._model.fit(X, y)
        self._fallback = float(np.mean([j.duration for j in history]))
        # Helios explicitly exploits recurrence: repeated (user, name)
        # submissions predict from their own history.
        groups: Dict[Tuple[str, str], List[float]] = {}
        for job in history:
            groups.setdefault((job.user, job.name), []).append(job.duration)
        self._template_means = {k: float(np.mean(v[-8:]))
                                for k, v in sorted(groups.items())}
        return self

    def predict(self, job: Job) -> float:
        template = self._template_means.get((job.user, job.name))
        model_pred = float(np.exp(self._model.predict(self._features([job]))[0]))
        if template is not None:
            return 0.7 * template + 0.3 * model_pred
        return model_pred


class QSSFScheduler(Scheduler):
    """Predicted-service-first ordering over a consolidated allocator."""

    name = "qssf"

    def __init__(self, history: Sequence[Job], random_state: int = 0) -> None:
        super().__init__()
        self._history = list(history)
        self._random_state = random_state
        self._model: Optional[HistoryDurationModel] = None

    def attach(self, engine) -> None:
        super().attach(engine)
        self._model = HistoryDurationModel(self._random_state).fit(self._history)

    def on_job_submit(self, job: Job, now: float) -> None:
        super().on_job_submit(job, now)
        job.estimated_duration = self._model.predict(job)
        job.priority = job.estimated_duration * job.gpu_num

    def schedule(self, now: float) -> None:
        ordered = sorted(self.queue,
                         key=lambda j: (j.priority, j.submit_time, j.job_id))
        self.place_in_order(ordered)
