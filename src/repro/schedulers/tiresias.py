"""Tiresias: discretized two-queue Least-Attained-Service [NSDI'19].

Tiresias is the paper's strongest intrusive baseline: a preemptive policy
that prioritizes jobs with the least attained GPU service, demoting jobs
to a lower-priority queue once their consumed GPU-seconds cross a
threshold.  Preemption requires user-code checkpointing; the paper reports
an average checkpoint-resume cost of 62 s per preemption, which this
implementation charges as non-productive occupancy on every resume (it
surfaces as queuing delay, matching §4.8's "additional 13% queuing
overhead").
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.schedulers.base import Scheduler
from repro.workloads.job import Job, JobStatus

#: Checkpoint + cold-start cost charged on every resume (paper §4.8).
PREEMPTION_OVERHEAD = 62.0


class TiresiasScheduler(Scheduler):
    """Discretized 2-queue LAS with round-based preemptive reshuffles.

    Parameters
    ----------
    queue_threshold:
        Attained service (GPU-seconds) above which a job is demoted to the
        low-priority queue.
    round_interval:
        Seconds between full preemptive reshuffles; between rounds, free
        GPUs are filled without preemption.
    """

    name = "tiresias"

    def __init__(self, queue_threshold: float = 6 * 3600.0,
                 round_interval: float = 450.0) -> None:
        super().__init__()
        if queue_threshold <= 0 or round_interval <= 0:
            raise ValueError("thresholds must be positive")
        self.queue_threshold = queue_threshold
        self.round_interval = round_interval
        self.tick_interval = round_interval
        self._next_round = 0.0

    # ------------------------------------------------------------------
    def _attained_service(self, job: Job, now: float) -> float:
        """GPU-seconds of service, including the in-flight run segment."""
        service = job.service_time
        state = self.engine.run_states.get(job.job_id)
        if state is not None:
            service += max(0.0, now - state.last_update - state.overhead_left)
        return service * job.gpu_num

    def _queue_index(self, job: Job, now: float) -> int:
        return 0 if self._attained_service(job, now) < self.queue_threshold else 1

    def _priority_order(self, jobs: List[Job], now: float) -> List[Job]:
        return sorted(jobs, key=lambda j: (self._queue_index(j, now),
                                           j.submit_time, j.job_id))

    def _resume_overhead(self, job: Job) -> float:
        return PREEMPTION_OVERHEAD if job.preemptions > 0 else 0.0

    # ------------------------------------------------------------------
    def schedule(self, now: float) -> None:
        if now >= self._next_round:
            self._reshuffle(now)
            self._next_round = now + self.round_interval
        else:
            self._fill_free(now)

    def _fill_free(self, now: float) -> None:
        """Start pending jobs on free GPUs without preempting anyone."""
        for job in self._priority_order(list(self.queue), now):
            if self.try_place_exclusive(job, overhead=self._resume_overhead(job)):
                self.queue.remove(job)

    def _reshuffle(self, now: float) -> None:
        """Full preemptive reallocation in LAS priority order."""
        running = list(self.engine.running_jobs())
        candidates = self._priority_order(running + list(self.queue), now)

        # Greedily pick the target running set within each VC's capacity.
        capacity: Dict[str, int] = {
            name: vc.n_gpus
            for name, vc in sorted(self.engine.cluster.vcs.items())}
        target: Set[int] = set()
        for job in candidates:
            if capacity.get(job.vc, 0) >= job.gpu_num:
                capacity[job.vc] -= job.gpu_num
                target.add(job.job_id)

        for job in running:
            if job.job_id not in target:
                self.engine.stop_job(job, preempted=True)
                self.queue.append(job)

        for job in self._priority_order(list(self.queue), now):
            if job.job_id not in target:
                continue
            if self.try_place_exclusive(job, overhead=self._resume_overhead(job)):
                self.queue.remove(job)
