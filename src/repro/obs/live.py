"""Live telemetry plane: labeled metric families + Prometheus exposition.

The offline :class:`~repro.obs.metrics.MetricsRegistry` serves one-shot
simulation runs; a long-running ``repro serve`` daemon needs the
service-monitoring shape instead — *labeled* series (HTTP latency by
route and status, WAL appends by kind), *bounded* histograms (a daemon
must not grow memory with uptime), and a wire format scrapers already
speak.  :class:`LiveRegistry` provides exactly that on top of the same
primitives:

* :meth:`LiveRegistry.counter` / :meth:`~LiveRegistry.gauge` /
  :meth:`~LiveRegistry.histogram` — get-or-create, optionally with a
  ``labels`` mapping; every ``(name, label-values)`` pair owns one child
  metric (:class:`~repro.obs.metrics.Counter`,
  :class:`~repro.obs.metrics.Gauge`,
  :class:`~repro.obs.metrics.BucketHistogram`).
* :meth:`LiveRegistry.render_prometheus` — the Prometheus text format
  (``text/plain; version=0.0.4``): ``# HELP`` / ``# TYPE`` headers,
  escaped label values, cumulative ``_bucket{le=...}`` rows ending at
  ``+Inf``, plus ``_sum`` / ``_count``.
* :meth:`LiveRegistry.render_json` — the same families as one JSON
  document (the daemon's legacy ``/metrics`` JSON keeps its own shape;
  this powers the dashboard's polling).
* :func:`publish_profiler` — mirrors :class:`~repro.obs.prof.SimProfiler`
  span summaries (p50/p95/max per span) into the registry so benchmarks
  and the daemon report through one pipeline.
* :func:`render_dashboard` — a self-contained zero-dependency HTML page
  (inline CSS + SVG reused from :mod:`repro.obs.report`, a dash of
  vanilla JS) that polls ``/metrics`` and keeps the value tables live.

Concurrency: family/child creation and rendering are lock-protected;
child mutation (``inc`` / ``set`` / ``observe``) relies on the GIL, so a
render taken mid-update is a weakly consistent snapshot — fine for a
stats plane, and no hot-path lock contention.

This module never reads the wall clock itself — callers time their own
edges (keeping the RPR002/RPR112 instrumentation story in one place,
:mod:`repro.obs.prof` and the serve layer).
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import BucketHistogram, Counter, Gauge
from repro.obs.prof import SimProfiler
from repro.obs.report import _CSS, _esc, _svg_line_chart

__all__ = [
    "CONTENT_TYPE_PROMETHEUS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "LiveRegistry",
    "publish_profiler",
    "render_dashboard",
    "render_json_text",
]

#: The content type Prometheus scrapers expect from a text exposition.
CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

#: Upper bucket bounds (seconds) for service latency edges: 100 µs up
#: to 30 s, roughly 3 buckets per decade.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

#: Upper bucket bounds for small cardinalities (batch sizes, counts).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Per-gauge time-series bound: live gauges keep this many samples for
#: the dashboard charts, so registry memory never grows with uptime.
GAUGE_HISTORY = 512

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """``# HELP`` escaping: backslash and newline only (no quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Exposition number: integral floats without the trailing ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_body(labelnames: Tuple[str, ...],
                labelvalues: Tuple[str, ...],
                extra: Optional[Tuple[str, str]] = None) -> str:
    """``{a="x",b="y"}`` or the empty string for label-free series."""
    pairs = list(zip(labelnames, labelvalues))
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"'
                    for name, value in pairs)
    return "{" + body + "}"


class _Family:
    """One named metric family: fixed type/help/labelnames, N children."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets",
                 "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: Tuple[str, ...],
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        self.children: Dict[Tuple[str, ...], Any] = {}


class LiveRegistry:
    """Thread-safe registry of labeled counter/gauge/histogram families.

    ``namespace`` is prefixed onto every metric name (Prometheus
    convention: one namespace per application), so callers register
    short names like ``serve_ticks_total``.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- family/child plumbing -----------------------------------------
    def _full_name(self, name: str) -> str:
        full = f"{self.namespace}_{name}" if self.namespace else name
        if not _METRIC_NAME_RE.match(full):
            raise ValueError(f"invalid metric name {full!r}")
        return full

    def _child(self, name: str, kind: str, help_text: str,
               labels: Optional[Mapping[str, str]],
               buckets: Optional[Tuple[float, ...]] = None) -> Any:
        full = self._full_name(name)
        labelitems = sorted((labels or {}).items())  # repro: noqa RPR121 — canonical label order; label dicts hold <= 2 keys
        labelnames = tuple(key for key, _ in labelitems)
        labelvalues = tuple(str(value) for _, value in labelitems)
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(full)
            if family is None:
                family = _Family(full, kind, help_text, labelnames,
                                 buckets)
                self._families[full] = family
            else:
                if family.kind != kind:
                    raise ValueError(
                        f"metric {full!r} is a {family.kind}, not a "
                        f"{kind}")
                if family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {full!r} has labels "
                        f"{family.labelnames}, not {labelnames}")
                if help_text and not family.help:
                    family.help = help_text
            child = family.children.get(labelvalues)
            if child is None:
                if kind == "counter":
                    child = Counter(full)
                elif kind == "gauge":
                    child = Gauge(full, max_samples=GAUGE_HISTORY)
                else:
                    child = BucketHistogram(
                        full, buckets or DEFAULT_LATENCY_BUCKETS)
                family.children[labelvalues] = child
            return child

    # -- public get-or-create API --------------------------------------
    def counter(self, name: str, help_text: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        child = self._child(name, "counter", help_text, labels)
        assert isinstance(child, Counter)
        return child

    def gauge(self, name: str, help_text: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        child = self._child(name, "gauge", help_text, labels)
        assert isinstance(child, Gauge)
        return child

    def histogram(self, name: str, help_text: str = "",
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
                  ) -> BucketHistogram:
        child = self._child(name, "histogram", help_text, labels,
                            buckets=buckets)
        assert isinstance(child, BucketHistogram)
        return child

    # -- rendering ------------------------------------------------------
    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for full, family in families:
            if family.help:
                lines.append(f"# HELP {full} "
                             f"{_escape_help(family.help)}")
            lines.append(f"# TYPE {full} {family.kind}")
            for labelvalues in sorted(family.children):
                child = family.children[labelvalues]
                labels = _label_body(family.labelnames, labelvalues)
                if family.kind == "counter":
                    lines.append(
                        f"{full}{labels} "
                        f"{_format_value(child.value)}")
                elif family.kind == "gauge":
                    value = child.value if child.value is not None else 0.0
                    lines.append(
                        f"{full}{labels} {_format_value(value)}")
                else:
                    for bound, cum in child.cumulative():
                        le = "+Inf" if math.isinf(bound) \
                            else _format_value(bound)
                        body = _label_body(family.labelnames,
                                           labelvalues, ("le", le))
                        lines.append(f"{full}_bucket{body} {cum}")
                    lines.append(f"{full}_sum{labels} "
                                 f"{_format_value(child.total)}")
                    lines.append(f"{full}_count{labels} {child.count}")
        return "\n".join(lines) + "\n" if lines else ""

    def render_json(self) -> Dict[str, Any]:
        """The registry as one JSON document (dashboard polling shape)."""
        out: List[Dict[str, Any]] = []
        with self._lock:
            families = sorted(self._families.items())
        for full, family in families:
            samples: List[Dict[str, Any]] = []
            for labelvalues in sorted(family.children):
                child = family.children[labelvalues]
                labels = dict(zip(family.labelnames, labelvalues))
                if family.kind == "counter":
                    samples.append({"labels": labels,
                                    "value": child.value})
                elif family.kind == "gauge":
                    samples.append({"labels": labels,
                                    "value": child.value,
                                    "series": [[t, v] for t, v
                                               in child.samples]})
                else:
                    samples.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.total,
                        "buckets": [[bound, cum] for bound, cum
                                    in child.cumulative()],
                        "summary": child.summary(),
                    })
            out.append({"name": full, "type": family.kind,
                        "help": family.help, "samples": samples})
        return {"families": out}


def publish_profiler(registry: LiveRegistry, profiler: SimProfiler,
                     ) -> None:
    """Mirror a :class:`SimProfiler`'s accumulated state into gauges.

    Idempotent re-publication: totals are *set* (not incremented), so
    calling this on every refresh interval never double-counts.  Span
    distributions ride in as p50/p95/max gauges from the profiler's
    bounded reservoirs — the exact numbers ``repro bench`` reports, so
    the daemon and the bench harness share one measurement pipeline.
    """
    registry.gauge("sim_events_processed",
                   "Simulator events dispatched since boot"
                   ).set(float(profiler.events_processed))
    registry.gauge("sim_wall_seconds",
                   "Wall seconds spent inside simulator runs"
                   ).set(profiler.wall_seconds)
    passes = profiler.pass_summary()
    registry.gauge("sim_schedule_pass_seconds_total",
                   "Cumulative scheduler pass wall seconds"
                   ).set(passes["seconds"])
    registry.gauge("sim_schedule_passes",
                   "Scheduler passes executed"
                   ).set(passes["count"])
    for stat in ("p50", "p95", "max"):
        registry.gauge(f"sim_schedule_pass_{stat}_seconds",
                       f"Per-pass {stat} wall seconds "
                       "(bounded reservoir)").set(passes[stat])
    for name, summary in profiler.span_summary().items():
        labels = {"span": name}
        registry.gauge("sim_span_seconds_total",
                       "Cumulative wall seconds per profiler span",
                       labels).set(summary["seconds"])
        registry.gauge("sim_span_calls",
                       "Invocations per profiler span",
                       labels).set(summary["count"])
        for stat in ("p50", "p95", "max"):
            registry.gauge(f"sim_span_{stat}_seconds",
                           f"Per-call {stat} wall seconds per span "
                           "(bounded reservoir)",
                           labels).set(summary[stat])
    for name, value in profiler.counters.items():
        registry.gauge("sim_hotpath_calls",
                       "Hot-path invocation counters",
                       {"counter": name}).set(float(value))


# ----------------------------------------------------------------------
# The live dashboard
# ----------------------------------------------------------------------

_DASH_JS = """
'use strict';
var POLL_MS = __POLL_MS__;
function fmt(v) {
  if (v === null || v === undefined) return '-';
  if (typeof v !== 'number') return String(v);
  if (!isFinite(v)) return String(v);
  if (Math.abs(v) >= 1000) return Math.round(v).toLocaleString('en-US');
  if (Number.isInteger(v)) return String(v);
  return v.toPrecision(4);
}
function seriesKey(s) {
  var parts = [];
  Object.keys(s.labels).sort().forEach(function (k) {
    parts.push(k + '=' + s.labels[k]);
  });
  return parts.join(',');
}
function render(doc) {
  var rows = [];
  var dropped = 0;
  doc.families.forEach(function (fam) {
    if (fam.name.indexOf('tracer_dropped_events_total') !== -1) {
      fam.samples.forEach(function (s) { dropped += s.value || 0; });
    }
    fam.samples.forEach(function (s) {
      var key = seriesKey(s);
      var label = fam.name + (key ? '{' + key + '}' : '');
      if (fam.type === 'histogram') {
        rows.push([label, 'count=' + fmt(s.count)
                   + ' sum=' + fmt(s.sum)
                   + ' p50=' + fmt(s.summary.p50)
                   + ' p95=' + fmt(s.summary.p95)]);
      } else {
        rows.push([label, fmt(s.value)]);
      }
    });
  });
  var banner = document.getElementById('dropped-banner');
  if (banner) {
    if (dropped > 0) {
      banner.style.display = '';
      banner.textContent = 'warning: ' + fmt(dropped)
        + ' trace events dropped (ring-buffer overflow) — the event'
        + ' log and any lineage built from it are incomplete';
    } else {
      banner.style.display = 'none';
    }
  }
  var body = document.getElementById('metric-rows');
  body.textContent = '';
  rows.forEach(function (row) {
    var tr = document.createElement('tr');
    var name = document.createElement('td');
    var code = document.createElement('code');
    code.textContent = row[0];
    name.appendChild(code);
    var value = document.createElement('td');
    value.className = 'num';
    value.textContent = row[1];
    tr.appendChild(name);
    tr.appendChild(value);
    body.appendChild(tr);
  });
}
function poll() {
  fetch('/metrics?format=live', {headers: {Accept: 'application/json'}})
    .then(function (resp) {
      if (!resp.ok) throw new Error('scrape failed: ' + resp.status);
      return resp.json();
    })
    .then(function (doc) {
      render(doc);
      document.getElementById('scrape-state').textContent =
        'live \\u00b7 last scrape ' + new Date().toLocaleTimeString();
      document.getElementById('scrape-state').className = 'ok';
    })
    .catch(function (err) {
      document.getElementById('scrape-state').textContent =
        'scrape error: ' + err.message;
      document.getElementById('scrape-state').className = 'warn';
    });
}
window.addEventListener('load', function () {
  poll();
  window.setInterval(poll, POLL_MS);
});
"""


def _gauge_charts(registry: LiveRegistry) -> str:
    """Server-rendered SVG history for every gauge that kept samples."""
    doc = registry.render_json()
    charts: List[str] = []
    for family in doc["families"]:
        if family["type"] != "gauge":
            continue
        series: List[Tuple[str, List[Tuple[float, float]]]] = []
        for sample in family["samples"]:
            points = [(float(t), float(v))
                      for t, v in sample.get("series", [])]
            if len(points) >= 2:
                key = ",".join(f"{k}={v}" for k, v
                               in sorted(sample["labels"].items()))
                series.append((key or family["name"], points))
        if series:
            charts.append(f"<h2>{_esc(family['name'])}</h2>")
            if family["help"]:
                charts.append(
                    f"<p class=\"meta\">{_esc(family['help'])}</p>")
            charts.append(_svg_line_chart(series, y_label="value"))
    if not charts:
        return ("<p class=\"meta\">no gauge history yet — charts appear "
                "after a few service ticks (reload to refresh)</p>")
    return "".join(charts)


def render_dashboard(registry: LiveRegistry, title: str = "repro serve",
                     poll_seconds: float = 2.0) -> str:
    """One self-contained HTML page: live values + gauge history charts.

    Zero external assets: inline CSS (shared with ``repro report``),
    inline SVG charts rendered server-side from gauge time series, and
    a vanilla-JS poller that refreshes the current-values table from
    ``/metrics`` (JSON shape) every ``poll_seconds``.  Charts show the
    history up to page load; reload for fresh charts.
    """
    script = _DASH_JS.replace("__POLL_MS__",
                              str(int(poll_seconds * 1000)))
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{_esc(title)} dashboard</title>
<style>{_CSS}</style>
</head>
<body>
<h1>{_esc(title)} — live telemetry</h1>
<p class="meta">Polling <code>/metrics</code> every
{poll_seconds:g}s · <span id="scrape-state">connecting…</span></p>
<p id="dropped-banner" class="warn" style="display:none"></p>
<h2>Current values</h2>
<table>
<thead><tr><th>series</th><th>value</th></tr></thead>
<tbody id="metric-rows">
<tr><td class="meta" colspan="2">waiting for first scrape…</td></tr>
</tbody>
</table>
{_gauge_charts(registry)}
<p class="meta">Prometheus text exposition:
<code>curl -H 'Accept: text/plain' /metrics</code></p>
<script>{script}</script>
</body>
</html>
"""


def render_json_text(registry: LiveRegistry) -> str:
    """``render_json`` as a stable, newline-terminated JSON string."""
    return json.dumps(registry.render_json(), sort_keys=True) + "\n"
