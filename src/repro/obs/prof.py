"""Simulator self-profiling: where does simulator wall time go?

The ROADMAP's north star is a simulator that runs "as fast as the
hardware allows" — which is only a meaningful goal once the simulator can
measure *itself*.  :class:`SimProfiler` is that instrument: attached via
``Simulator(profile=...)`` it accumulates wall time per dispatched event
kind and per scheduler pass, counts hot-path invocations (binder mate
searches, speed refreshes, estimator predictions, sanitizer sweeps),
and derives throughput (dispatched events per wall second) plus the
process peak RSS.  The ``repro bench`` harness (:mod:`repro.bench`)
builds its ``BENCH_*.json`` trajectory on these numbers.

The contract mirrors the tracer's and the sanitizer's:

* **Zero overhead when disabled.**  The engine holds ``profiler = None``
  by default and every hook site is guarded by an identity check, so an
  unprofiled run executes the seed instruction stream and produces a
  bit-identical :class:`~repro.sim.metrics.SimulationResult`.
* **No behavioural feedback.**  The profiler reads the wall clock and
  ``/proc`` accounting only; nothing it measures ever reaches simulated
  time, job state or scheduler decisions — a profiled run is therefore
  also bit-identical to a plain one (guarded by regression test).

Wall-clock reads live in this module by design: it is the RPR002
instrumentation allowlist's anchor (see :mod:`repro.checks.lint`), which
keeps ``time.perf_counter`` out of simulation packages without per-line
``# repro: noqa`` escapes.
"""

from __future__ import annotations

import json
import math
import sys
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

try:  # POSIX-only; the profiler degrades to RSS=None elsewhere.
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platform
    _resource = None  # type: ignore[assignment]

__all__ = [
    "NULL_SPAN",
    "RESERVOIR_SIZE",
    "SimProfiler",
    "peak_rss_mb",
]


def peak_rss_mb() -> Optional[float]:
    """Process peak resident-set size in MiB, or ``None`` if unknown.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; both are
    normalized to MiB so bench files compare across platforms.
    """
    if _resource is None:  # pragma: no cover - non-POSIX platform
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


class _Span:
    """Context manager accumulating one named code span's wall time."""

    __slots__ = ("_profiler", "_name", "_started")

    def __init__(self, profiler: "SimProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._profiler.add_span(self._name,
                                time.perf_counter() - self._started)


class _NullSpan:
    """Shared no-op span used when profiling is off (zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


#: Singleton no-op span; ``Scheduler.profile_span`` returns it unprofiled.
NULL_SPAN = _NullSpan()

#: Per-span sample reservoir size: enough for stable p95s, bounded so a
#: long-running daemon's profiler never grows with uptime.  The deque
#: keeps the *most recent* samples, which is what a live dashboard wants.
RESERVOIR_SIZE = 2048


def _reservoir_percentile(samples: List[float], pct: float) -> float:
    """Nearest-rank percentile over a sorted copy; 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)  # repro: noqa RPR121 — percentiles need order; runs per telemetry refresh, not per event
    rank = max(0, min(len(ordered) - 1,
                      int(math.ceil(pct / 100.0 * len(ordered))) - 1))
    return ordered[rank]


class SimProfiler:
    """Accumulates self-measurements of one (or more) simulation runs.

    The engine drives the fast-path hooks:

    * :meth:`enter` / :meth:`exit_event` bracket each event dispatch and
      bill the elapsed wall time to the event's kind.
    * :meth:`add_pass` records one scheduler ``schedule()`` pass (the
      engine reads the clock itself there to share the read with the
      tracing metrics).
    * :meth:`count` bumps a named hot-path counter (``binder_attempts``,
      ``speed_refreshes``, ``estimator_predictions``,
      ``sanitizer_sweeps``, ...).
    * :meth:`span` times named sub-phases (Lucid's control plane,
      profiler allocation, orchestrator pass, ...).

    :meth:`report` renders a text summary; :meth:`to_dict` /
    :meth:`report_json` produce the machine-readable form embedded in
    ``BENCH_*.json`` files.
    """

    def __init__(self) -> None:
        #: Wall seconds per dispatched event kind (EventKind.value keys).
        self.event_seconds: Dict[str, float] = {}
        #: Dispatch counts per event kind.
        self.event_counts: Dict[str, int] = {}
        #: Total wall seconds across scheduler ``schedule()`` passes.
        self.pass_seconds = 0.0
        #: Number of scheduler passes.
        self.pass_count = 0
        #: Named sub-phase wall seconds (from :meth:`span`).
        self.span_seconds: Dict[str, float] = {}
        self.span_counts: Dict[str, int] = {}
        #: Bounded per-span sample reservoirs (most recent
        #: ``RESERVOIR_SIZE`` observations) backing :meth:`span_summary`.
        self.span_samples: Dict[str, Deque[float]] = {}
        #: Same reservoir for scheduler passes.
        self.pass_samples: Deque[float] = deque(maxlen=RESERVOIR_SIZE)
        #: Hot-path invocation counters.
        self.counters: Dict[str, int] = {}
        #: Whole-run accounting (set by the engine around ``run()``).
        self.wall_seconds = 0.0
        self.events_processed = 0
        self.sim_seconds = 0.0
        self.peak_rss: Optional[float] = None
        self._stack: List[float] = []
        self._run_started: Optional[float] = None

    # ------------------------------------------------------------------
    # Engine hooks (hot path)
    # ------------------------------------------------------------------
    def enter(self) -> None:
        """Open a timing bracket (event dispatch about to run)."""
        self._stack.append(time.perf_counter())

    def exit_event(self, kind: str) -> None:
        """Close the innermost bracket, billing it to event ``kind``."""
        elapsed = time.perf_counter() - self._stack.pop()
        self.event_seconds[kind] = self.event_seconds.get(kind, 0.0) + elapsed
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1

    def add_pass(self, seconds: float) -> None:
        """Record one scheduler pass of ``seconds`` wall time."""
        self.pass_seconds += seconds
        self.pass_count += 1
        self.pass_samples.append(seconds)

    def add_span(self, name: str, seconds: float) -> None:
        self.span_seconds[name] = self.span_seconds.get(name, 0.0) + seconds
        self.span_counts[name] = self.span_counts.get(name, 0) + 1
        reservoir = self.span_samples.get(name)
        if reservoir is None:
            reservoir = self.span_samples[name] = \
                deque(maxlen=RESERVOIR_SIZE)
        reservoir.append(seconds)

    def span(self, name: str) -> _Span:
        """Context manager timing a named sub-phase."""
        return _Span(self, name)

    def count(self, name: str, n: int = 1) -> None:
        """Bump a hot-path invocation counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def start_run(self) -> None:
        self._run_started = time.perf_counter()

    def finish_run(self, events_processed: int, sim_seconds: float) -> None:
        if self._run_started is not None:
            self.wall_seconds += time.perf_counter() - self._run_started
            self._run_started = None
        self.events_processed += events_processed
        self.sim_seconds += sim_seconds
        self.peak_rss = peak_rss_mb()

    # ------------------------------------------------------------------
    # Derived numbers
    # ------------------------------------------------------------------
    @property
    def events_per_sec(self) -> float:
        """Dispatched simulator events per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_seconds

    @property
    def sim_speedup(self) -> float:
        """Simulated seconds replayed per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.sim_seconds / self.wall_seconds

    def span_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span distribution summary from the bounded reservoirs.

        Keys: ``count`` / ``seconds`` are lifetime totals; ``p50`` /
        ``p95`` / ``max`` describe the last ``RESERVOIR_SIZE``
        observations (per-call seconds).  This is the payload
        :func:`repro.obs.live.publish_profiler` mirrors into the live
        registry and ``repro bench`` embeds in span rows — one
        measurement pipeline for both.
        """
        out: Dict[str, Dict[str, float]] = {}
        for name, total in self.span_seconds.items():
            samples = list(self.span_samples.get(name, ()))
            out[name] = {
                "count": float(self.span_counts.get(name, 0)),
                "seconds": total,
                "p50": _reservoir_percentile(samples, 50),
                "p95": _reservoir_percentile(samples, 95),
                "max": max(samples) if samples else 0.0,
            }
        return out

    def pass_summary(self) -> Dict[str, float]:
        """Scheduler-pass distribution (same shape as one span row)."""
        samples = list(self.pass_samples)
        return {
            "count": float(self.pass_count),
            "seconds": self.pass_seconds,
            "p50": _reservoir_percentile(samples, 50),
            "p95": _reservoir_percentile(samples, 95),
            "max": max(samples) if samples else 0.0,
        }

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (the per-phase payload of bench files)."""
        return {
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "sim_speedup": self.sim_speedup,
            "events_processed": self.events_processed,
            "events_per_sec": self.events_per_sec,
            "peak_rss_mb": self.peak_rss,
            "event_kinds": {
                kind: {"count": self.event_counts.get(kind, 0),
                       "seconds": seconds}
                for kind, seconds in sorted(self.event_seconds.items())  # repro: noqa RPR121 — canonical report ordering
            },
            "schedule_passes": {"count": self.pass_count,
                                "seconds": self.pass_seconds},
            "spans": {
                name: dict(summary,
                           count=self.span_counts.get(name, 0))
                for name, summary in sorted(self.span_summary().items())  # repro: noqa RPR121 — canonical report ordering
            },
            "counters": dict(sorted(self.counters.items())),  # repro: noqa RPR121 — canonical report ordering
        }

    def report_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def report(self) -> str:
        """Human-readable profile: the answer to "where did time go?"."""
        lines = [
            "simulator profile",
            f"  wall time        {self.wall_seconds:.3f} s",
            f"  simulated time   {self.sim_seconds:.0f} s "
            f"({self.sim_speedup:,.0f}x real time)",
            f"  events           {self.events_processed} "
            f"({self.events_per_sec:,.0f} events/s)",
        ]
        if self.peak_rss is not None:
            lines.append(f"  peak RSS         {self.peak_rss:.1f} MiB")
        if self.event_seconds:
            lines.append("  per event kind:")
            ordered = sorted(self.event_seconds.items(),
                             key=lambda kv: (-kv[1], kv[0]))
            for kind, seconds in ordered:
                count = self.event_counts.get(kind, 0)
                mean_us = 1e6 * seconds / count if count else 0.0
                lines.append(f"    {kind:<14} {count:>8} x "
                             f"{mean_us:>8.1f} us = {seconds:>8.3f} s")
        if self.pass_count:
            mean_us = 1e6 * self.pass_seconds / self.pass_count
            lines.append(f"  scheduler passes {self.pass_count:>8} x "
                         f"{mean_us:>8.1f} us = {self.pass_seconds:>8.3f} s")
        if self.span_seconds:
            lines.append("  spans:")
            for name, seconds in sorted(self.span_seconds.items(),
                                        key=lambda kv: (-kv[1], kv[0])):
                count = self.span_counts.get(name, 0)
                lines.append(f"    {name:<22} {count:>8} x = "
                             f"{seconds:>8.3f} s")
        if self.counters:
            lines.append("  hot-path counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"    {name:<22} {value}")
        return "\n".join(lines)
