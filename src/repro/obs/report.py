"""``repro report``: self-contained HTML + JSON run reports.

One simulation run produces many artifacts — summary scalars, cluster
time series, profiler breakdowns, fault statistics and (for Lucid) the
placement-decision audit with per-feature model attributions.  This
module distills them into a single pair of files:

* ``report.html`` — a self-contained page (inline CSS, inline SVG
  charts, **no external assets or network fetches**) readable anywhere.
* ``report.json`` — the machine-readable twin under the
  ``repro-report/v1`` schema, so dashboards and CI diff tooling never
  have to scrape the HTML.

Like :mod:`repro.bench`, this module only *consumes* finished
simulations; it lives outside the simulation packages, so its wall-clock
reads (the ``created`` stamp) are outside RPR002's scope.  Both files are
written atomically (write-to-temp then rename) via
:mod:`repro.obs.ioutil`.
"""

from __future__ import annotations

import html
import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.ioutil import atomic_write_text
from repro.obs.lineage import COMPONENTS, blame_table, decompose_all

__all__ = [
    "REPORT_SCHEMA",
    "build_report",
    "load_report",
    "render_html",
    "validate_report",
    "write_report",
]

#: Schema tag; bump on incompatible layout changes.
REPORT_SCHEMA = "repro-report/v1"

#: Top-level keys every report document must carry (``None`` marks an
#: absent optional section, but the key itself is always present).
_DOC_KEYS = ("schema", "created", "run", "summary", "series", "profile",
             "faults", "attributions", "audit", "bench_diff", "lineage")

#: Keys tolerated absent on load: documents written before the section
#: existed stay valid under the same schema tag.
_OPTIONAL_DOC_KEYS = ("lineage",)

#: Keys of the mandatory ``run`` section.
_RUN_KEYS = ("scheduler", "trace", "jobs", "seed")

#: Additivity tolerance when classifying recorded attributions.
_ADDITIVE_TOL = 1e-6


# ----------------------------------------------------------------------
# Document assembly
# ----------------------------------------------------------------------
def build_report(result: Any, *, scheduler: str, trace: str, jobs: int,
                 seed: Optional[int], profiler: Optional[Any] = None,
                 series: Optional[Any] = None, audit: Optional[Any] = None,
                 bench_diff: Optional[Dict[str, Any]] = None,
                 lineage: Optional[Any] = None,
                 created: Optional[str] = None) -> Dict[str, Any]:
    """Assemble the ``repro-report/v1`` document for one finished run.

    Parameters
    ----------
    result:
        The :class:`~repro.sim.metrics.SimulationResult` of the run.
    scheduler, trace, jobs, seed:
        Run identity, echoed into the ``run`` section.
    profiler:
        Optional :class:`~repro.obs.prof.SimProfiler` that was attached.
    series:
        Optional :class:`~repro.obs.series.SeriesCollector` that sampled
        the run.
    audit:
        Optional :class:`~repro.obs.audit.DecisionAudit`; when it carries
        attributions the interpretability section is populated.
    bench_diff:
        Optional ``{"threshold": float, "rows": [...], "regressions":
        [...]}`` produced by diffing this run against a bench baseline.
    lineage:
        Optional :class:`~repro.obs.lineage.LineageCollector` that
        observed the run; populates the JCT-decomposition waterfall and
        blame sections.
    created:
        Timestamp override (tests); defaults to the current local time.
    """
    document: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "created": created if created is not None
        else time.strftime("%Y-%m-%dT%H:%M:%S"),
        "run": {"scheduler": scheduler, "trace": trace, "jobs": jobs,
                "seed": seed},
        "summary": dict(result.summary()),
        "series": series.to_json() if series is not None else None,
        "profile": profiler.to_dict() if profiler is not None else None,
        "faults": _fault_section(result),
        "attributions": _attribution_section(audit),
        "audit": _audit_section(audit),
        "bench_diff": bench_diff,
        "lineage": _lineage_section(lineage),
    }
    return document


def _lineage_section(lineage: Optional[Any]) -> Optional[Dict[str, Any]]:
    """JCT decompositions rolled up for the report (``None`` when the
    run carried no lineage collector)."""
    if lineage is None:
        return None
    decompositions = decompose_all(lineage)
    totals = {name: 0.0 for name in COMPONENTS}
    for decomposition in decompositions.values():
        for name, seconds in decomposition.components().items():
            totals[name] += seconds
    slowest = sorted(decompositions.values(),
                     key=lambda d: (-d.jct, d.job_id))[:12]
    return {
        "jobs": len(decompositions),
        "components_total": totals,
        "blame": [{"job_id": row.job_id,
                   "induced_wait": row.induced_wait,
                   "n_victims": row.n_victims}
                  for row in blame_table(decompositions)],
        "slowest": [{"job_id": d.job_id, "jct": d.jct,
                     "components": d.components()} for d in slowest],
    }


def _fault_section(result: Any) -> Optional[Dict[str, Any]]:
    stats = getattr(result, "faults", None)
    if stats is None:
        return None
    return {
        "node_failures": stats.node_failures,
        "node_recoveries": stats.node_recoveries,
        "job_crashes": stats.job_crashes,
        "restarts": stats.restarts,
        "jobs_failed": stats.jobs_failed,
        "goodput": stats.goodput,
        "lost_gpu_hours": stats.lost_gpu_hours,
        "mttr_hrs": stats.mttr / 3600.0,
    }


def _audit_section(audit: Optional[Any]) -> Optional[Dict[str, Any]]:
    if audit is None:
        return None
    return {
        "decisions": len(audit.records),
        "packing_rate": audit.packing_rate(),
        "refits": [refit.to_dict() for refit in audit.refits],
    }


def _attribution_section(audit: Optional[Any]) -> Optional[Dict[str, Any]]:
    """Interpretability rollup of the audit's recorded attributions."""
    if audit is None or not getattr(audit, "attribution", False):
        return None
    decisions, with_attr = audit.attribution_coverage()
    duration_sums: Dict[str, List[float]] = {}
    sharing_sums: Dict[str, List[float]] = {}
    additive = 0
    examples: List[str] = []
    for decision in audit.records:
        attribution = decision.attribution
        if attribution is not None:
            if abs(attribution.residual()) <= _ADDITIVE_TOL:
                additive += 1
            for name, score in attribution.terms:
                duration_sums.setdefault(name, []).append(abs(score))
            if len(examples) < 5:
                examples.append(
                    f"job {decision.job_id}: {attribution.render()}")
        binder = decision.binder
        if binder is not None and binder.attribution is not None:
            for name, score in binder.attribution.terms:
                sharing_sums.setdefault(name, []).append(abs(score))
    return {
        "coverage": {
            "decisions": decisions,
            "with_attribution": with_attr,
            "rate": with_attr / decisions if decisions else 0.0,
        },
        "additive": additive,
        "additive_tol": _ADDITIVE_TOL,
        "top_features": _mean_magnitude(duration_sums),
        "sharing_top_features": _mean_magnitude(sharing_sums),
        "examples": examples,
    }


def _mean_magnitude(sums: Dict[str, List[float]]
                    ) -> List[Tuple[str, float]]:
    """``(feature, mean |contribution|)`` pairs, largest first."""
    pairs = [(name, sum(vals) / len(vals)) for name, vals in sums.items()]
    pairs.sort(key=lambda p: (-p[1], p[0]))
    return pairs


# ----------------------------------------------------------------------
# Validation / IO
# ----------------------------------------------------------------------
def validate_report(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid report."""
    if not isinstance(document, dict):
        raise ValueError("report document must be a JSON object")
    if document.get("schema") != REPORT_SCHEMA:
        raise ValueError(f"unsupported report schema "
                         f"{document.get('schema')!r}; "
                         f"expected {REPORT_SCHEMA!r}")
    missing = [k for k in _DOC_KEYS
               if k not in document and k not in _OPTIONAL_DOC_KEYS]
    if missing:
        raise ValueError(f"report document misses keys: {missing}")
    run = document["run"]
    if not isinstance(run, dict):
        raise ValueError("report 'run' section must be an object")
    gone = [k for k in _RUN_KEYS if k not in run]
    if gone:
        raise ValueError(f"report 'run' section misses keys: {gone}")
    if not isinstance(document["summary"], dict):
        raise ValueError("report 'summary' section must be an object")


def write_report(document: Dict[str, Any], out_dir: str
                 ) -> Tuple[str, str]:
    """Write ``report.html`` and ``report.json`` atomically into
    ``out_dir``; returns their paths."""
    validate_report(document)
    html_path = os.path.join(out_dir, "report.html")
    json_path = os.path.join(out_dir, "report.json")
    atomic_write_text(html_path, render_html(document))
    atomic_write_text(json_path,
                      json.dumps(document, indent=2, sort_keys=True) + "\n")
    return html_path, json_path


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        document = json.load(handle)
    validate_report(document)
    return document


# ----------------------------------------------------------------------
# HTML rendering (self-contained: inline CSS + inline SVG only)
# ----------------------------------------------------------------------
_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial,
       sans-serif; margin: 2rem auto; max-width: 60rem; color: #1c2733;
       line-height: 1.45; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #2c7fb8;
     padding-bottom: .3rem; }
h2 { font-size: 1.15rem; margin-top: 1.8rem; color: #2c7fb8; }
table { border-collapse: collapse; margin: .6rem 0; font-size: .9rem; }
th, td { border: 1px solid #cbd5df; padding: .25rem .6rem;
         text-align: left; }
th { background: #eef4f8; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
code { background: #f2f5f7; padding: .1rem .25rem; border-radius: 3px;
       font-size: .85em; }
.meta { color: #5a6b7b; font-size: .85rem; }
.warn { color: #b03030; font-weight: 600; }
.ok { color: #2a7d2a; font-weight: 600; }
svg { background: #fbfcfd; border: 1px solid #dde5ec; }
.legend span { margin-right: 1.2rem; font-size: .85rem; }
.swatch { display: inline-block; width: .8em; height: .8em;
          margin-right: .3em; vertical-align: baseline; }
"""

#: Chart palette (no external fonts/assets; plain hex colors).
_COLORS = ("#2c7fb8", "#d95f0e", "#31a354", "#756bb1")


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any, precision: int = 3) -> str:
    """Human cell: thousands grouping for big numbers, '-' for None."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}g}"
    if isinstance(value, int) and abs(value) >= 1000:
        return f"{value:,}"
    return str(value)


def _html_table(headers: Sequence[str],
                rows: Sequence[Sequence[Any]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body: List[str] = []
    for row in rows:
        cells: List[str] = []
        for cell in row:
            klass = (" class=\"num\""
                     if isinstance(cell, (int, float))
                     and not isinstance(cell, bool) else "")
            cells.append(f"<td{klass}>{_esc(_fmt(cell))}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")


def _svg_line_chart(series: Sequence[Tuple[str, Sequence[Tuple[float,
                                                               float]]]],
                    width: int = 640, height: int = 180,
                    y_label: str = "") -> str:
    """Inline SVG line chart: ``series`` is ``[(label, [(x, y), ...])]``.

    Deliberately minimal — shared x/y scales, a frame, min/max tick
    labels and one polyline per series — so the output stays dependency-
    free and byte-stable for a given input.
    """
    points = [p for _, pts in series for p in pts]
    if not points:
        return "<p class=\"meta\">no samples</p>"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if y_max - y_min < 1e-12:
        y_max = y_min + 1.0
    if x_max - x_min < 1e-12:
        x_max = x_min + 1.0
    pad_l, pad_r, pad_t, pad_b = 46, 8, 8, 22
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b

    def sx(x: float) -> float:
        return pad_l + (x - x_min) / (x_max - x_min) * plot_w

    def sy(y: float) -> float:
        return pad_t + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h

    parts: List[str] = [
        f"<svg width=\"{width}\" height=\"{height}\" role=\"img\" "
        f"xmlns=\"http://www.w3.org/2000/svg\">",
        f"<rect x=\"{pad_l}\" y=\"{pad_t}\" width=\"{plot_w}\" "
        f"height=\"{plot_h}\" fill=\"none\" stroke=\"#cbd5df\"/>",
        f"<text x=\"{pad_l - 4}\" y=\"{pad_t + 10}\" font-size=\"10\" "
        f"text-anchor=\"end\" fill=\"#5a6b7b\">{_esc(_fmt(y_max))}</text>",
        f"<text x=\"{pad_l - 4}\" y=\"{pad_t + plot_h}\" font-size=\"10\" "
        f"text-anchor=\"end\" fill=\"#5a6b7b\">{_esc(_fmt(y_min))}</text>",
        f"<text x=\"{pad_l}\" y=\"{height - 6}\" font-size=\"10\" "
        f"fill=\"#5a6b7b\">{_esc(_fmt(x_min))}h</text>",
        f"<text x=\"{pad_l + plot_w}\" y=\"{height - 6}\" font-size=\"10\" "
        f"text-anchor=\"end\" fill=\"#5a6b7b\">{_esc(_fmt(x_max))}h</text>",
    ]
    if y_label:
        parts.append(
            f"<text x=\"4\" y=\"{pad_t + plot_h / 2:.0f}\" "
            f"font-size=\"10\" fill=\"#5a6b7b\" "
            f"transform=\"rotate(-90 10 {pad_t + plot_h / 2:.0f})\">"
            f"{_esc(y_label)}</text>")
    legend: List[str] = []
    for idx, (label, pts) in enumerate(series):
        color = _COLORS[idx % len(_COLORS)]
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        parts.append(f"<polyline fill=\"none\" stroke=\"{color}\" "
                     f"stroke-width=\"1.5\" points=\"{coords}\"/>")
        legend.append(f"<span><span class=\"swatch\" style=\"background:"
                      f"{color}\"></span>{_esc(label)}</span>")
    parts.append("</svg>")
    parts.append(f"<div class=\"legend\">{''.join(legend)}</div>")
    return "".join(parts)


def _series_charts(series_doc: Optional[Dict[str, Any]]) -> str:
    if series_doc is None or not series_doc.get("samples"):
        return "<p class=\"meta\">no time series collected</p>"
    samples = series_doc["samples"]
    hours = [s["time"] / 3600.0 for s in samples]

    def line(key: str) -> List[Tuple[float, float]]:
        return list(zip(hours, [float(s[key]) for s in samples]))

    util = _svg_line_chart(
        [("GPU allocation", line("gpu_alloc")),
         ("GPU shared", line("gpu_shared")),
         ("memory used", line("memory_used"))],
        y_label="fraction")
    jobs = _svg_line_chart(
        [("running jobs", line("running_jobs")),
         ("pending jobs", line("pending_jobs"))],
        y_label="jobs")
    return util + jobs


def _summary_rows(summary: Dict[str, Any]) -> List[Sequence[Any]]:
    return [[key, summary[key]] for key in sorted(summary)]


def _profile_html(profile: Optional[Dict[str, Any]]) -> str:
    if profile is None:
        return "<p class=\"meta\">profiler not attached</p>"
    headline = _html_table(
        ["wall (s)", "sim speedup", "events", "events/sec",
         "peak RSS (MB)"],
        [[profile.get("wall_seconds"), profile.get("sim_speedup"),
          profile.get("events_processed"), profile.get("events_per_sec"),
          profile.get("peak_rss_mb")]])
    kinds = profile.get("event_kinds") or {}
    kind_rows = [[kind, stats.get("count"), stats.get("seconds")]
                 for kind, stats in sorted(kinds.items())] \
        if all(isinstance(v, dict) for v in kinds.values()) \
        else [[kind, value, None] for kind, value in sorted(kinds.items())]
    spans = profile.get("spans") or {}
    span_rows = [[name, stats.get("count"), stats.get("seconds")]
                 for name, stats in sorted(spans.items())
                 if isinstance(stats, dict)]
    out = headline
    if kind_rows:
        out += "<h3>Event kinds</h3>" + _html_table(
            ["kind", "count", "seconds"], kind_rows)
    if span_rows:
        out += "<h3>Spans</h3>" + _html_table(
            ["span", "count", "seconds"], span_rows)
    return out


def _attribution_html(attributions: Optional[Dict[str, Any]]) -> str:
    if attributions is None:
        return ("<p class=\"meta\">attribution disabled (lucid-only "
                "feature; rerun with <code>repro report --scheduler "
                "lucid</code>)</p>")
    coverage = attributions["coverage"]
    rate = coverage["rate"]
    klass = "ok" if rate >= 0.95 else "warn"
    out = (f"<p>coverage: <span class=\"{klass}\">"
           f"{coverage['with_attribution']}/{coverage['decisions']} "
           f"({rate:.1%})</span> of main-cluster placements carry a "
           f"per-feature attribution; {attributions['additive']} are "
           f"additive within {attributions['additive_tol']:g}.</p>")
    if attributions["top_features"]:
        out += "<h3>Duration model — mean |contribution|</h3>"
        out += _html_table(["feature", "mean |contribution|"],
                           attributions["top_features"][:10])
    if attributions["sharing_top_features"]:
        out += "<h3>Sharing model — mean |contribution|</h3>"
        out += _html_table(["feature", "mean |contribution|"],
                           attributions["sharing_top_features"][:10])
    if attributions["examples"]:
        out += "<h3>Example explanations</h3><ul>"
        out += "".join(f"<li><code>{_esc(e)}</code></li>"
                       for e in attributions["examples"])
        out += "</ul>"
    return out


def _audit_html(audit: Optional[Dict[str, Any]]) -> str:
    if audit is None:
        return "<p class=\"meta\">no decision audit recorded</p>"
    out = (f"<p>{audit['decisions']} placement decisions; packing rate "
           f"{audit['packing_rate']:.1%}.</p>")
    refits = audit.get("refits") or []
    if refits:
        rows = [[r.get("t"), r.get("model"), r.get("new_records"),
                 r.get("r2"), r.get("samples"), r.get("wall_seconds")]
                for r in refits]
        out += "<h3>Model refits</h3>" + _html_table(
            ["sim time (s)", "model", "new records", "R²", "samples",
             "fit wall (s)"], rows)
    return out


def _faults_html(faults: Optional[Dict[str, Any]]) -> str:
    if faults is None:
        return "<p class=\"meta\">fault injection disabled</p>"
    return _html_table(
        ["node failures", "job crashes", "restarts", "permanent failures",
         "goodput", "lost GPU-h", "MTTR (h)"],
        [[faults["node_failures"], faults["job_crashes"],
          faults["restarts"], faults["jobs_failed"], faults["goodput"],
          faults["lost_gpu_hours"], faults["mttr_hrs"]]])


#: Fill colors for the JCT-decomposition waterfall, one per component.
_LINEAGE_COLORS = {
    "pending_profiling": "#9ecae1",
    "pending_main": "#d95f0e",
    "sharing_slowdown": "#fdae6b",
    "preemption_overhead": "#756bb1",
    "fault_retry": "#b03030",
    "compute": "#31a354",
}


def _svg_waterfall(rows: Sequence[Tuple[str, Dict[str, float]]],
                   width: int = 640) -> str:
    """Horizontal stacked bars: one row per job, one segment per
    nonzero JCT component, all bars on a shared seconds scale."""
    if not rows:
        return "<p class=\"meta\">no completed jobs</p>"
    scale = max(sum(components.values()) for _, components in rows)
    if scale <= 0:
        return "<p class=\"meta\">no completed jobs</p>"
    bar_h, gap, pad_l, pad_r = 16, 6, 90, 8
    plot_w = width - pad_l - pad_r
    height = len(rows) * (bar_h + gap) + gap
    parts: List[str] = [
        f"<svg width=\"{width}\" height=\"{height}\" role=\"img\" "
        f"xmlns=\"http://www.w3.org/2000/svg\">"]
    for idx, (label, components) in enumerate(rows):
        y = gap + idx * (bar_h + gap)
        parts.append(
            f"<text x=\"{pad_l - 6}\" y=\"{y + bar_h - 4}\" "
            f"font-size=\"11\" text-anchor=\"end\" fill=\"#1c2733\">"
            f"{_esc(label)}</text>")
        x = float(pad_l)
        for name in COMPONENTS:
            seconds = max(0.0, components.get(name, 0.0))
            seg_w = seconds / scale * plot_w
            if seg_w < 0.25:
                continue
            color = _LINEAGE_COLORS.get(name, "#888888")
            parts.append(
                f"<rect x=\"{x:.1f}\" y=\"{y}\" width=\"{seg_w:.1f}\" "
                f"height=\"{bar_h}\" fill=\"{color}\">"
                f"<title>{_esc(name)}: {seconds:,.1f} s</title></rect>")
            x += seg_w
    parts.append("</svg>")
    legend = "".join(
        f"<span><span class=\"swatch\" style=\"background:"
        f"{_LINEAGE_COLORS[name]}\"></span>{_esc(name)}</span>"
        for name in COMPONENTS)
    parts.append(f"<div class=\"legend\">{legend}</div>")
    return "".join(parts)


def _lineage_html(lineage: Optional[Dict[str, Any]]) -> str:
    if lineage is None:
        return ("<p class=\"meta\">lineage not collected (rerun "
                "<code>repro report</code> on a build with the causal "
                "lineage plane, or see <code>repro why</code>)</p>")
    if not lineage.get("jobs"):
        return "<p class=\"meta\">no completed jobs to decompose</p>"
    totals = lineage.get("components_total") or {}
    grand = sum(totals.values()) or 1.0
    out = (f"<p>{lineage['jobs']} completed jobs decomposed; every "
           "job's components sum exactly to its JCT "
           "(<code>repro why &lt;job_id&gt;</code> drills into one "
           "job).</p>")
    out += _html_table(
        ["component", "total seconds", "share"],
        [[name, totals.get(name, 0.0), totals.get(name, 0.0) / grand]
         for name in COMPONENTS])
    slowest = lineage.get("slowest") or []
    if slowest:
        out += "<h3>Slowest jobs — where the time went</h3>"
        out += _svg_waterfall(
            [(f"job {row['job_id']}", dict(row["components"]))
             for row in slowest])
    blame = lineage.get("blame") or []
    if blame:
        out += "<h3>Top blockers — induced main-queue wait</h3>"
        out += _html_table(
            ["blocking job", "induced wait (s)", "victims"],
            [[row["job_id"], row["induced_wait"], row["n_victims"]]
             for row in blame])
    return out


def _bench_diff_html(diff: Optional[Dict[str, Any]]) -> str:
    if diff is None:
        return ""
    rows = [[row["name"], row["baseline_eps"], row["candidate_eps"],
             row["ratio"], row["note"]] for row in diff.get("rows", [])]
    out = "<h2>Bench diff</h2>"
    out += _html_table(["scenario", "baseline ev/s", "candidate ev/s",
                        "ratio", "note"], rows)
    regressions = diff.get("regressions") or []
    if regressions:
        out += ("<p class=\"warn\">regressions:</p><ul>"
                + "".join(f"<li>{_esc(r)}</li>" for r in regressions)
                + "</ul>")
    else:
        out += (f"<p class=\"ok\">no events/sec regression beyond "
                f"{diff.get('threshold', 0.25) * 100:.0f}%</p>")
    return out


def render_html(document: Dict[str, Any]) -> str:
    """Render the report document as one self-contained HTML page."""
    validate_report(document)
    run = document["run"]
    title = (f"repro report — {run['scheduler']} × {run['trace']}"
             f"@{run['jobs']}")
    seed = run.get("seed")
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html lang=\"en\"><head><meta charset=\"utf-8\">",
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f"<p class=\"meta\">generated {_esc(document['created'])} · "
        f"schema <code>{_esc(document['schema'])}</code> · seed "
        f"{_esc(seed if seed is not None else 'default')}</p>",
        "<h2>Summary</h2>",
        _html_table(["metric", "value"],
                    _summary_rows(document["summary"])),
        "<h2>Cluster time series</h2>",
        _series_charts(document["series"]),
        "<h2>Interpretability</h2>",
        _attribution_html(document["attributions"]),
        "<h2>Decision audit</h2>",
        _audit_html(document["audit"]),
        "<h2>Why were jobs slow? — JCT decomposition</h2>",
        _lineage_html(document.get("lineage")),
        "<h2>Simulator profile</h2>",
        _profile_html(document["profile"]),
        "<h2>Faults</h2>",
        _faults_html(document["faults"]),
        _bench_diff_html(document["bench_diff"]),
        "</body></html>",
    ]
    return "\n".join(parts)
