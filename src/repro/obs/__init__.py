"""Observability subsystem: tracing, decision audit, metrics, timelines.

Lucid's differentiator is *interpretability*; this package is the layer
that makes the reproduction observable end to end:

* :mod:`repro.obs.tracer` — structured simulator events in a ring buffer
  with an optional JSONL sink (no-op :data:`NULL_TRACER` by default).
* :mod:`repro.obs.audit` — per-placement decision records explaining every
  allocation (priority, binder verdict, sharing mode, starvation relief).
* :mod:`repro.obs.metrics` — counters / gauges / histograms surfaced on
  :class:`~repro.sim.metrics.SimulationResult` as ``result.telemetry``.
* :mod:`repro.obs.live` — the serve daemon's live telemetry plane:
  labeled metric families, Prometheus text exposition, and the
  zero-dependency ``/dashboard`` page.
* :mod:`repro.obs.lineage` — the causal event DAG and exact JCT
  decomposition (``Simulator(lineage=...)``): why a job was slow,
  which jobs blocked it, the event chain that determined its JCT
  (``repro why``), live or offline from a trace JSONL.
* :mod:`repro.obs.timeline` — Chrome trace-event export (per-GPU lanes
  for ``chrome://tracing`` / Perfetto).
* :mod:`repro.obs.prof` — simulator self-profiling
  (``Simulator(profile=...)``): wall time per event kind and scheduler
  pass, hot-path counters, events/sec, peak RSS.
* :mod:`repro.obs.series` — fixed-interval cluster time series
  (``Simulator(series=...)``) with CSV/JSON export.
* :mod:`repro.obs.report` — the ``repro report`` generator: one
  self-contained HTML page (inline CSS/SVG, no external assets) plus a
  machine-readable ``report.json`` twin per run.
* :mod:`repro.obs.logutil` — ``repro.*`` logger configuration.

Quickstart::

    from repro import Simulator, quick_simulation
    from repro.obs import RingBufferTracer, write_chrome_trace

    tracer = RingBufferTracer(sink="events.jsonl")
    result = quick_simulation("venus", n_jobs=200, tracer=tracer)
    print(result.telemetry.metrics)
    print(result.telemetry.audit.explain(42))
    write_chrome_trace("timeline.json", tracer.events)
"""

from repro.obs.audit import (
    BinderVerdict,
    Counterfactual,
    DecisionAudit,
    PlacementDecision,
    RefitRecord,
)
from repro.obs.lineage import (
    COMPONENTS,
    LINEAGE_CAUSE_SCHEMA,
    BlameRow,
    JCTDecomposition,
    LineageCollector,
    LineageEvent,
    blame_table,
    critical_path,
    decompose,
    decompose_all,
    lineage_from_trace,
)
from repro.obs.live import (
    CONTENT_TYPE_PROMETHEUS,
    DEFAULT_LATENCY_BUCKETS,
    LiveRegistry,
    publish_profiler,
    render_dashboard,
)
from repro.obs.logutil import (
    LOG_FORMATS,
    LOG_LEVELS,
    configure_logging,
    get_logger,
    log_context,
)
from repro.obs.metrics import (
    BucketHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Telemetry,
)
from repro.obs.prof import NULL_SPAN, SimProfiler, peak_rss_mb
from repro.obs.report import (
    REPORT_SCHEMA,
    build_report,
    load_report,
    render_html,
    validate_report,
    write_report,
)
from repro.obs.series import (
    SERIES_SCHEMA,
    SeriesCollector,
    SeriesSample,
)
from repro.obs.timeline import build_chrome_trace, write_chrome_trace
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RingBufferTracer,
    TraceEvent,
    Tracer,
    events_from_dicts,
    read_jsonl,
)

__all__ = [
    "BinderVerdict",
    "Counterfactual",
    "DecisionAudit",
    "PlacementDecision",
    "RefitRecord",
    "REPORT_SCHEMA",
    "build_report",
    "load_report",
    "render_html",
    "validate_report",
    "write_report",
    "NULL_SPAN",
    "SimProfiler",
    "peak_rss_mb",
    "SERIES_SCHEMA",
    "SeriesCollector",
    "SeriesSample",
    "LOG_FORMATS",
    "LOG_LEVELS",
    "configure_logging",
    "get_logger",
    "log_context",
    "COMPONENTS",
    "LINEAGE_CAUSE_SCHEMA",
    "BlameRow",
    "JCTDecomposition",
    "LineageCollector",
    "LineageEvent",
    "blame_table",
    "critical_path",
    "decompose",
    "decompose_all",
    "lineage_from_trace",
    "CONTENT_TYPE_PROMETHEUS",
    "DEFAULT_LATENCY_BUCKETS",
    "LiveRegistry",
    "publish_profiler",
    "render_dashboard",
    "BucketHistogram",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "build_chrome_trace",
    "write_chrome_trace",
    "NULL_TRACER",
    "NullTracer",
    "RingBufferTracer",
    "TraceEvent",
    "Tracer",
    "events_from_dicts",
    "read_jsonl",
]
