"""Logging configuration for the ``repro`` package.

Every subsystem owns a module-level logger under the ``repro.`` namespace
(``repro.sim.engine``, ``repro.core.lucid``, ``repro.schedulers``, …).
:func:`configure_logging` attaches one stream handler to the shared
``repro`` root so the CLI's ``--log-level`` flag governs all of them at
once without touching the global root logger (library-friendly: importing
``repro`` never configures logging by itself).
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

__all__ = ["configure_logging", "get_logger", "LOG_LEVELS"]

#: Names accepted by the CLI ``--log-level`` flag.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_FORMAT = "%(levelname).1s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Namespaced logger (``get_logger("sim.engine")`` ->
    ``repro.sim.engine``)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure_logging(level: Union[str, int] = "warning",
                      stream: Optional[IO[str]] = None) -> logging.Logger:
    """Configure the ``repro`` logger tree and return its root.

    Idempotent: repeated calls reuse the existing handler and only adjust
    the level, so tests may call it freely.
    """
    if isinstance(level, str):
        if level.lower() not in LOG_LEVELS:
            raise ValueError(f"unknown log level {level!r}; "
                             f"choose from {LOG_LEVELS}")
        level = getattr(logging, level.upper())
    root = logging.getLogger("repro")
    root.setLevel(level)
    handler = next((h for h in root.handlers
                    if getattr(h, "_repro_handler", False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        handler._repro_handler = True  # type: ignore[attr-defined]
        root.addHandler(handler)
        root.propagate = False
    elif stream is not None:
        handler.setStream(stream)
    return root
