"""Logging configuration for the ``repro`` package.

Every subsystem owns a module-level logger under the ``repro.`` namespace
(``repro.sim.engine``, ``repro.core.lucid``, ``repro.schedulers``, …).
:func:`configure_logging` attaches one stream handler to the shared
``repro`` root so the CLI's ``--log-level`` flag governs all of them at
once without touching the global root logger (library-friendly: importing
``repro`` never configures logging by itself).

Structured logging: ``configure_logging(fmt="json")`` switches the
handler to :class:`JsonFormatter` — one JSON object per line with the
level, logger name, rendered message, and every *correlation field*
currently bound via :func:`log_context`.  Correlation fields ride in a
:mod:`contextvars` variable, so the serve daemon can bind ``tick=17``
once at the top of a service tick and every log record emitted below it
(engine, WAL, recovery) carries the id without threading parameters
through call signatures.  The context is task/thread-local and restored
on exit, so concurrent HTTP handler threads never see each other's ids.
"""

from __future__ import annotations

import contextvars
import json
import logging
import sys
from contextlib import contextmanager
from typing import IO, Any, Dict, Iterator, Mapping, Optional, Union

__all__ = [
    "JsonFormatter",
    "LOG_FORMATS",
    "LOG_LEVELS",
    "configure_logging",
    "context_fields",
    "current_context",
    "get_logger",
    "log_context",
]

#: Names accepted by the CLI ``--log-level`` flag.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

#: Names accepted by the CLI ``--log-format`` flag.
LOG_FORMATS = ("text", "json")

_FORMAT = "%(levelname).1s %(name)s: %(message)s"

#: The active correlation fields (tick, job_id, wal_segment, ...).
_LOG_CONTEXT: contextvars.ContextVar[Dict[str, Any]] = \
    contextvars.ContextVar("repro_log_context", default={})


def current_context() -> Dict[str, Any]:
    """A copy of the correlation fields bound in this context."""
    return dict(_LOG_CONTEXT.get())


@contextmanager
def log_context(**fields: Any) -> Iterator[None]:
    """Bind correlation fields onto every log record in this context.

    Nested uses merge (inner bindings win on key collisions) and each
    exit restores the exact previous binding, so a handler thread that
    never entered the manager sees no fields at all.  Fields appear in
    JSON log lines as top-level keys and in text lines as a bracketed
    ``[k=v ...]`` suffix.
    """
    merged = dict(_LOG_CONTEXT.get())
    merged.update(fields)
    token = _LOG_CONTEXT.set(merged)
    try:
        yield
    finally:
        _LOG_CONTEXT.reset(token)


class _ContextFilter(logging.Filter):
    """Stamps the bound correlation fields onto each record."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.repro_context = current_context()
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per line: level, logger, message, correlation ids.

    Keys are sorted and values JSON-encoded with ``default=str`` so an
    exotic field (a Path, an exception) degrades to its repr instead of
    crashing the logging pipeline.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        context = getattr(record, "repro_context", None)
        if context is None:  # formatter used without the filter
            context = current_context()
        for key, value in context.items():
            payload.setdefault(key, value)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class _TextFormatter(logging.Formatter):
    """The classic one-liner plus a ``[k=v ...]`` correlation suffix."""

    def __init__(self) -> None:
        super().__init__(_FORMAT)

    def format(self, record: logging.LogRecord) -> str:
        line = super().format(record)
        context = getattr(record, "repro_context", None)
        if context is None:
            context = current_context()
        if context:
            suffix = " ".join(f"{k}={v}" for k, v
                              in sorted(context.items()))
            line = f"{line} [{suffix}]"
        return line


def get_logger(name: str) -> logging.Logger:
    """Namespaced logger (``get_logger("sim.engine")`` ->
    ``repro.sim.engine``)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure_logging(level: Union[str, int] = "warning",
                      stream: Optional[IO[str]] = None,
                      fmt: str = "text") -> logging.Logger:
    """Configure the ``repro`` logger tree and return its root.

    Idempotent: repeated calls reuse the existing handler and only adjust
    the level / format / stream, so tests may call it freely.  ``fmt``
    is ``"text"`` (default) or ``"json"`` (structured lines carrying the
    :func:`log_context` correlation fields).
    """
    if isinstance(level, str):
        if level.lower() not in LOG_LEVELS:
            raise ValueError(f"unknown log level {level!r}; "
                             f"choose from {LOG_LEVELS}")
        level = getattr(logging, level.upper())
    if fmt not in LOG_FORMATS:
        raise ValueError(f"unknown log format {fmt!r}; "
                         f"choose from {LOG_FORMATS}")
    root = logging.getLogger("repro")
    root.setLevel(level)
    handler = next((h for h in root.handlers
                    if getattr(h, "_repro_handler", False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.addFilter(_ContextFilter())
        handler._repro_handler = True  # type: ignore[attr-defined]
        root.addHandler(handler)
        root.propagate = False
    elif stream is not None:
        try:
            handler.setStream(stream)
        except (ValueError, OSError):
            # setStream flushes the outgoing stream first; if a caller
            # already closed it, swap without the flush.
            handler.stream = stream
    handler.setFormatter(JsonFormatter() if fmt == "json"
                         else _TextFormatter())
    return root


def context_fields(**fields: Any) -> Mapping[str, Any]:
    """Drop ``None``-valued fields (convenience for optional ids)."""
    return {key: value for key, value in fields.items()
            if value is not None}
