"""Causal event lineage and exact JCT decomposition.

Answers *why was this job slow?* — the outcome-level counterpart of
``repro explain`` (which interprets a single placement decision).  Three
layers:

* :class:`LineageCollector` — a ``Simulator(lineage=...)`` observer
  (``None``-when-off like the profiler and series collector) that
  assembles the per-run **causal DAG**: every lifecycle event carries
  the ids of the events that caused it.  A ``start`` is caused by the
  releases (finish/preempt/crash) that freed its GPUs plus the
  scheduler pass that picked it; a ``retry`` by its ``crash``; a crash
  by the ``node_fail`` that killed the node.  The collector is strictly
  read-only over simulation state, so ``lineage=None`` runs are
  bit-identical and pay one ``is not None`` check per hook site.
* :func:`decompose` — splits a completed job's JCT into six components
  that sum *exactly* to ``finish - submit``: time waiting for the
  profiling stage, time waiting in the main queue (attributed to the
  blocking jobs), sharing/straggler slowdown, preemption/restore
  overhead, fault-retry loss (rolled-back work plus backoff), and pure
  compute.  Per-interval pieces are residual-constructed so they tile
  each interval exactly; a final fold of the float summation residue
  into the largest component pins ``sum(components) == jct`` to well
  under the 1e-9 contract.
* :func:`critical_path` / :func:`blame_table` — walk the DAG backwards
  along binding causes ("the chain of events that determined this
  JCT") and aggregate main-queue wait by blocking job cluster-wide.

The same collector can be rebuilt offline from a tracer JSONL via
:func:`lineage_from_trace`, so ``repro why --trace events.jsonl`` needs
no re-simulation.  :data:`LINEAGE_CAUSE_SCHEMA` documents the cause
story for every heap :class:`~repro.sim.events.EventKind`; lint rule
RPR114 keeps it in sync with the enum.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "COMPONENTS",
    "LINEAGE_CAUSE_SCHEMA",
    "BlameRow",
    "JCTDecomposition",
    "LineageCollector",
    "LineageEvent",
    "blame_table",
    "critical_path",
    "decompose",
    "decompose_all",
    "lineage_from_trace",
]

#: Decomposition component names, in report/CLI display order.
COMPONENTS: Tuple[str, ...] = (
    "pending_profiling", "pending_main", "sharing_slowdown",
    "preemption_overhead", "fault_retry", "compute",
)

#: Cause story per heap :class:`~repro.sim.events.EventKind` value —
#: what (if anything) a lineage node of that kind cites as its causes.
#: RPR114 machine-checks this literal against the enum, the RPR111
#: pattern applied to the causal model instead of WAL replay.
LINEAGE_CAUSE_SCHEMA: Dict[str, str] = {
    "submit": "root node: trace arrival, no simulated cause",
    "finish": "caused by the job's own start (progress chain); acts as "
              "a GPU release cause for later starts",
    "time_limit": "caused by the profiling start that armed the bound; "
                  "the eviction stop it triggers chains from it",
    "tick": "periodic wake-up, uncaused; passes materialize lazily as "
            "sched_pass nodes only when a start cites one",
    "node_fail": "root fault node from the injector timeline; cited by "
                 "every victim crash it produces",
    "node_recover": "paired with its node_fail; recorded so recovered "
                    "capacity is visible on the critical path",
    "job_crash": "crash nodes cite the victim's start and, for node "
                 "deaths, the node_fail event; acts as a GPU release",
    "slowdown": "straggler window open; affects speeds only, so it is "
                "accounted as sharing_slowdown residual, not as a node",
    "slowdown_end": "straggler window close; same residual accounting "
                    "as slowdown",
    "retry": "caused by the crash whose backoff it ends; the following "
             "start chains from the retry",
}

#: Waiting buckets a pending interval can be classified into.
_WAIT_PROFILING = "pending_profiling"
_WAIT_MAIN = "pending_main"
_WAIT_FAULT = "fault_retry"

#: Event kinds that free main-cluster GPUs for later starts.
_RELEASE_KINDS = frozenset({"stop", "preempt", "finish", "crash",
                            "job_failed"})

#: Tolerance below which a float-noise negative component is clamped.
_NOISE_EPS = 1e-6


@dataclass(frozen=True)
class LineageEvent:
    """One node of the causal DAG.

    ``kind`` uses the tracer vocabulary (``start``, ``crash``, ...)
    plus the synthetic ``sched_pass`` kind for scheduler passes; ids
    are dense indices into :attr:`LineageCollector.events`.
    """

    event_id: int
    time: float
    kind: str
    job_id: Optional[int]
    causes: Tuple[int, ...]
    data: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "id": self.event_id, "t": self.time, "kind": self.kind,
            "job_id": self.job_id, "causes": list(self.causes),
        }
        out.update(self.data)
        return out


class LineageCollector:
    """Assembles the causal event DAG of one simulation run.

    Attach via ``Simulator(lineage=LineageCollector())`` (live) or
    rebuild from a trace file with :func:`lineage_from_trace`
    (offline) — both paths run the identical ingestion code, so
    ``repro why`` gives the same answer either way.  The collector
    never mutates engine state: hooks read primitives the engine
    passes in and append to internal structures only.
    """

    def __init__(self, max_events: int = 2_000_000) -> None:
        #: Dense, append-only node store; event ids index this list.
        self.events: List[LineageEvent] = []
        #: Nodes not recorded because ``max_events`` was reached.
        self.n_dropped = 0
        self._max_events = max_events
        self._by_job: Dict[int, List[int]] = {}
        self._job_last: Dict[int, int] = {}
        #: Terminal (finish / job_failed) event id per completed job.
        self._terminal: Dict[int, int] = {}
        #: gpu_id -> id of the event that last freed it (main cluster
        #: only; profiling runs live on the separate profiler cluster,
        #: whose gpu ids may collide, so they never register releases).
        self._last_release: Dict[int, int] = {}
        #: All release event ids / times, in record order, for the
        #: cluster-wide "what freed capacity during this wait" probe.
        self._release_ids: List[int] = []
        self._release_times: List[float] = []
        #: Lazily materialized scheduler-pass node per pass timestamp.
        self._pass_nodes: Dict[float, int] = {}
        #: Event id -> scheduler routing annotation ("profiler" /
        #: "main" / "main_degraded") attached to the submit/retry node
        #: that opened the wait.
        self._route_at: Dict[int, str] = {}
        self._last_node_fail: Optional[int] = None

    # ------------------------------------------------------------------
    # Node store
    # ------------------------------------------------------------------
    def _record(self, time: float, kind: str, job_id: Optional[int],
                causes: Sequence[Optional[int]],
                data: Dict[str, Any]) -> Optional[int]:
        if len(self.events) >= self._max_events:
            self.n_dropped += 1
            return None
        seen: Dict[int, None] = {}
        for cause in causes:
            if cause is not None:
                seen.setdefault(cause)
        event_id = len(self.events)
        self.events.append(LineageEvent(
            event_id=event_id, time=time, kind=kind, job_id=job_id,
            causes=tuple(seen), data=data))
        if job_id is not None:
            self._by_job.setdefault(job_id, []).append(event_id)
            self._job_last[job_id] = event_id
        return event_id

    def _pass_node(self, time: float) -> Optional[int]:
        """Get-or-create the scheduler-pass node for timestamp ``time``.

        The engine invokes exactly one scheduler pass per drained event
        batch (one batch per timestamp), so keying passes by time is
        faithful both live and offline — no engine-side pass hook, and
        therefore no per-pass overhead, is needed.
        """
        event_id = self._pass_nodes.get(time)
        if event_id is None:
            event_id = self._record(time, "sched_pass", None, (),
                                    {"index": len(self._pass_nodes)})
            if event_id is not None:
                self._pass_nodes[time] = event_id
        return event_id

    def _register_release(self, time: float, gpus: Iterable[int],
                          event_id: Optional[int]) -> None:
        if event_id is None:
            return
        for gpu in gpus:
            self._last_release[gpu] = event_id
        self._release_ids.append(event_id)
        self._release_times.append(time)

    # ------------------------------------------------------------------
    # Engine / fault-runtime hooks (live) — also fed by
    # :func:`lineage_from_trace` (offline).  All arguments are
    # primitives so the two paths are indistinguishable.
    # ------------------------------------------------------------------
    def on_submit(self, time: float, job_id: int, *, gpu_num: int,
                  vc: Optional[str]) -> None:
        self._record(time, "submit", job_id, (),
                     {"gpu_num": gpu_num, "vc": vc})

    def note_routing(self, job_id: int, routed: str) -> None:
        """Scheduler annotation: where the job it just handled waits.

        Called from the scheduler callbacks right after the engine's
        submit/retry hook, so the annotation lands on the node that
        opened the current waiting interval.
        """
        last = self._job_last.get(job_id)
        if last is not None:
            self._route_at[last] = routed

    def on_start(self, time: float, job_id: int, gpus: Sequence[int], *,
                 profiling: bool, overhead: float,
                 progress: Optional[float]) -> None:
        causes: List[Optional[int]] = [self._job_last.get(job_id),
                                       self._pass_node(time)]
        if not profiling:
            for gpu in gpus:
                causes.append(self._last_release.get(gpu))
        self._record(time, "start", job_id, causes,
                     {"gpus": list(gpus), "profiling": profiling,
                      "overhead": overhead, "progress": progress})

    def on_stop(self, time: float, job_id: int, gpus: Sequence[int], *,
                preempted: bool, progress: float,
                profiling: bool) -> None:
        event_id = self._record(
            time, "preempt" if preempted else "stop", job_id,
            (self._job_last.get(job_id),),
            {"gpus": list(gpus), "progress": progress,
             "profiling": profiling})
        if not profiling:
            self._register_release(time, gpus, event_id)

    def on_finish(self, time: float, job_id: int, gpus: Sequence[int], *,
                  progress: Optional[float], profiling: bool,
                  jct: Optional[float] = None) -> None:
        event_id = self._record(
            time, "finish", job_id, (self._job_last.get(job_id),),
            {"gpus": list(gpus), "progress": progress,
             "profiling": profiling, "jct": jct})
        if event_id is not None:
            self._terminal[job_id] = event_id
        if not profiling:
            self._register_release(time, gpus, event_id)

    def on_time_limit(self, time: float, job_id: int, *, progress: float,
                      profiling: bool) -> None:
        self._record(time, "time_limit", job_id,
                     (self._job_last.get(job_id),),
                     {"progress": progress, "profiling": profiling})

    def on_node_fail(self, time: float, node: Optional[int],
                     victims: Sequence[int]) -> None:
        self._last_node_fail = self._record(
            time, "node_fail", None, (),
            {"node": node, "victims": list(victims)})

    def on_node_recover(self, time: float, node: Optional[int]) -> None:
        self._record(time, "node_recover", None, (), {"node": node})

    def on_crash(self, time: float, job_id: int, gpus: Sequence[int], *,
                 cause: str, lost: float, backoff: float,
                 progress: Optional[float],
                 profiling: bool) -> None:
        causes: List[Optional[int]] = [self._job_last.get(job_id)]
        if cause == "node_fail":
            causes.append(self._last_node_fail)
        event_id = self._record(
            time, "crash", job_id, causes,
            {"gpus": list(gpus), "cause": cause, "lost": lost,
             "backoff": backoff, "progress": progress,
             "profiling": profiling})
        if not profiling:
            self._register_release(time, gpus, event_id)

    def on_retry(self, time: float, job_id: int) -> None:
        self._record(time, "retry", job_id,
                     (self._job_last.get(job_id),), {})

    def on_job_failed(self, time: float, job_id: int, *, cause: str,
                      gpus: Sequence[int], progress: Optional[float],
                      profiling: bool) -> None:
        causes: List[Optional[int]] = [self._job_last.get(job_id)]
        if cause == "node_fail":
            causes.append(self._last_node_fail)
        event_id = self._record(
            time, "job_failed", job_id, causes,
            {"gpus": list(gpus), "cause": cause, "progress": progress,
             "profiling": profiling})
        if event_id is not None:
            self._terminal[job_id] = event_id
        if not profiling:
            self._register_release(time, gpus, event_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def events_of(self, job_id: int) -> List[LineageEvent]:
        """This job's lifecycle nodes, in record (= time) order."""
        return [self.events[i] for i in self._by_job.get(job_id, [])]

    def job_ids(self) -> List[int]:
        return sorted(self._by_job)

    def completed_job_ids(self) -> List[int]:
        """Jobs with a terminal (finish / job_failed) node."""
        return sorted(self._terminal)

    def route_of(self, event: LineageEvent) -> Optional[str]:
        return self._route_at.get(event.event_id)

    def releases_between(self, lo: float, hi: float) -> List[LineageEvent]:
        """Release events with ``lo < time <= hi``, in time order."""
        start = bisect.bisect_right(self._release_times, lo)
        stop = bisect.bisect_right(self._release_times, hi)
        return [self.events[self._release_ids[i]]
                for i in range(start, stop)]


# ----------------------------------------------------------------------
# JCT decomposition
# ----------------------------------------------------------------------
@dataclass
class JCTDecomposition:
    """Exact split of one job's completion time.

    ``components()`` sums to :attr:`jct` exactly: per-interval pieces
    are residual-constructed, and the fsum residue (:attr:`residual`,
    ulp-scale) is folded into the largest component.  On homogeneous
    clusters every component is non-negative; speed factors above 1
    (hetero GPUs) can drive ``sharing_slowdown`` negative, which then
    reads as "ran faster than the 1x reference".
    """

    job_id: int
    jct: float
    submit_time: float
    end_time: float
    outcome: str  # "finished" | "failed"
    pending_profiling: float = 0.0
    pending_main: float = 0.0
    sharing_slowdown: float = 0.0
    preemption_overhead: float = 0.0
    fault_retry: float = 0.0
    compute: float = 0.0
    #: fsum residue folded into the largest component (transparency).
    residual: float = 0.0
    #: blocking job id -> seconds of this job's main-queue wait
    #: attributed to it (equal split per wait interval).
    blockers: Dict[int, float] = field(default_factory=dict)
    #: Main-queue wait seconds no blocking job could be named for
    #: (idle-capacity / scheduler-policy wait).
    unattributed_wait: float = 0.0

    def components(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in COMPONENTS}

    def total(self) -> float:
        return math.fsum(self.components().values())

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "job_id": self.job_id, "jct": self.jct,
            "submit_time": self.submit_time, "end_time": self.end_time,
            "outcome": self.outcome, "residual": self.residual,
            "components": self.components(),
            "blockers": {str(k): v
                         for k, v in sorted(self.blockers.items())},
            "unattributed_wait": self.unattributed_wait,
        }
        return out


def _blocking_ids(collector: LineageCollector, start: LineageEvent,
                  job_id: int, since: float) -> List[int]:
    """Jobs to blame for the main-queue wait ending at ``start``.

    Preference order: (1) releases of the GPUs the job started on that
    happened *during* the wait, (2) those GPUs' last releases whenever
    they happened, (3) any cluster-wide release during the wait (what
    freed capacity / triggered the pass that placed the job).
    """
    in_window: List[int] = []
    any_release: List[int] = []
    for cause_id in start.causes:
        cause = collector.events[cause_id]
        if cause.kind not in _RELEASE_KINDS or cause.job_id is None \
                or cause.job_id == job_id:
            continue
        any_release.append(cause.job_id)
        if since <= cause.time <= start.time:
            in_window.append(cause.job_id)
    picked = in_window or any_release
    if not picked:
        picked = [e.job_id for e in
                  collector.releases_between(since, start.time)
                  if e.job_id is not None and e.job_id != job_id]
    seen: Dict[int, None] = {}
    for jid in picked:
        seen.setdefault(jid)
    return list(seen)


def decompose(collector: LineageCollector,
              job_id: int) -> JCTDecomposition:
    """Split ``job_id``'s completion time into the six components.

    Raises ``KeyError`` for unknown jobs and ``ValueError`` for jobs
    that never reached a terminal event (still running / pending when
    the collector stopped observing).
    """
    timeline = collector.events_of(job_id)
    if not timeline:
        raise KeyError(f"job {job_id} has no lineage events")
    if timeline[0].kind != "submit":
        raise ValueError(f"job {job_id}: lineage starts with "
                         f"{timeline[0].kind!r}, not 'submit' (was the "
                         "collector attached from the beginning?)")
    terminal = timeline[-1]
    if terminal.kind not in ("finish", "job_failed"):
        raise ValueError(f"job {job_id} has not completed (last event: "
                         f"{terminal.kind!r} at t={terminal.time:.0f}s)")
    submit_time = timeline[0].time
    end_time = terminal.time
    outcome = "finished" if terminal.kind == "finish" else "failed"

    pieces: Dict[str, List[float]] = {name: [] for name in COMPONENTS}
    blockers: Dict[int, List[float]] = {}
    unattributed: List[float] = []
    # Surviving-work stack: (amount, was_profiling) in production
    # order; crashes and profiling evictions pop from the tail.
    survive: List[Tuple[float, bool]] = []

    def pop_work(amount: float, bucket_for: Optional[str]) -> None:
        """Reclassify the newest ``amount`` of surviving work.

        ``bucket_for=None`` routes each popped piece by its own
        profiling flag (profiling discard vs. checkpoint rollback);
        a bucket name forces the classification.
        """
        left = amount
        while left > 0.0 and survive:
            work, was_profiling = survive[-1]
            take = min(left, work)
            bucket = bucket_for if bucket_for is not None else (
                _WAIT_PROFILING if was_profiling else _WAIT_FAULT)
            pieces[bucket].append(take)
            left -= take
            if take >= work:
                survive.pop()
            else:
                survive[-1] = (work - take, was_profiling)

    wait_since: Optional[float] = submit_time
    wait_bucket = (_WAIT_PROFILING
                   if collector.route_of(timeline[0]) == "profiler"
                   else _WAIT_MAIN)
    run_t0 = 0.0
    run_overhead = 0.0
    run_p0 = 0.0
    run_profiling = False
    running = False
    carried = 0.0

    def close_run(end: float, p_end: float) -> None:
        """Account one running segment ``[run_t0, end]``.

        ``p_end`` is the progress reached *before* any rollback; the
        residual construction (slowdown = dt - overhead - work) makes
        the three pieces tile the segment exactly."""
        nonlocal running, carried
        dt = end - run_t0
        overhead_used = min(run_overhead, dt)
        productive = dt - overhead_used
        work = max(0.0, p_end - run_p0)
        if work > productive and work - productive <= _NOISE_EPS:
            work = productive  # float noise; keep slowdown exactly 0
        pieces["preemption_overhead"].append(overhead_used)
        pieces["sharing_slowdown"].append(productive - work)
        if work > 0.0:
            survive.append((work, run_profiling))
        carried = p_end
        running = False

    def close_wait(end: float, event: LineageEvent) -> None:
        nonlocal wait_since
        if wait_since is None:
            return
        span = end - wait_since
        pieces[wait_bucket].append(span)
        if wait_bucket == _WAIT_MAIN and span > 0.0 \
                and event.kind == "start":
            named = _blocking_ids(collector, event, job_id, wait_since)
            if named:
                share = span / len(named)
                for jid in named:
                    blockers.setdefault(jid, []).append(share)
            else:
                unattributed.append(span)
        wait_since = None

    for event in timeline:
        kind = event.kind
        if kind == "start":
            close_wait(event.time, event)
            run_t0 = event.time
            run_overhead = float(event.data.get("overhead") or 0.0)
            p0 = event.data.get("progress")
            run_p0 = float(p0) if p0 is not None else carried
            # A start below the carried progress is a discard: the
            # gap was thrown away (profiling eviction restarts from
            # scratch, Lucid's non-intrusive contract).
            if run_p0 < carried:
                pop_work(carried - run_p0, None)
                carried = run_p0
            run_profiling = bool(event.data.get("profiling"))
            running = True
        elif kind in ("stop", "preempt"):
            if running:
                p_end = event.data.get("progress")
                close_run(event.time, float(p_end) if p_end is not None
                          else run_p0 + (event.time - run_t0))
            wait_since = event.time
            wait_bucket = _WAIT_MAIN
        elif kind == "crash":
            lost = float(event.data.get("lost") or 0.0)
            if running:
                checkpoint = event.data.get("progress")
                if checkpoint is not None:
                    p_end = float(checkpoint) + lost
                else:
                    p_end = run_p0 + (event.time - run_t0)
                close_run(event.time, p_end)
            pop_work(lost, _WAIT_FAULT)
            carried -= min(carried, lost)
            wait_since = event.time
            wait_bucket = _WAIT_FAULT
        elif kind == "retry":
            close_wait(event.time, event)
            wait_since = event.time
            wait_bucket = (_WAIT_PROFILING
                           if collector.route_of(event) == "profiler"
                           else _WAIT_MAIN)
        elif kind == "finish":
            p_end = event.data.get("progress")
            if running:
                close_run(event.time, float(p_end) if p_end is not None
                          else run_p0 + (event.time - run_t0))
        elif kind == "job_failed":
            if running:
                p_end = event.data.get("progress")
                close_run(event.time, float(p_end) if p_end is not None
                          else run_p0 + (event.time - run_t0))
            elif wait_since is not None:
                close_wait(event.time, event)
        # "submit" opens the initial wait (handled above);
        # "time_limit" is a marker — the eviction arrives as "stop".

    # Terminal work classification: surviving progress of a finished
    # job is its pure compute; a permanently failed job's progress
    # never became a completion, so it counts as fault loss.
    remaining = math.fsum(w for w, _ in survive)
    pieces["compute" if outcome == "finished" else "fault_retry"].append(
        remaining)

    values = {name: math.fsum(parts) for name, parts in pieces.items()}
    for name, value in values.items():
        if -_NOISE_EPS < value < 0.0:
            values[name] = 0.0
    jct = end_time - submit_time
    residual = jct - math.fsum(values.values())
    largest = max(values, key=lambda name: values[name])
    values[largest] += residual

    result = JCTDecomposition(
        job_id=job_id, jct=jct, submit_time=submit_time,
        end_time=end_time, outcome=outcome, residual=residual,
        unattributed_wait=math.fsum(unattributed))
    for name, value in values.items():
        setattr(result, name, value)
    result.blockers = {jid: math.fsum(parts)
                       for jid, parts in sorted(blockers.items())}
    return result


def decompose_all(collector: LineageCollector
                  ) -> Dict[int, JCTDecomposition]:
    """Decompositions for every completed job, keyed by job id."""
    return {job_id: decompose(collector, job_id)
            for job_id in collector.completed_job_ids()}


# ----------------------------------------------------------------------
# Critical path and cluster-wide blame
# ----------------------------------------------------------------------
def critical_path(collector: LineageCollector,
                  job_id: int) -> List[LineageEvent]:
    """The chain of events that determined this job's completion time.

    Walks backwards from the terminal event choosing the *binding*
    cause at each node: the latest-time cause; on ties, lifecycle
    events beat the synthetic scheduler-pass node (the job's own
    history is the informative chain) and record order breaks what
    remains (simultaneous frees resolve to the one the engine
    processed last).  Returns the chain oldest first.
    """
    terminal_id = collector._terminal.get(job_id)
    if terminal_id is None:
        timeline = collector.events_of(job_id)
        if not timeline:
            raise KeyError(f"job {job_id} has no lineage events")
        terminal_id = timeline[-1].event_id
    chain: List[LineageEvent] = []
    seen: Dict[int, None] = {}
    current: Optional[int] = terminal_id
    while current is not None and current not in seen:
        seen.setdefault(current)
        event = collector.events[current]
        chain.append(event)
        if not event.causes:
            break
        current = max(
            event.causes,
            key=lambda cid: (collector.events[cid].time,
                             collector.events[cid].kind != "sched_pass",
                             cid))
    chain.reverse()
    return chain


@dataclass(frozen=True)
class BlameRow:
    """One aggregate blocker: total wait it induced across victims."""

    job_id: int
    induced_wait: float
    n_victims: int


def blame_table(
    decompositions: Mapping[int, JCTDecomposition], top: int = 10,
) -> List[BlameRow]:
    """Top blockers by aggregate induced main-queue wait."""
    induced: Dict[int, float] = {}
    victims: Dict[int, int] = {}
    for decomposition in decompositions.values():
        for blocker, seconds in decomposition.blockers.items():
            induced[blocker] = induced.get(blocker, 0.0) + seconds
            victims[blocker] = victims.get(blocker, 0) + 1
    rows = [BlameRow(job_id=jid, induced_wait=seconds,
                     n_victims=victims[jid])
            for jid, seconds in induced.items()]
    rows.sort(key=lambda row: (-row.induced_wait, row.job_id))
    return rows[:top]


# ----------------------------------------------------------------------
# Offline reconstruction from tracer JSONL
# ----------------------------------------------------------------------
def lineage_from_trace(events: Iterable[Any],
                       max_events: int = 2_000_000) -> LineageCollector:
    """Rebuild the causal DAG from traced events (live-path parity).

    ``events`` are :class:`~repro.obs.tracer.TraceEvent`-shaped objects
    (``time`` / ``kind`` / ``job_id`` / ``data``), e.g. from
    ``events_from_dicts(read_jsonl(path))``.  Scheduler ``sched_*``
    events supply the routing annotations the live path gets via
    :meth:`LineageCollector.note_routing`.
    """
    collector = LineageCollector(max_events=max_events)
    for event in events:
        kind = str(event.kind)
        data: Mapping[str, Any] = event.data or {}
        time = float(event.time)
        job_id: Optional[int] = event.job_id
        if kind == "submit" and job_id is not None:
            collector.on_submit(time, job_id,
                                gpu_num=int(data.get("gpu_num") or 0),
                                vc=data.get("vc"))
        elif kind in ("sched_submit", "sched_retry"):
            routed = data.get("routed")
            if routed is not None and job_id is not None:
                collector.note_routing(job_id, str(routed))
        elif kind == "start" and job_id is not None:
            progress = data.get("progress")
            collector.on_start(
                time, job_id, list(data.get("gpus") or ()),
                profiling=bool(data.get("profiling")),
                overhead=float(data.get("overhead") or 0.0),
                progress=float(progress) if progress is not None
                else None)
        elif kind in ("stop", "preempt") and job_id is not None:
            collector.on_stop(
                time, job_id, list(data.get("gpus") or ()),
                preempted=(kind == "preempt"),
                progress=float(data.get("progress") or 0.0),
                profiling=bool(data.get("profiling")))
        elif kind == "finish" and job_id is not None:
            progress = data.get("progress")
            collector.on_finish(
                time, job_id, list(data.get("gpus") or ()),
                progress=float(progress) if progress is not None
                else None,
                profiling=bool(data.get("profiling")),
                jct=data.get("jct"))
        elif kind == "time_limit" and job_id is not None:
            collector.on_time_limit(
                time, job_id,
                progress=float(data.get("progress") or 0.0),
                profiling=bool(data.get("profiling")))
        elif kind == "node_fail":
            collector.on_node_fail(time, data.get("node"),
                                   list(data.get("victims") or ()))
        elif kind == "node_recover":
            collector.on_node_recover(time, data.get("node"))
        elif kind == "crash" and job_id is not None:
            progress = data.get("progress")
            collector.on_crash(
                time, job_id, list(data.get("gpus") or ()),
                cause=str(data.get("cause") or "crash"),
                lost=float(data.get("lost") or 0.0),
                backoff=float(data.get("backoff") or 0.0),
                progress=float(progress) if progress is not None
                else None,
                profiling=bool(data.get("profiling")))
        elif kind == "retry" and job_id is not None:
            collector.on_retry(time, job_id)
        elif kind == "job_failed" and job_id is not None:
            progress = data.get("progress")
            collector.on_job_failed(
                time, job_id, cause=str(data.get("cause") or "crash"),
                gpus=list(data.get("gpus") or ()),
                progress=float(progress) if progress is not None
                else None,
                profiling=bool(data.get("profiling")))
    return collector
