"""Scheduler decision audit: why did each placement happen?

The paper sells Lucid as *interpretable*: every allocation should be
explainable from the model outputs that produced it.  The audit log is the
post-hoc answer machine — for each placement the orchestrator records a
:class:`PlacementDecision` carrying its inputs (priority value, estimated
duration, sharing mode, starvation-relief trigger) and, when the Binder
was consulted, the :class:`BinderVerdict` (chosen mate, sharing scores,
GSS budget, and the rejection-reason census over the candidates that were
turned down).  ``audit.explain(job_id)`` then renders a human-readable
answer to "why was job 42 packed with job 17 instead of placed
exclusively?".

The audit is a pure observer: it never influences scheduling, and it is
``None`` by default so un-instrumented runs pay nothing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.models.attrib import Attribution
from repro.obs.ioutil import ensure_parent, tmp_path
from repro.obs.tracer import Tracer

__all__ = [
    "BinderVerdict",
    "PlacementDecision",
    "RefitRecord",
    "Counterfactual",
    "DecisionAudit",
]


@dataclass(frozen=True)
class BinderVerdict:
    """Outcome of one Affine-Jobpair Binder mate search.

    ``rejections`` maps a rejection reason (e.g. ``"gss_budget"``,
    ``"has_mate"``, ``"memory"``) to the number of running candidates
    dismissed for that reason, so a ``mate_id is None`` verdict still
    explains *why* nobody qualified.
    """

    job_id: int
    mate_id: Optional[int]
    mode: str
    gss_capacity: int
    job_score: Optional[int] = None
    mate_score: Optional[int] = None
    candidates: int = 0
    rejections: Dict[str, int] = field(default_factory=dict)
    #: Why the Packing Analyze Model assigned ``job_score`` — a
    #: decision-path attribution of the expected sharing score over the
    #: job's profiled features.  ``None`` unless the audit was built with
    #: ``attribution=True``.
    attribution: Optional[Attribution] = None

    @property
    def accepted(self) -> bool:
        return self.mate_id is not None

    def reason_text(self) -> str:
        if self.accepted:
            text = (f"binder accepted mate {self.mate_id} "
                    f"(scores {self.job_score}+{self.mate_score} "
                    f"<= GSS {self.gss_capacity}, mode {self.mode})")
        elif self.mode == "DISABLED":
            text = "binder declined: sharing disabled by dynamic strategy"
        elif not self.candidates:
            text = "binder declined: no running candidates"
        else:
            census = ", ".join(f"{reason} x{count}" for reason, count
                               in sorted(self.rejections.items()))
            text = (f"binder declined all {self.candidates} "
                    f"candidates ({census})")
        if self.attribution is not None:
            text += f"; sharing score {self.attribution.render()}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "job_id": self.job_id,
            "mate_id": self.mate_id,
            "mode": self.mode,
            "gss_capacity": self.gss_capacity,
            "job_score": self.job_score,
            "mate_score": self.mate_score,
            "candidates": self.candidates,
            "rejections": dict(self.rejections),
        }
        if self.attribution is not None:
            out["attribution"] = self.attribution.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BinderVerdict":
        attribution = data.get("attribution")
        return cls(
            job_id=int(data["job_id"]),
            mate_id=data.get("mate_id"),
            mode=str(data.get("mode", "DEFAULT")),
            gss_capacity=int(data.get("gss_capacity", 0)),
            job_score=data.get("job_score"),
            mate_score=data.get("mate_score"),
            candidates=int(data.get("candidates", 0)),
            rejections=dict(data.get("rejections", {})),
            attribution=(Attribution.from_dict(attribution)
                         if attribution is not None else None))


@dataclass(frozen=True)
class PlacementDecision:
    """One explained allocation.

    ``mode`` is one of ``"shared"`` (packed via the Binder),
    ``"exclusive"`` (consolidated placement), ``"relaxed"`` (fragmented
    placement granted by starvation relief), ``"shared-fallback"``
    (Apathetic-mode packing after exclusive placement failed) or
    ``"profiling"`` (a bounded run on the profiling cluster).
    """

    time: float
    job_id: int
    mode: str
    gpu_ids: Tuple[int, ...]
    node_ids: Tuple[int, ...]
    priority: float = 0.0
    estimated_duration: Optional[float] = None
    sharing_mode: str = "off"
    mate_id: Optional[int] = None
    starving: bool = False
    binder: Optional[BinderVerdict] = None
    note: str = ""
    #: Why the Workload Estimate Model predicted ``estimated_duration`` —
    #: per-term GA²M contributions in log-duration space.  ``None`` unless
    #: the audit was built with ``attribution=True``.
    attribution: Optional[Attribution] = None

    def explain(self) -> str:
        """One-paragraph human-readable justification."""
        parts = [f"t={self.time:.0f}s job {self.job_id}"]
        if self.mode == "shared":
            parts.append(f"packed with job {self.mate_id} on "
                         f"GPUs {list(self.gpu_ids)}")
        elif self.mode == "shared-fallback":
            parts.append(f"packed with job {self.mate_id} on "
                         f"GPUs {list(self.gpu_ids)} after exclusive "
                         "placement found no free consolidated block")
        elif self.mode == "relaxed":
            parts.append(f"placed on fragmented GPUs {list(self.gpu_ids)} "
                         f"across nodes {sorted(set(self.node_ids))} by "
                         "starvation relief")
        elif self.mode == "profiling":
            parts.append(f"started on profiler GPUs {list(self.gpu_ids)}")
        else:
            parts.append(f"placed exclusively on GPUs {list(self.gpu_ids)}")
        if self.mode != "profiling":
            parts.append(f"priority={self.priority:.1f}")
            if self.estimated_duration is not None:
                parts.append(f"estimated duration "
                             f"{self.estimated_duration:.0f}s")
            if self.attribution is not None:
                parts.append(f"duration model (log-space) "
                             f"{self.attribution.render()}")
            parts.append(f"sharing mode '{self.sharing_mode}'")
        if self.starving:
            parts.append("starvation-relief triggered")
        if self.binder is not None:
            parts.append(self.binder.reason_text())
        if self.note:
            parts.append(self.note)
        return "; ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "t": self.time,
            "job_id": self.job_id,
            "mode": self.mode,
            "gpu_ids": list(self.gpu_ids),
            "node_ids": list(self.node_ids),
            "priority": self.priority,
            "estimated_duration": self.estimated_duration,
            "sharing_mode": self.sharing_mode,
            "mate_id": self.mate_id,
            "starving": self.starving,
        }
        if self.binder is not None:
            out["binder"] = self.binder.to_dict()
        if self.note:
            out["note"] = self.note
        if self.attribution is not None:
            out["attribution"] = self.attribution.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlacementDecision":
        binder = data.get("binder")
        attribution = data.get("attribution")
        return cls(
            time=float(data["t"]),
            job_id=int(data["job_id"]),
            mode=str(data["mode"]),
            gpu_ids=tuple(data.get("gpu_ids", ())),
            node_ids=tuple(data.get("node_ids", ())),
            priority=float(data.get("priority", 0.0)),
            estimated_duration=data.get("estimated_duration"),
            sharing_mode=str(data.get("sharing_mode", "off")),
            mate_id=data.get("mate_id"),
            starving=bool(data.get("starving", False)),
            binder=(BinderVerdict.from_dict(binder)
                    if binder is not None else None),
            note=str(data.get("note", "")),
            attribution=(Attribution.from_dict(attribution)
                         if attribution is not None else None))


@dataclass(frozen=True)
class RefitRecord:
    """One Update Engine model refresh, with optional fit-quality metrics.

    ``r2`` is the training R² of the refreshed model in its native target
    space (log-duration for the Workload Estimate Model), ``samples`` the
    size of the fitted history, and ``wall_seconds`` the refit's wall time
    measured through the simulator profiler (``None`` on unprofiled runs —
    simulation code never reads the wall clock directly)."""

    time: float
    model: str
    new_records: int
    r2: Optional[float] = None
    samples: Optional[int] = None
    wall_seconds: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"t": self.time, "model": self.model,
                               "new_records": self.new_records}
        if self.r2 is not None:
            out["r2"] = self.r2
        if self.samples is not None:
            out["samples"] = self.samples
        if self.wall_seconds is not None:
            out["wall_seconds"] = self.wall_seconds
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RefitRecord":
        return cls(time=float(data["t"]), model=str(data["model"]),
                   new_records=int(data["new_records"]),
                   r2=data.get("r2"), samples=data.get("samples"),
                   wall_seconds=data.get("wall_seconds"))


@dataclass(frozen=True)
class Counterfactual:
    """A what-if probe: the frozen model re-run on a perturbed input.

    ``baseline`` is the attribution recorded at decision time;
    ``probe`` is the same (frozen) model evaluated on the baseline's
    feature vector with ``overrides`` applied.  This answers "what would
    the model have predicted if gpu_util had been 90?" — it does **not**
    re-simulate scheduling, and the model is not refit.
    """

    job_id: int
    which: str
    baseline: Attribution
    probe: Attribution
    overrides: Dict[str, float]

    @property
    def delta(self) -> float:
        return self.probe.predicted - self.baseline.predicted

    def render(self) -> str:
        changes = ", ".join(f"{name}={value:g}" for name, value
                            in sorted(self.overrides.items()))
        return (f"job {self.job_id} {self.which}: {self.baseline.predicted:.3g}"
                f" -> {self.probe.predicted:.3g} (delta {self.delta:+.3g})"
                f" with {changes}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "which": self.which,
            "overrides": dict(self.overrides),
            "baseline": self.baseline.to_dict(),
            "probe": self.probe.to_dict(),
            "delta": self.delta,
        }


class DecisionAudit:
    """Collects placement decisions and renders explanations.

    Parameters
    ----------
    tracer:
        Optional tracer; every recorded decision is mirrored as a
        ``"decision"`` trace event so the JSONL log is self-contained.
    attribution:
        When ``True``, the scheduler's model calls additionally attach
        :class:`~repro.models.attrib.Attribution` records to verdicts and
        decisions (and :meth:`counterfactual` becomes available).  Off by
        default — the zero-overhead contract: scheduling is bit-identical
        either way, attribution merely *records* more.
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 attribution: bool = False) -> None:
        self.tracer = tracer
        self.attribution = attribution
        self.records: List[PlacementDecision] = []
        self.refits: List[RefitRecord] = []
        self._pending_binder: Dict[int, BinderVerdict] = {}
        #: Job-level attributor (set by the scheduler when attribution is
        #: on): ``job -> Optional[Attribution]`` for the duration model.
        self._job_attributor: Optional[
            Callable[[Any], Optional[Attribution]]] = None
        #: Frozen-model re-run hooks for :meth:`counterfactual`, keyed by
        #: model kind (``"duration"``, ``"sharing"``): a callable mapping
        #: a raw feature vector to a fresh :class:`Attribution`.
        self._vector_attributors: Dict[
            str, Callable[[Sequence[float]], Attribution]] = {}

    # ------------------------------------------------------------------
    # Attribution plumbing (bound by the scheduler's ``attach``)
    # ------------------------------------------------------------------
    def bind_job_attributor(
            self, fn: Callable[[Any], Optional[Attribution]]) -> None:
        self._job_attributor = fn

    def bind_vector_attributor(
            self, which: str,
            fn: Callable[[Sequence[float]], Attribution]) -> None:
        self._vector_attributors[which] = fn

    def attribution_for(self, job: Any) -> Optional[Attribution]:
        """Duration-model attribution of one job, or ``None`` when off."""
        if not self.attribution or self._job_attributor is None:
            return None
        return self._job_attributor(job)

    # ------------------------------------------------------------------
    # Recording (called by the binder / orchestrator / Lucid)
    # ------------------------------------------------------------------
    def note_binder(self, verdict: BinderVerdict) -> None:
        """Stash the latest binder verdict for a job.

        The orchestrator collects it into the job's placement decision via
        :meth:`take_binder`; verdicts for jobs that end up unplaced are
        simply overwritten on the next pass.
        """
        self._pending_binder[verdict.job_id] = verdict

    def take_binder(self, job_id: int) -> Optional[BinderVerdict]:
        return self._pending_binder.pop(job_id, None)

    def record(self, decision: PlacementDecision) -> PlacementDecision:
        self.records.append(decision)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(decision.time, "decision", decision.job_id,
                             **{k: v for k, v in decision.to_dict().items()
                                if k not in ("t", "job_id")})
        return decision

    def record_refit(self, time: float, model: str, new_records: int,
                     r2: Optional[float] = None,
                     samples: Optional[int] = None,
                     wall_seconds: Optional[float] = None) -> None:
        record = RefitRecord(time, model, new_records, r2=r2,
                             samples=samples, wall_seconds=wall_seconds)
        self.refits.append(record)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(time, "refit", None,
                             **{k: v for k, v in record.to_dict().items()
                                if k != "t"})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def for_job(self, job_id: int) -> List[PlacementDecision]:
        return [d for d in self.records if d.job_id == job_id]

    def explain(self, job_id: int) -> str:
        decisions = self.for_job(job_id)
        if not decisions:
            return f"no recorded decisions for job {job_id}"
        return "\n".join(d.explain() for d in decisions)

    def counterfactual(self, job_id: int, which: str = "duration",
                       **overrides: float) -> Counterfactual:
        """Re-run a frozen model on a perturbed feature vector.

        Finds the job's latest recorded attribution of the requested kind
        (``"duration"`` on the placement decision, ``"sharing"`` on its
        binder verdict), applies the keyword overrides to the raw feature
        vector, and evaluates the *frozen* model on the result.  No
        scheduling is re-simulated and the model is not refit — the answer
        is "what the model would have said", nothing more.

        Raises ``KeyError`` for unknown jobs / kinds and ``ValueError``
        for unknown feature names.
        """
        fn = self._vector_attributors.get(which)
        if fn is None:
            raise KeyError(
                f"no frozen model registered for {which!r}; "
                f"known: {sorted(self._vector_attributors)}")
        baseline: Optional[Attribution] = None
        for decision in reversed(self.for_job(job_id)):
            if which == "sharing":
                if decision.binder is not None:
                    baseline = decision.binder.attribution
            else:
                baseline = decision.attribution
            if baseline is not None:
                break
        if baseline is None:
            raise KeyError(f"no recorded {which} attribution for "
                           f"job {job_id} (was the audit built with "
                           f"attribution=True?)")
        values = list(baseline.values)
        for name, value in overrides.items():
            try:
                idx = baseline.features.index(name)
            except ValueError:
                raise ValueError(
                    f"unknown feature {name!r}; known: "
                    f"{list(baseline.features)}") from None
            values[idx] = float(value)
        probe = fn(values)
        return Counterfactual(job_id=job_id, which=which,
                              baseline=baseline, probe=probe,
                              overrides={k: float(v)
                                         for k, v in overrides.items()})

    def attribution_coverage(self) -> Tuple[int, int]:
        """(main-cluster decisions, decisions carrying an attribution)."""
        main = [d for d in self.records if d.mode != "profiling"]
        with_attr = sum(1 for d in main if d.attribution is not None)
        return len(main), with_attr

    def packing_rate(self) -> float:
        """Fraction of recorded main-cluster placements that were packed."""
        main = [d for d in self.records if d.mode != "profiling"]
        if not main:
            return 0.0
        packed = sum(1 for d in main
                     if d.mode in ("shared", "shared-fallback"))
        return packed / len(main)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self, path: str) -> int:
        """Write all decisions (and refits) as JSON lines; returns count.

        Parent directories are created and the write is atomic (tmp file
        + rename), so a crash mid-export never leaves a truncated log at
        the destination path.
        """
        n = 0
        ensure_parent(path)
        tmp = tmp_path(path)
        with open(tmp, "w") as handle:
            for decision in self.records:
                handle.write(json.dumps(decision.to_dict(),
                                        separators=(",", ":")) + "\n")
                n += 1
            for refit in self.refits:
                record = refit.to_dict()
                record["kind"] = "refit"
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
                n += 1
        os.replace(tmp, path)
        return n

    @classmethod
    def from_dicts(cls, records: Iterable[Dict[str, Any]]
                   ) -> "DecisionAudit":
        """Rehydrate an audit from exported JSONL dicts.

        Accepts both ``to_jsonl`` output and the ``"decision"``/``"refit"``
        events of a tracer JSONL log (which carry a ``kind`` key).
        """
        audit = cls()
        for record in records:
            kind = record.get("kind")
            if kind == "refit":
                audit.refits.append(RefitRecord.from_dict(record))
            elif kind in (None, "decision"):
                audit.records.append(PlacementDecision.from_dict(record))
        return audit

    @classmethod
    def from_jsonl(cls, path: str) -> "DecisionAudit":
        """Load an audit exported by :meth:`to_jsonl` (or a trace log)."""
        records: List[Dict[str, Any]] = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return cls.from_dicts(records)
