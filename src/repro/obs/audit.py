"""Scheduler decision audit: why did each placement happen?

The paper sells Lucid as *interpretable*: every allocation should be
explainable from the model outputs that produced it.  The audit log is the
post-hoc answer machine — for each placement the orchestrator records a
:class:`PlacementDecision` carrying its inputs (priority value, estimated
duration, sharing mode, starvation-relief trigger) and, when the Binder
was consulted, the :class:`BinderVerdict` (chosen mate, sharing scores,
GSS budget, and the rejection-reason census over the candidates that were
turned down).  ``audit.explain(job_id)`` then renders a human-readable
answer to "why was job 42 packed with job 17 instead of placed
exclusively?".

The audit is a pure observer: it never influences scheduling, and it is
``None`` by default so un-instrumented runs pay nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.tracer import Tracer

__all__ = [
    "BinderVerdict",
    "PlacementDecision",
    "RefitRecord",
    "DecisionAudit",
]


@dataclass(frozen=True)
class BinderVerdict:
    """Outcome of one Affine-Jobpair Binder mate search.

    ``rejections`` maps a rejection reason (e.g. ``"gss_budget"``,
    ``"has_mate"``, ``"memory"``) to the number of running candidates
    dismissed for that reason, so a ``mate_id is None`` verdict still
    explains *why* nobody qualified.
    """

    job_id: int
    mate_id: Optional[int]
    mode: str
    gss_capacity: int
    job_score: Optional[int] = None
    mate_score: Optional[int] = None
    candidates: int = 0
    rejections: Dict[str, int] = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        return self.mate_id is not None

    def reason_text(self) -> str:
        if self.accepted:
            return (f"binder accepted mate {self.mate_id} "
                    f"(scores {self.job_score}+{self.mate_score} "
                    f"<= GSS {self.gss_capacity}, mode {self.mode})")
        if self.mode == "DISABLED":
            return "binder declined: sharing disabled by dynamic strategy"
        if not self.candidates:
            return "binder declined: no running candidates"
        census = ", ".join(f"{reason} x{count}" for reason, count
                           in sorted(self.rejections.items()))
        return f"binder declined all {self.candidates} candidates ({census})"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "mate_id": self.mate_id,
            "mode": self.mode,
            "gss_capacity": self.gss_capacity,
            "job_score": self.job_score,
            "mate_score": self.mate_score,
            "candidates": self.candidates,
            "rejections": dict(self.rejections),
        }


@dataclass(frozen=True)
class PlacementDecision:
    """One explained allocation.

    ``mode`` is one of ``"shared"`` (packed via the Binder),
    ``"exclusive"`` (consolidated placement), ``"relaxed"`` (fragmented
    placement granted by starvation relief), ``"shared-fallback"``
    (Apathetic-mode packing after exclusive placement failed) or
    ``"profiling"`` (a bounded run on the profiling cluster).
    """

    time: float
    job_id: int
    mode: str
    gpu_ids: Tuple[int, ...]
    node_ids: Tuple[int, ...]
    priority: float = 0.0
    estimated_duration: Optional[float] = None
    sharing_mode: str = "off"
    mate_id: Optional[int] = None
    starving: bool = False
    binder: Optional[BinderVerdict] = None
    note: str = ""

    def explain(self) -> str:
        """One-paragraph human-readable justification."""
        parts = [f"t={self.time:.0f}s job {self.job_id}"]
        if self.mode == "shared":
            parts.append(f"packed with job {self.mate_id} on "
                         f"GPUs {list(self.gpu_ids)}")
        elif self.mode == "shared-fallback":
            parts.append(f"packed with job {self.mate_id} on "
                         f"GPUs {list(self.gpu_ids)} after exclusive "
                         "placement found no free consolidated block")
        elif self.mode == "relaxed":
            parts.append(f"placed on fragmented GPUs {list(self.gpu_ids)} "
                         f"across nodes {sorted(set(self.node_ids))} by "
                         "starvation relief")
        elif self.mode == "profiling":
            parts.append(f"started on profiler GPUs {list(self.gpu_ids)}")
        else:
            parts.append(f"placed exclusively on GPUs {list(self.gpu_ids)}")
        if self.mode != "profiling":
            parts.append(f"priority={self.priority:.1f}")
            if self.estimated_duration is not None:
                parts.append(f"estimated duration "
                             f"{self.estimated_duration:.0f}s")
            parts.append(f"sharing mode '{self.sharing_mode}'")
        if self.starving:
            parts.append("starvation-relief triggered")
        if self.binder is not None:
            parts.append(self.binder.reason_text())
        if self.note:
            parts.append(self.note)
        return "; ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "t": self.time,
            "job_id": self.job_id,
            "mode": self.mode,
            "gpu_ids": list(self.gpu_ids),
            "node_ids": list(self.node_ids),
            "priority": self.priority,
            "estimated_duration": self.estimated_duration,
            "sharing_mode": self.sharing_mode,
            "mate_id": self.mate_id,
            "starving": self.starving,
        }
        if self.binder is not None:
            out["binder"] = self.binder.to_dict()
        if self.note:
            out["note"] = self.note
        return out


@dataclass(frozen=True)
class RefitRecord:
    """One Update Engine model refresh."""

    time: float
    model: str
    new_records: int

    def to_dict(self) -> Dict[str, Any]:
        return {"t": self.time, "model": self.model,
                "new_records": self.new_records}


class DecisionAudit:
    """Collects placement decisions and renders explanations.

    Parameters
    ----------
    tracer:
        Optional tracer; every recorded decision is mirrored as a
        ``"decision"`` trace event so the JSONL log is self-contained.
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer
        self.records: List[PlacementDecision] = []
        self.refits: List[RefitRecord] = []
        self._pending_binder: Dict[int, BinderVerdict] = {}

    # ------------------------------------------------------------------
    # Recording (called by the binder / orchestrator / Lucid)
    # ------------------------------------------------------------------
    def note_binder(self, verdict: BinderVerdict) -> None:
        """Stash the latest binder verdict for a job.

        The orchestrator collects it into the job's placement decision via
        :meth:`take_binder`; verdicts for jobs that end up unplaced are
        simply overwritten on the next pass.
        """
        self._pending_binder[verdict.job_id] = verdict

    def take_binder(self, job_id: int) -> Optional[BinderVerdict]:
        return self._pending_binder.pop(job_id, None)

    def record(self, decision: PlacementDecision) -> PlacementDecision:
        self.records.append(decision)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(decision.time, "decision", decision.job_id,
                             **{k: v for k, v in decision.to_dict().items()
                                if k not in ("t", "job_id")})
        return decision

    def record_refit(self, time: float, model: str,
                     new_records: int) -> None:
        self.refits.append(RefitRecord(time, model, new_records))
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(time, "refit", None, model=model,
                             new_records=new_records)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def for_job(self, job_id: int) -> List[PlacementDecision]:
        return [d for d in self.records if d.job_id == job_id]

    def explain(self, job_id: int) -> str:
        decisions = self.for_job(job_id)
        if not decisions:
            return f"no recorded decisions for job {job_id}"
        return "\n".join(d.explain() for d in decisions)

    def packing_rate(self) -> float:
        """Fraction of recorded main-cluster placements that were packed."""
        main = [d for d in self.records if d.mode != "profiling"]
        if not main:
            return 0.0
        packed = sum(1 for d in main
                     if d.mode in ("shared", "shared-fallback"))
        return packed / len(main)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self, path: str) -> int:
        """Write all decisions (and refits) as JSON lines; returns count."""
        n = 0
        with open(path, "w") as handle:
            for decision in self.records:
                handle.write(json.dumps(decision.to_dict(),
                                        separators=(",", ":")) + "\n")
                n += 1
            for refit in self.refits:
                record = refit.to_dict()
                record["kind"] = "refit"
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
                n += 1
        return n
