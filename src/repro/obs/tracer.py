"""Structured event tracing for the simulator.

Lucid's headline property is *interpretability* (paper §3, Figure 7): an
operator can ask why any scheduling action was taken.  The tracer is the
substrate that makes the reproduction equally inspectable: the engine and
the schedulers emit :class:`TraceEvent` records at every lifecycle point
(submit / start / stop / preempt / finish / time-limit / speed change /
decision / refit), and the tracer stores them in a bounded in-memory ring
buffer with an optional JSONL sink for offline analysis.

The contract that keeps the simulator honest:

* **Zero overhead when disabled.**  The default tracer is
  :data:`NULL_TRACER`, whose ``enabled`` flag is ``False``; every emission
  site in the hot path is guarded by that flag, so a run without tracing
  executes the exact instruction stream of the seed engine and produces a
  bit-identical :class:`~repro.sim.metrics.SimulationResult`.
* **No behavioural feedback.**  Tracers observe; they never mutate jobs,
  GPUs or scheduler state.
"""

from __future__ import annotations

import json
import os
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Union

from repro.obs.ioutil import ensure_parent, tmp_path

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RingBufferTracer",
    "read_jsonl",
]


#: Canonical event kinds emitted by the engine and schedulers.  ``kind`` is
#: an open vocabulary (extensions may add their own), but these names are
#: stable and relied upon by the timeline exporter and the tests.
ENGINE_EVENT_KINDS = (
    "submit",      # job arrived (engine dispatched its SUBMIT event)
    "start",       # job began (or resumed) executing on a GPU set
    "stop",        # job was removed from its GPUs without finishing
    "preempt",     # like stop, but counted as a preemption
    "finish",      # job completed all its work
    "time_limit",  # a bounded (profiling) run hit its wall-clock limit
    "speed",       # a running job's effective speed changed
    "decision",    # a scheduler placement decision (see repro.obs.audit)
    "refit",       # the Update Engine refreshed a learned model
    # Fault-injection kinds (see repro.faults):
    "node_fail",     # a node went down, killing its residents
    "node_recover",  # a failed node returned to service
    "crash",         # a fault killed a running job (will retry)
    "retry",         # a crashed job's backoff expired; requeued
    "job_failed",    # retry budget exhausted; job abandoned
    "slowdown",      # a node entered a straggler window
    "slowdown_end",  # the straggler window closed
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured simulator event.

    ``data`` carries kind-specific payload (GPU ids, speed, mates, …) and
    is stored as a plain dict so events serialize to JSON unmodified.
    """

    time: float
    kind: str
    job_id: Optional[int] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"t": self.time, "kind": self.kind}
        if self.job_id is not None:
            out["job_id"] = self.job_id
        out.update(self.data)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"),
                          sort_keys=False, default=_json_default)


def _json_default(obj: Any):
    """Serialize the odd numpy scalar that sneaks into event payloads."""
    if hasattr(obj, "item"):
        return obj.item()
    return str(obj)


class Tracer:
    """Tracer protocol: ``emit`` plus an ``enabled`` fast-path flag.

    Emission sites MUST guard on :attr:`enabled` before building payload
    dicts, e.g. ``if tracer.enabled: tracer.emit(...)`` — constructing the
    keyword arguments is the expensive part, not the call itself.
    """

    #: Hot-path guard; ``False`` means every emission site is skipped.
    enabled: bool = False

    def emit(self, time: float, kind: str, job_id: Optional[int] = None,
             **data: Any) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial
        pass

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTracer(Tracer):
    """The default no-op tracer (disabled)."""

    enabled = False

    def emit(self, time: float, kind: str, job_id: Optional[int] = None,
             **data: Any) -> None:
        pass


#: Shared singleton used as the engine default.
NULL_TRACER = NullTracer()


class RingBufferTracer(Tracer):
    """In-memory ring buffer of events with an optional JSONL sink.

    Parameters
    ----------
    capacity:
        Maximum events retained in memory; older events are evicted FIFO
        (the JSONL sink, when set, still receives every event).
    sink:
        A file path or open text handle; every event is appended as one
        JSON line.  Paths are opened lazily on first emission — parent
        directories are created, events stream into a ``.tmp`` sibling,
        and :meth:`close` atomically renames it to the final path (the
        tracer is a context manager), so a crash mid-run never leaves a
        truncated log masquerading as complete.  External handles are
        flushed but neither closed nor renamed.
    """

    enabled = True

    def __init__(self, capacity: int = 1_000_000,
                 sink: Optional[Union[str, IO[str]]] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buffer: "deque[TraceEvent]" = deque(maxlen=capacity)
        self._sink_path: Optional[str] = None
        self._sink: Optional[IO[str]] = None
        self._owns_sink = False
        self.n_emitted = 0
        #: Events evicted from the ring buffer on overflow.  Silent loss
        #: is a footgun for long runs, so the count is surfaced on
        #: ``Telemetry.dropped_events`` and by ``repro trace``.  The JSONL
        #: sink (when set) still receives every event.
        self.n_dropped = 0
        if isinstance(sink, str):
            self._sink_path = sink
        elif sink is not None:
            self._sink = sink

    # ------------------------------------------------------------------
    def emit(self, time: float, kind: str, job_id: Optional[int] = None,
             **data: Any) -> None:
        event = TraceEvent(time=time, kind=kind, job_id=job_id, data=data)
        if len(self._buffer) == self.capacity:
            self.n_dropped += 1  # deque evicts the oldest event FIFO
        self._buffer.append(event)
        self.n_emitted += 1
        if self._sink_path is not None and self._sink is None:
            ensure_parent(self._sink_path)
            self._sink = open(tmp_path(self._sink_path), "w")
            self._owns_sink = True
        if self._sink is not None:
            self._sink.write(event.to_json() + "\n")

    def close(self) -> None:
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
                if self._sink_path is not None:
                    os.replace(tmp_path(self._sink_path), self._sink_path)
            self._sink = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        """Events currently retained, oldest first."""
        return list(self._buffer)

    def events_of(self, job_id: int) -> List[TraceEvent]:
        """All retained events of one job, in emission order."""
        return [e for e in self._buffer if e.job_id == job_id]

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        """All retained events matching any of the given kinds."""
        wanted = set(kinds)
        return [e for e in self._buffer if e.kind in wanted]

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of retained event kinds."""
        return dict(Counter(e.kind for e in self._buffer))


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL event log written by :class:`RingBufferTracer`."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def events_from_dicts(records: Iterable[Dict[str, Any]]) -> List[TraceEvent]:
    """Rehydrate :class:`TraceEvent` objects from JSONL dicts."""
    events = []
    for rec in records:
        rec = dict(rec)
        time = rec.pop("t")
        kind = rec.pop("kind")
        job_id = rec.pop("job_id", None)
        events.append(TraceEvent(time=time, kind=kind, job_id=job_id,
                                 data=rec))
    return events
