"""Small file-sink helpers shared by the observability writers.

Every JSONL/JSON/HTML sink in :mod:`repro.obs` goes through these two
functions so that (a) ``repro report --out dir/sub/`` works without the
caller pre-creating directories, and (b) a crash mid-write can never leave
a truncated file at the final path — content lands in a ``.tmp`` sibling
and is atomically renamed into place (`os.replace`) only once complete.
"""

from __future__ import annotations

import os

__all__ = ["ensure_parent", "atomic_write_text", "tmp_path"]


def ensure_parent(path: str) -> None:
    """Create the parent directory of ``path`` if it does not exist."""
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)


def tmp_path(path: str) -> str:
    """The temporary sibling a sink streams into before the final rename."""
    return path + ".tmp"


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + rename)."""
    ensure_parent(path)
    tmp = tmp_path(path)
    with open(tmp, "w") as handle:
        handle.write(text)
    os.replace(tmp, path)
