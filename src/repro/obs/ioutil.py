"""Small file-sink helpers shared by the observability writers.

Every JSONL/JSON/HTML sink in :mod:`repro.obs` (and the durable state
files of :mod:`repro.serve`) goes through these functions so that (a)
``repro report --out dir/sub/`` works without the caller pre-creating
directories, and (b) a crash mid-write can never leave a truncated file
at the final path — content lands in a ``.tmp`` sibling and is atomically
renamed into place (`os.replace`) only once complete.

Atomic rename protects against *process* crashes; it does not, on its
own, protect against power loss (the rename may be journaled before the
data blocks reach the platter).  Callers holding recovery-critical state
— the serve subsystem's WAL and result files — pass ``durable=True``,
which additionally ``fsync``\\ s the temp file before the rename and the
parent directory after it.
"""

from __future__ import annotations

import os

__all__ = [
    "ensure_parent",
    "atomic_write_text",
    "fsync_dir",
    "tmp_path",
]


def ensure_parent(path: str) -> None:
    """Create the parent directory of ``path`` if it does not exist."""
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)


def tmp_path(path: str) -> str:
    """The temporary sibling a sink streams into before the final rename."""
    return path + ".tmp"


def fsync_dir(path: str) -> None:
    """``fsync`` the directory containing ``path``.

    After ``os.replace``, the new directory entry lives in the parent
    directory's data; syncing it makes the rename itself durable across
    power loss, completing the write-ahead guarantee.
    """
    parent = os.path.dirname(os.path.abspath(path)) or "."
    fd = os.open(parent, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str, durable: bool = False) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + rename).

    With ``durable=True`` the temp file is ``fsync``\\ ed before the
    rename and the parent directory after it, so the completed write
    survives power loss — not just process death.  Off by default: most
    sinks (reports, timelines) prefer speed over power-loss durability.
    """
    ensure_parent(path)
    tmp = tmp_path(path)
    with open(tmp, "w") as handle:
        handle.write(text)
        if durable:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if durable:
        fsync_dir(path)
