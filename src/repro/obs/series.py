"""Fixed-interval cluster time series sampled during simulation.

:class:`~repro.sim.metrics.SimulationResult` aggregates a whole run into
scalars; the paper's queuing curves (Figure 9) and any future dashboard
need the *trajectory* instead.  :class:`SeriesCollector` samples cluster
state on a fixed simulated-time grid — GPU allocation / sharing /
memory, fragmentation, running and pending job counts, and the pending
queue length per virtual cluster — and exports the table as CSV or JSON.

Sampling semantics (the part that keeps it deterministic):

* Simulation state is piecewise-constant between event batches, so a
  grid point that falls *strictly between* two batches records the state
  left behind by the earlier batch — exactly what held at that instant.
* A grid point that coincides with an event batch records the state
  *after* every simultaneous event of that batch (drained in
  ``Event.seq`` order) and the follow-up scheduler pass have run, and it
  is recorded exactly once.  Sampling therefore never depends on how a
  timestamp's events happened to be ordered inside the batch.

Like the tracer, sanitizer and profiler, the collector is read-only and
``None``-when-off on the engine: a collected run is bit-identical to a
plain one (regression-tested), and a run without a collector pays a
single identity check per event batch.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.ioutil import atomic_write_text

from repro.workloads.job import JobStatus

__all__ = ["SERIES_SCHEMA", "SeriesCollector", "SeriesSample"]

#: Same simultaneity tolerance as the engine's event-drain loop.
_EPS = 1e-6

#: Job states that count as "pending" (waiting for placement).
_PENDING_STATES = (JobStatus.PENDING, JobStatus.PREEMPTED)

#: Schema tag written into JSON exports.
SERIES_SCHEMA = "repro-series/v1"


@dataclass(frozen=True)
class SeriesSample:
    """Cluster state at one sampled instant of simulated time."""

    time: float
    gpus_total: int
    #: GPUs hosting at least one job.
    gpus_busy: int
    #: ``gpus_busy / gpus_total``.
    gpu_alloc: float
    #: Fraction of GPUs hosting two or more jobs (colocated share).
    gpu_shared: float
    #: Fraction of aggregate device memory attached to jobs.
    memory_used: float
    #: Fraction of busy GPUs held by jobs spanning more nodes than their
    #: consolidated minimum (the placements paying the fragmentation
    #: penalty in :class:`~repro.sim.engine.Simulator`).
    fragmentation: float
    running_jobs: int
    pending_jobs: int
    #: Pending jobs per virtual cluster (every VC always present).
    queue_by_vc: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "time": self.time,
            "gpus_total": self.gpus_total,
            "gpus_busy": self.gpus_busy,
            "gpu_alloc": self.gpu_alloc,
            "gpu_shared": self.gpu_shared,
            "memory_used": self.memory_used,
            "fragmentation": self.fragmentation,
            "running_jobs": self.running_jobs,
            "pending_jobs": self.pending_jobs,
        }
        for vc, depth in sorted(self.queue_by_vc.items()):  # repro: noqa RPR121 — canonical column ordering
            out[f"queue_{vc}"] = depth
        return out


class SeriesCollector:
    """Samples cluster time series on a fixed simulated-time grid.

    Parameters
    ----------
    interval:
        Grid spacing in simulated seconds (default 300 s, the paper's
        five-minute monitoring cadence).

    Pass an instance as ``Simulator(series=...)``; after ``run()`` the
    trajectory is available as :attr:`samples` and exportable via
    :meth:`to_csv` / :meth:`to_json`.  A collector is single-use: it is
    bound to one engine and one run.
    """

    def __init__(self, interval: float = 300.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = float(interval)
        self.samples: List[SeriesSample] = []
        self._engine: Optional[Any] = None
        #: Index of the next unemitted grid point (time = k * interval).
        self._next_k = 0

    # ------------------------------------------------------------------
    # Engine integration
    # ------------------------------------------------------------------
    def attach(self, engine: Any) -> None:
        if self._engine is not None and self._engine is not engine:
            raise RuntimeError("SeriesCollector instances are single-use; "
                               "create a fresh one per Simulator")
        self._engine = engine

    def advance_to(self, upcoming: float) -> None:
        """Emit grid points strictly before the ``upcoming`` event batch.

        Called by the engine just before it dispatches a batch: the live
        cluster state at that moment is exactly the state the previous
        batch left behind, i.e. what held at every grid point inside the
        open interval.  Snapshots are taken only when a grid point is
        actually due, so quiet stretches cost one float comparison.
        """
        if self._next_time() >= upcoming - _EPS:
            return
        snap = self._snapshot(self._next_time())
        self.samples.append(snap)
        self._next_k += 1
        while self._next_time() < upcoming - _EPS:
            self.samples.append(self._restamp(snap, self._next_time()))
            self._next_k += 1

    def sample_if_due(self, now: float) -> None:
        """Emit the grid point coinciding with the batch that just ran.

        Called after every simultaneous event of the batch (drained in
        ``Event.seq`` order) and the follow-up scheduler pass, so a grid
        point landing exactly on a busy timestamp records the settled
        post-batch state — once.
        """
        if self._next_time() > now + _EPS:
            return
        snap = self._snapshot(now)
        while self._next_time() <= now + _EPS:
            self.samples.append(self._restamp(snap, self._next_time()))
            self._next_k += 1

    def finalize(self, now: float) -> None:
        """Close the series at the end of the run (time = makespan)."""
        self.advance_to(now)
        self.sample_if_due(now)
        if not self.samples or self.samples[-1].time < now - _EPS:
            self.samples.append(self._snapshot(now))

    def _next_time(self) -> float:
        # Grid points are k * interval (no incremental float accumulation,
        # so the grid never drifts over long runs).
        return self._next_k * self.interval

    @staticmethod
    def _restamp(sample: SeriesSample, time: float) -> SeriesSample:
        return SeriesSample(time=time, gpus_total=sample.gpus_total,
                            gpus_busy=sample.gpus_busy,
                            gpu_alloc=sample.gpu_alloc,
                            gpu_shared=sample.gpu_shared,
                            memory_used=sample.memory_used,
                            fragmentation=sample.fragmentation,
                            running_jobs=sample.running_jobs,
                            pending_jobs=sample.pending_jobs,
                            queue_by_vc=dict(sample.queue_by_vc))

    # ------------------------------------------------------------------
    # State capture
    # ------------------------------------------------------------------
    def _snapshot(self, now: float) -> SeriesSample:
        engine = self._engine
        if engine is None:
            raise RuntimeError("collector is not attached to a simulator")
        cluster = engine.cluster
        total = cluster.n_gpus
        busy = total - cluster.n_free_gpus
        queue_by_vc: Dict[str, int] = {vc: 0 for vc in sorted(cluster.vcs)}
        pending = 0
        for job_id in sorted(engine.jobs):
            job = engine.jobs[job_id]
            if job.status in _PENDING_STATES:
                pending += 1
                if job.vc in queue_by_vc:
                    queue_by_vc[job.vc] += 1
        fragmented = 0
        gpus_per_node = cluster.gpus_per_node
        for job_id in sorted(engine.run_states):
            state = engine.run_states[job_id]
            job = engine.jobs[job_id]
            min_nodes = -(-job.gpu_num // gpus_per_node)  # ceil division
            spanned = len({gpu.node_id for gpu in state.gpus})
            if spanned > min_nodes:
                fragmented += len(state.gpus)
        return SeriesSample(
            time=now,
            gpus_total=total,
            gpus_busy=busy,
            gpu_alloc=busy / total if total else 0.0,
            gpu_shared=cluster.shared_gpu_fraction(),
            memory_used=cluster.memory_used_fraction(),
            fragmentation=fragmented / busy if busy else 0.0,
            running_jobs=len(engine.run_states),
            pending_jobs=pending,
            queue_by_vc=queue_by_vc,
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def rows(self) -> List[Dict[str, Any]]:
        """Samples as flat dicts (``queue_<vc>`` columns per VC)."""
        return [sample.to_dict() for sample in self.samples]

    def columns(self) -> List[str]:
        """CSV header: stable core columns, then sorted VC queues."""
        core = ["time", "gpus_total", "gpus_busy", "gpu_alloc",
                "gpu_shared", "memory_used", "fragmentation",
                "running_jobs", "pending_jobs"]
        vcs: List[str] = []
        if self.samples:
            vcs = [f"queue_{vc}"
                   for vc in sorted(self.samples[0].queue_by_vc)]
        return core + vcs

    def to_csv(self, path: str) -> int:
        """Write the series as CSV (atomically); returns the row count."""
        columns = self.columns()
        buffer = io.StringIO(newline="")
        writer = csv.DictWriter(buffer, fieldnames=columns, restval=0)
        writer.writeheader()
        for row in self.rows():
            writer.writerow(row)
        atomic_write_text(path, buffer.getvalue())
        return len(self.samples)

    def to_json(self, path: Optional[str] = None) -> Dict[str, Any]:
        """Build (and optionally write) the JSON export document."""
        document = {
            "schema": SERIES_SCHEMA,
            "interval": self.interval,
            "samples": self.rows(),
        }
        if path is not None:
            atomic_write_text(path, json.dumps(document))
        return document
