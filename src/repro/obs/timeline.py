"""Chrome trace-event timeline export.

Renders a traced simulation as per-GPU occupancy lanes in the Chrome
trace-event JSON format, loadable in ``chrome://tracing`` or Perfetto
(https://ui.perfetto.dev).  Each cluster node becomes a *process* row and
each GPU a *thread* lane; every execution interval of a job is a complete
("X") event on the lanes of the GPUs it occupied, annotated with the job's
speed, mates and whether the run was a profiling run.  Submission and
placement decisions appear as instant events, and the queue-depth gauge
becomes a counter track — the same at-a-glance story as the paper's
cluster-timeline figures.

Simulated seconds map to trace microseconds (the format's native unit), so
one simulated day spans one "day" of trace time.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.ioutil import atomic_write_text
from repro.obs.tracer import TraceEvent

__all__ = ["EVENT_KIND_TRACKS", "build_chrome_trace", "write_chrome_trace"]

#: Timeline track for every simulator :class:`~repro.sim.events.EventKind`
#: value.  This mapping is the RPR006 exhaustiveness anchor (see
#: :mod:`repro.checks.lint`): adding an event kind without declaring its
#: track here is a lint error, so no kind can silently vanish from the
#: rendered timeline.  Values name the process row the kind appears on;
#: kinds whose tracer emission uses an aliased kind string are noted.
EVENT_KIND_TRACKS: Dict[str, str] = {
    "submit": "scheduler",      # instant on the scheduler row
    "finish": "gpu",            # closes the job's GPU lane interval
    "time_limit": "gpu",        # lane annotation; scheduler decides the stop
    "tick": "scheduler",        # periodic wake-up; not rendered (no payload)
    "node_fail": "fault",
    "node_recover": "fault",
    "job_crash": "fault",       # traced as "crash"; also closes the lane
    "slowdown": "fault",
    "slowdown_end": "fault",
    "retry": "fault",
}

#: Simulated seconds -> Chrome trace microseconds.
_US = 1e6
#: pid offset separating profiling-cluster lanes from main-cluster lanes
#: (the profiler runs its own Cluster whose node ids restart at zero).
_PROFILER_PID_BASE = 10_000
#: pid of the synthetic "scheduler" process (submits, decisions, queue).
_SCHED_PID = 99_999
#: pid of the synthetic "faults" process (failures, crashes, stragglers).
_FAULT_PID = 88_888

#: Event kinds that close a job's execution interval (``time_limit``
#: itself does not: the scheduler decides whether to stop the run;
#: ``crash`` does — the job is off its GPUs from that instant).
_CLOSERS = ("stop", "preempt", "finish", "crash")

#: Fault-injection kinds rendered as instants on the faults track.
_FAULT_INSTANTS = ("node_fail", "node_recover", "crash", "retry",
                   "job_failed", "slowdown", "slowdown_end")


def build_chrome_trace(events: Iterable[TraceEvent],
                       queue_depth: Optional[Sequence[Tuple[float, float]]]
                       = None) -> Dict[str, Any]:
    """Build a Chrome trace-event document from tracer events.

    Parameters
    ----------
    events:
        Tracer events; only ``start``/``stop``/``preempt``/``finish``
        (lanes), ``submit``/``decision`` (instants) and ``speed`` (lane
        annotations) are consumed, unknown kinds are ignored.
    queue_depth:
        Optional ``(time, depth)`` samples rendered as a counter track
        (pass ``registry.gauge_series("queue_depth")``).
    """
    events = sorted(events, key=lambda e: e.time)
    trace: List[Dict[str, Any]] = []
    seen_lanes: Dict[Tuple[int, int], None] = {}
    seen_pids: Dict[int, str] = {}
    #: job_id -> (start time, lane list, args) of the open interval.
    open_runs: Dict[int, Tuple[float, List[Tuple[int, int]],
                               Dict[str, Any]]] = {}
    end_time = events[-1].time if events else 0.0

    def lanes_for(event: TraceEvent) -> List[Tuple[int, int]]:
        gpus = event.data.get("gpus", [])
        nodes = event.data.get("nodes", [])
        profiling = bool(event.data.get("profiling"))
        base = _PROFILER_PID_BASE if profiling else 0
        label = "profiler node" if profiling else "node"
        lanes = []
        for gpu_id, node_id in zip(gpus, nodes):
            pid = base + int(node_id)
            seen_pids.setdefault(pid, f"{label} {int(node_id)}")
            lanes.append((pid, int(gpu_id)))
        return lanes

    def close_run(job_id: int, at: float, outcome: str) -> None:
        entry = open_runs.pop(job_id, None)
        if entry is None:
            return
        started, lanes, args = entry
        args = dict(args)
        args["outcome"] = outcome
        for pid, tid in lanes:
            seen_lanes.setdefault((pid, tid), None)
            trace.append({
                "name": args.get("name", f"job {job_id}"),
                "cat": "gpu",
                "ph": "X",
                "ts": started * _US,
                "dur": max(0.0, at - started) * _US,
                "pid": pid,
                "tid": tid,
                "args": args,
            })

    for event in events:
        if event.kind in _FAULT_INSTANTS:
            # Faults get their own track; "crash" additionally closes the
            # victim's execution interval below.
            label = event.kind if event.job_id is None \
                else f"{event.kind} job {event.job_id}"
            node = event.data.get("node")
            if node is not None:
                label = f"{label} (node {node})"
            args: Dict[str, Any] = dict(event.data)
            if event.job_id is not None:
                args["job_id"] = event.job_id
            trace.append({
                "name": label,
                "cat": "fault", "ph": "i", "s": "g",
                "ts": event.time * _US,
                "pid": _FAULT_PID, "tid": 0,
                "args": args,
            })
        if event.kind == "start":
            args = {
                "name": event.data.get("name", f"job {event.job_id}"),
                "job_id": event.job_id,
                "speed": event.data.get("speed"),
                "mates": event.data.get("mates", []),
                "profiling": bool(event.data.get("profiling")),
            }
            open_runs[event.job_id] = (event.time, lanes_for(event), args)
        elif event.kind in _CLOSERS:
            close_run(event.job_id, event.time, event.kind)
        elif event.kind == "speed" and event.job_id in open_runs:
            # Annotate the open run with its latest speed.
            open_runs[event.job_id][2]["speed"] = event.data.get("speed")
        elif event.kind == "submit":
            trace.append({
                "name": f"submit job {event.job_id}",
                "cat": "scheduler", "ph": "i", "s": "p",
                "ts": event.time * _US,
                "pid": _SCHED_PID, "tid": 0,
                "args": {"job_id": event.job_id},
            })
        elif event.kind == "decision":
            trace.append({
                "name": f"{event.data.get('mode', 'place')} "
                        f"job {event.job_id}",
                "cat": "scheduler", "ph": "i", "s": "p",
                "ts": event.time * _US,
                "pid": _SCHED_PID, "tid": 1,
                "args": dict(event.data, job_id=event.job_id),
            })

    # Close anything still running at the end of the trace.
    for job_id in list(open_runs):
        close_run(job_id, end_time, "running")

    if queue_depth:
        for time, depth in queue_depth:
            trace.append({
                "name": "queue depth", "cat": "scheduler", "ph": "C",
                "ts": time * _US, "pid": _SCHED_PID, "tid": 0,
                "args": {"jobs": depth},
            })

    # Metadata: name the process and thread rows so lanes read naturally.
    meta: List[Dict[str, Any]] = []
    for pid, label in sorted(seen_pids.items()):
        meta.append({"name": "process_name", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"name": label}})
    for pid, tid in sorted(seen_lanes):
        meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": tid, "args": {"name": f"gpu {tid}"}})
    if any(e["pid"] == _SCHED_PID for e in trace):
        meta.append({"name": "process_name", "ph": "M", "pid": _SCHED_PID,
                     "tid": 0, "args": {"name": "scheduler"}})
    if any(e["pid"] == _FAULT_PID for e in trace):
        meta.append({"name": "process_name", "ph": "M", "pid": _FAULT_PID,
                     "tid": 0, "args": {"name": "faults"}})

    return {"traceEvents": meta + trace, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, events: Iterable[TraceEvent],
                       queue_depth: Optional[Sequence[Tuple[float, float]]]
                       = None) -> int:
    """Write a Chrome trace JSON file; returns the number of trace events."""
    document = build_chrome_trace(events, queue_depth=queue_depth)
    atomic_write_text(path, json.dumps(document))
    return len(document["traceEvents"])
