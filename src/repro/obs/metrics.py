"""Metrics registry: counters, gauges and histograms for simulator runs.

A tiny Prometheus-flavoured registry the engine populates while tracing is
enabled: counters (jobs started / finished / preempted, packed
placements), time-series gauges (queue depth over simulated time) and
histograms (scheduler wall-clock per ``schedule()`` call).  The registry
snapshot is surfaced on :class:`~repro.sim.metrics.SimulationResult`
through the :class:`Telemetry` container, so benchmark harnesses and the
CLI can report scheduler-health numbers without re-deriving them from the
event log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "BucketHistogram",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-value metric with an optional time series of samples."""

    __slots__ = ("name", "value", "samples", "max_samples")

    def __init__(self, name: str,
                 max_samples: Optional[int] = None) -> None:
        self.name = name
        self.value: Optional[float] = None
        #: ``(time, value)`` samples in recording order; consecutive
        #: duplicates are collapsed to keep long runs compact.
        self.samples: List[Tuple[float, float]] = []
        #: When set, only the newest ``max_samples`` samples are kept —
        #: the bound long-running daemons need (offline runs keep all).
        self.max_samples = max_samples

    def set(self, value: float, time: Optional[float] = None) -> None:
        self.value = value
        if time is not None:
            if self.samples and self.samples[-1][1] == value:
                return
            self.samples.append((time, value))
            if (self.max_samples is not None
                    and len(self.samples) > self.max_samples):
                del self.samples[:len(self.samples) - self.max_samples]

    @property
    def max(self) -> Optional[float]:
        if not self.samples:
            return self.value
        return max(v for _, v in self.samples)


class Histogram:
    """Streaming summary of an observed distribution.

    Keeps every observation (simulation runs observe at most one value per
    scheduling pass, so memory stays modest) which makes exact percentiles
    available for the scalability reports.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return math.fsum(self._values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self._values else 0.0

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile, ``pct`` in [0, 100]."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1,
                          int(math.ceil(pct / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class BucketHistogram:
    """Fixed-bucket histogram in the Prometheus exposition shape.

    Unlike :class:`Histogram` (which keeps every observation for exact
    percentiles in offline reports), this variant holds only per-bucket
    counts plus a running sum — O(buckets) memory regardless of how long
    a service runs, which is what the live ``/metrics`` endpoint needs.
    ``bounds`` are the *upper* bucket bounds; an implicit ``+Inf`` bucket
    always exists, so :meth:`cumulative` is monotone and its last count
    equals :attr:`count`.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Tuple[float, ...]) -> None:
        if not bounds:
            raise ValueError("BucketHistogram needs at least one bound")
        if any(a > b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be sorted: {bounds}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        #: Per-bucket observation counts; index -1 is the +Inf bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows ending at ``+Inf``."""
        rows: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            running += bucket_count
            rows.append((bound, running))
        rows.append((math.inf, running + self.counts[-1]))
        return rows

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate, ``q`` in [0, 1].

        Returns the upper bound of the bucket holding the q-th
        observation (the finest answer bucketed counts can give); the
        largest finite bound when the rank lands in ``+Inf``.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, int(math.ceil(q * self.count)))
        running = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            running += bucket_count
            if running >= rank:
                return bound
        return self.bounds[-1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-value snapshot of every registered metric.

        Counters flatten to floats, gauges to their last value (series
        are kept on the registry object itself), histograms to summary
        dicts.
        """
        out: Dict[str, Any] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            out[name] = gauge.value
        for name, hist in sorted(self._histograms.items()):
            out[name] = hist.summary()
        return out

    def gauge_series(self, name: str) -> List[Tuple[float, float]]:
        gauge = self._gauges.get(name)
        return list(gauge.samples) if gauge is not None else []


@dataclass
class Telemetry:
    """Everything observability-related collected during one run.

    Attached to :class:`~repro.sim.metrics.SimulationResult` as the
    ``telemetry`` field when (and only when) tracing was enabled.
    """

    #: Structured events retained by the tracer's ring buffer.
    events: List[Any] = field(default_factory=list)
    #: Metric snapshot from :meth:`MetricsRegistry.snapshot`.
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: The live registry (for gauge time series and exact histograms).
    registry: Optional[MetricsRegistry] = None
    #: Scheduler decision audit, when the active scheduler kept one.
    audit: Optional[Any] = None
    #: Events evicted from the tracer's ring buffer on overflow; nonzero
    #: means :attr:`events` is a truncated suffix of the run.
    dropped_events: int = 0

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
