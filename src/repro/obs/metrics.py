"""Metrics registry: counters, gauges and histograms for simulator runs.

A tiny Prometheus-flavoured registry the engine populates while tracing is
enabled: counters (jobs started / finished / preempted, packed
placements), time-series gauges (queue depth over simulated time) and
histograms (scheduler wall-clock per ``schedule()`` call).  The registry
snapshot is surfaced on :class:`~repro.sim.metrics.SimulationResult`
through the :class:`Telemetry` container, so benchmark harnesses and the
CLI can report scheduler-health numbers without re-deriving them from the
event log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-value metric with an optional time series of samples."""

    __slots__ = ("name", "value", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        #: ``(time, value)`` samples in recording order; consecutive
        #: duplicates are collapsed to keep long runs compact.
        self.samples: List[Tuple[float, float]] = []

    def set(self, value: float, time: Optional[float] = None) -> None:
        self.value = value
        if time is not None:
            if self.samples and self.samples[-1][1] == value:
                return
            self.samples.append((time, value))

    @property
    def max(self) -> Optional[float]:
        if not self.samples:
            return self.value
        return max(v for _, v in self.samples)


class Histogram:
    """Streaming summary of an observed distribution.

    Keeps every observation (simulation runs observe at most one value per
    scheduling pass, so memory stays modest) which makes exact percentiles
    available for the scalability reports.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return math.fsum(self._values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self._values else 0.0

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile, ``pct`` in [0, 100]."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1,
                          int(math.ceil(pct / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-value snapshot of every registered metric.

        Counters flatten to floats, gauges to their last value (series
        are kept on the registry object itself), histograms to summary
        dicts.
        """
        out: Dict[str, Any] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            out[name] = gauge.value
        for name, hist in sorted(self._histograms.items()):
            out[name] = hist.summary()
        return out

    def gauge_series(self, name: str) -> List[Tuple[float, float]]:
        gauge = self._gauges.get(name)
        return list(gauge.samples) if gauge is not None else []


@dataclass
class Telemetry:
    """Everything observability-related collected during one run.

    Attached to :class:`~repro.sim.metrics.SimulationResult` as the
    ``telemetry`` field when (and only when) tracing was enabled.
    """

    #: Structured events retained by the tracer's ring buffer.
    events: List[Any] = field(default_factory=list)
    #: Metric snapshot from :meth:`MetricsRegistry.snapshot`.
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: The live registry (for gauge time series and exact histograms).
    registry: Optional[MetricsRegistry] = None
    #: Scheduler decision audit, when the active scheduler kept one.
    audit: Optional[Any] = None
    #: Events evicted from the tracer's ring buffer on overflow; nonzero
    #: means :attr:`events` is a truncated suffix of the run.
    dropped_events: int = 0

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
