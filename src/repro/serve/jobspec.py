"""Runtime job specifications: the JSON schema of submissions.

A *job spec* is the JSON document a client drops into the service inbox
(or POSTs to ``/submit``).  It carries exactly the fields needed to
construct a :class:`~repro.workloads.job.Job`:

.. code-block:: json

    {
        "name": "resnet50-batch256",
        "user": "alice",
        "vc": "vc0",
        "gpu_num": 4,
        "duration": 7200.0,
        "submit_time": 0.0,
        "profile": {"gpu_util": 60.0, "gpu_mem_util": 30.0,
                    "gpu_mem_mb": 12000.0, "amp": false},
        "amp": false
    }

``job_id`` is optional — the daemon assigns the next free id when
absent.  Serialization is exact: floats round-trip bit-identically
through JSON (Python emits ``repr`` shortest-form floats), which the
recovery path relies on when re-admitting specs out of the WAL.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.workloads.job import Job
from repro.workloads.model_zoo import ResourceProfile

__all__ = ["JobSpecError", "job_from_spec", "job_to_spec", "validate_spec"]

#: Fields a spec must carry (``job_id``/``submit_time`` are optional).
_REQUIRED = ("name", "user", "vc", "gpu_num", "duration", "profile")
_PROFILE_REQUIRED = ("gpu_util", "gpu_mem_util", "gpu_mem_mb")
#: Every key a spec may carry; unknown keys are rejected loudly so
#: client typos (``gpus`` for ``gpu_num``) do not silently default.
_ALLOWED = frozenset(_REQUIRED) | {
    "job_id", "submit_time", "amp", "template_id", "deadline",
    "cpu_per_gpu", "cpu_sensitivity",
}


class JobSpecError(ValueError):
    """A job spec failed validation and cannot be admitted."""


def _number(spec: Mapping[str, Any], key: str, default: Optional[float]
            = None) -> float:
    value = spec.get(key, default)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise JobSpecError(f"spec field {key!r} must be a number, "
                           f"got {value!r}")
    return float(value)


def validate_spec(spec: Mapping[str, Any]) -> None:
    """Schema validation; raises :class:`JobSpecError` on bad specs."""
    if not isinstance(spec, Mapping):
        raise JobSpecError(f"job spec must be a JSON object, got "
                           f"{type(spec).__name__}")
    unknown = set(spec) - _ALLOWED
    if unknown:
        raise JobSpecError(f"unknown spec fields: {sorted(unknown)}; "
                           f"allowed: {sorted(_ALLOWED)}")
    missing = [key for key in _REQUIRED if key not in spec]
    if missing:
        raise JobSpecError(f"spec misses required fields: {missing}")
    for key in ("name", "user", "vc"):
        if not isinstance(spec[key], str) or not spec[key]:
            raise JobSpecError(f"spec field {key!r} must be a non-empty "
                               "string")
    gpu_num = spec["gpu_num"]
    if not isinstance(gpu_num, int) or isinstance(gpu_num, bool) \
            or gpu_num < 1:
        raise JobSpecError(f"gpu_num must be a positive integer, "
                           f"got {gpu_num!r}")
    if _number(spec, "duration") <= 0:
        raise JobSpecError("duration must be > 0")
    profile = spec["profile"]
    if not isinstance(profile, Mapping):
        raise JobSpecError("profile must be an object")
    for key in _PROFILE_REQUIRED:
        if key not in profile:
            raise JobSpecError(f"profile misses field {key!r}")


def job_from_spec(spec: Mapping[str, Any], job_id: int) -> Job:
    """Build a :class:`Job` from a validated spec.

    ``job_id`` is the service-assigned id (the spec's own ``job_id``
    field, when present, must already equal it — the daemon resolves
    collisions before calling).
    """
    validate_spec(spec)
    profile_spec = spec["profile"]
    try:
        profile = ResourceProfile(
            gpu_util=float(profile_spec["gpu_util"]),
            gpu_mem_util=float(profile_spec["gpu_mem_util"]),
            gpu_mem_mb=float(profile_spec["gpu_mem_mb"]),
            amp=bool(profile_spec.get("amp", False)),
        )
        return Job(
            job_id=job_id,
            name=str(spec["name"]),
            user=str(spec["user"]),
            vc=str(spec["vc"]),
            submit_time=_number(spec, "submit_time", 0.0),
            duration=_number(spec, "duration"),
            gpu_num=int(spec["gpu_num"]),
            profile=profile,
            amp=bool(spec.get("amp", False)),
            template_id=spec.get("template_id"),
            deadline=(None if spec.get("deadline") is None
                      else _number(spec, "deadline")),
            cpu_per_gpu=_number(spec, "cpu_per_gpu", 4.0),
            cpu_sensitivity=_number(spec, "cpu_sensitivity", 0.5),
        )
    except ValueError as exc:
        raise JobSpecError(str(exc)) from None


def job_to_spec(job: Job) -> Dict[str, Any]:
    """Serialize a :class:`Job` to its spec dict (exact round-trip)."""
    spec: Dict[str, Any] = {
        "job_id": job.job_id,
        "name": job.name,
        "user": job.user,
        "vc": job.vc,
        "submit_time": job.submit_time,
        "duration": job.duration,
        "gpu_num": job.gpu_num,
        "profile": {
            "gpu_util": job.profile.gpu_util,
            "gpu_mem_util": job.profile.gpu_mem_util,
            "gpu_mem_mb": job.profile.gpu_mem_mb,
            "amp": job.profile.amp,
        },
        "amp": job.amp,
        "cpu_per_gpu": job.cpu_per_gpu,
        "cpu_sensitivity": job.cpu_sensitivity,
    }
    if job.template_id is not None:
        spec["template_id"] = job.template_id
    if job.deadline is not None:
        spec["deadline"] = job.deadline
    return spec
