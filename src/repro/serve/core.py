"""``SimCore`` — the deterministic state machine the service journals.

The core bundles a :class:`~repro.sim.engine.Simulator` (started with an
*empty* job set; all jobs arrive at runtime via
:meth:`Simulator.add_job`) with the admission bookkeeping the daemon
needs: the next free job id and the set of inbox filenames already
consumed.  Everything in here is a pure deterministic function of the
:class:`~repro.serve.config.ServeConfig` and the sequence of
``admit_specs`` / ``advance`` calls — no wall clock, no randomness
outside the seeded trace/fault generators — which is what makes WAL
replay reproduce the pre-crash state bit-identically.

:func:`state_digest` condenses the engine state (clock, per-job
progress floats, GPU occupancy, the event heap, the scheduler queue)
into a sha256 over canonical JSON.  Floats are rendered with
``float.hex`` so the digest is exact, and nothing hash-randomized
(pickle bytes, set iteration order) feeds it — the digest of the same
logical state is stable across processes and Python runs.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set

from repro.core.factory import make_scheduler
from repro.obs.tracer import NULL_TRACER
from repro.sim.engine import SimulationError, Simulator
from repro.traces.generator import TraceGenerator
from repro.traces.spec import get_spec
from repro.serve.config import ServeConfig
from repro.serve.jobspec import JobSpecError, job_from_spec

__all__ = ["SimCore", "WAL_EVENT_COVERAGE", "state_digest"]

#: Replay-payload story for every simulator event kind (RPR111).
#:
#: WAL tick records journal only the *inputs* of a tick (admitted spec
#: files + the tick number); everything else must be derivable.  This
#: table states, per ``EventKind`` value, why replaying the journal
#: reproduces the event exactly.  The project linter cross-checks it
#: against ``repro.sim.events.EventKind`` so a new event kind cannot
#: ship without a declared story.
WAL_EVENT_COVERAGE: Dict[str, str] = {
    "submit": "journaled: admitted specs ride in the tick record's "
              "files list; apply_tick_record re-admits them in order",
    "finish": "derived: core.advance() re-simulates deterministically "
              "from the journaled admissions and config seed",
    "time_limit": "derived: profiling-run bounds are fixed by config; "
                  "re-simulation re-arms them identically",
    "tick": "journaled: the WAL tick record itself; apply_tick_record "
            "replays it and owns core.tick",
    "node_fail": "seeded: the fault timeline is a pure function of the "
                 "FaultSpec + seed journaled in ServeConfig",
    "node_recover": "seeded: recovery times derive from the same "
                    "FaultSpec + seed as the failure",
    "job_crash": "seeded: crash draws come from the config-seeded "
                 "fault RNG stream, not wall-clock state",
    "slowdown": "seeded: straggler windows derive from the journaled "
                "FaultSpec + seed",
    "slowdown_end": "seeded: window close is scheduled with its "
                    "opening draw; no independent randomness",
    "retry": "derived: backoff expiry is a deterministic function of "
             "the crash time and RetryPolicy in config",
}


def _hex(value: Optional[float]) -> Optional[str]:
    return None if value is None else float(value).hex()


def state_digest(sim: Simulator) -> str:
    """sha256 over the canonical JSON of the engine's logical state.

    Exact (floats via ``float.hex``) and process-stable (no pickle
    bytes, no set/str-hash iteration orders): two engines that executed
    the identical operation sequence digest identically, on any host.
    """
    jobs = []
    for job_id in sorted(sim.jobs):
        job = sim.jobs[job_id]
        jobs.append([job_id, job.status.value, _hex(job.progress),
                     _hex(job.service_time), job.preemptions,
                     _hex(job.submit_time), _hex(job.first_start_time),
                     _hex(job.finish_time)])
    run_states = []
    for job_id in sorted(sim.run_states):
        state = sim.run_states[job_id]
        run_states.append([job_id, [g.gpu_id for g in state.gpus],
                           _hex(state.speed), _hex(state.last_update),
                           state.epoch, _hex(state.overhead_left),
                           _hex(state.time_limit_at), state.is_profiling])
    gpus = []
    for node in sim.cluster.nodes:
        for gpu in node.gpus:
            gpus.append([gpu.gpu_id, sorted(gpu.residents), gpu.healthy,
                         _hex(gpu.speed_factor), _hex(gpu.fault_slow)])
    # Heap-list order (not sorted order) — identical operation sequences
    # produce identical heap layouts, and layout divergence is exactly
    # what the digest must catch.
    heap = []
    for event in sim.events._heap:
        heap.append([_hex(event.time), event.seq, event.kind.value,
                     event.job_id, event.epoch, repr(event.payload)])
    queue = getattr(sim.scheduler, "queue", None)
    payload: Dict[str, Any] = {
        "now": _hex(sim.now),
        "events_processed": sim._events_processed,
        "unfinished": sim._unfinished,
        "tick_scheduled": sim._tick_scheduled,
        "jobs": jobs,
        "run_states": run_states,
        "gpus": gpus,
        "heap": heap,
        "queue": (None if queue is None
                  else [job.job_id for job in queue]),
        "records": [len(sim.records),
                    sim.records[-1].job_id if sim.records else None],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SimCore:
    """Simulator + admission bookkeeping; the unit snapshots capture."""

    def __init__(self, config: ServeConfig, sim: Simulator,
                 next_job_id: int = 1,
                 consumed: Optional[Set[str]] = None,
                 tick: int = 0) -> None:
        self.config = config
        self.sim = sim
        #: Index of the last *committed* service tick (0 = genesis).
        self.tick = tick
        self.next_job_id = next_job_id
        #: Inbox filenames already admitted (or rejected); survives in
        #: snapshots and is rebuilt from WAL tick records on replay, so
        #: a spec file is never double-admitted across a crash.
        self.consumed: Set[str] = consumed if consumed is not None else set()
        #: Degraded mode: set to the :class:`SimulationError` message
        #: when an advance fails.  A degraded core stops advancing and
        #: admitting, but keeps serving reads.  Deterministic — the same
        #: replay hits the same error at the same point — so the flag is
        #: part of snapshots and survives recovery.
        self.degraded: Optional[str] = None

    # -- construction --------------------------------------------------
    @classmethod
    def genesis(cls, config: ServeConfig) -> "SimCore":
        """Build the tick-0 state: cluster + scheduler, no jobs yet."""
        spec = get_spec(config.trace)
        if config.jobs is not None:
            spec = spec.with_jobs(config.jobs)
        if config.seed is not None:
            spec = spec.with_seed(config.seed)
        generator = TraceGenerator(spec)
        cluster = generator.build_cluster()
        history = generator.generate_history()
        scheduler = make_scheduler(config.scheduler, history)
        faults = None
        if config.faults is not None:
            from repro.faults import FaultSpec
            faults = FaultSpec.parse(config.faults)
        sim = Simulator(cluster, [], scheduler, faults=faults)
        sim.begin()
        return cls(config, sim)

    # -- state queries --------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether any admitted job is still unfinished."""
        return self.sim._unfinished > 0

    def digest(self) -> str:
        return state_digest(self.sim)

    def job_statuses(self) -> List[Dict[str, Any]]:
        """Status rows for ``/status`` (read-only, sorted by id)."""
        rows = []
        for job_id in sorted(self.sim.jobs):
            job = self.sim.jobs[job_id]
            rows.append({
                "job_id": job_id,
                "name": job.name,
                "vc": job.vc,
                "gpu_num": job.gpu_num,
                "status": job.status.value,
                "progress": round(job.progress, 3),
                "duration": job.duration,
            })
        return rows

    # -- transitions (journaled by the daemon) --------------------------
    def admission_error(self, spec: Mapping[str, Any]) -> Optional[str]:
        """Why ``spec`` cannot be admitted, or ``None`` if it can.

        Pure function of (spec, cluster shape): schema validation plus
        the unplaceability check — a job wider than its VC can never be
        placed, and admitting it would deadlock the simulation.
        """
        try:
            job_from_spec(spec, job_id=0)
        except JobSpecError as exc:
            return str(exc)
        vc_name = str(spec["vc"])
        vcs = self.sim.cluster.vcs
        if vc_name not in vcs:
            return (f"unknown VC {vc_name!r}; cluster has "
                    f"{sorted(vcs)}")
        capacity = vcs[vc_name].n_gpus
        if int(spec["gpu_num"]) > capacity:
            return (f"gpu_num {spec['gpu_num']} exceeds VC "
                    f"{vc_name!r} capacity of {capacity} GPUs")
        return None

    def admit_specs(self, specs: Sequence[Mapping[str, Any]],
                    filenames: Sequence[str]) -> List[Dict[str, Any]]:
        """Apply one admission batch; returns per-spec dispositions.

        Deterministic: dispositions and assigned job ids depend only on
        the spec contents and the current core state, so replaying the
        same batch out of the WAL reproduces them exactly.
        """
        dispositions = []
        for spec, filename in zip(specs, filenames):
            reason = self.admission_error(spec)
            if reason is not None:
                dispositions.append({"file": filename, "job_id": None,
                                     "disposition": "rejected",
                                     "reason": reason})
            else:
                job_id = self.next_job_id
                self.next_job_id += 1
                job = job_from_spec(spec, job_id=job_id)
                self.sim.add_job(job)
                dispositions.append({"file": filename, "job_id": job_id,
                                     "disposition": "admitted",
                                     "reason": None})
            self.consumed.add(filename)
        return dispositions

    def advance(self) -> int:
        """Advance up to ``events_per_tick`` event batches; returns the
        number actually stepped (0 when idle or degraded).

        A :class:`SimulationError` (deadlock, invariant breach) flips
        the core into degraded mode instead of propagating: the daemon
        keeps serving reads, and — because the failure is deterministic
        — WAL replay reaches the identical degraded state.
        """
        if self.degraded is not None:
            return 0
        stepped = 0
        try:
            while stepped < self.config.events_per_tick and self.active:
                if not self.sim.step_batch():
                    break
                stepped += 1
        except SimulationError as exc:
            self.degraded = str(exc)
        return stepped

    # -- snapshots ------------------------------------------------------
    def to_blob(self) -> bytes:
        """Pickle the core for a store snapshot.

        The engine's observers never belong in a snapshot: the tracer
        singleton and the daemon's live-telemetry profiler and lineage
        collector (attached when serve telemetry is on) are stashed out
        before pickling so the blob captures pure simulation state — a
        snapshot taken with telemetry on is byte-compatible with one
        taken without — and all are restored on the way out.
        """
        tracer = self.sim.tracer
        profiler = self.sim.profiler
        lineage = self.sim.lineage
        self.sim.tracer = None
        self.sim.profiler = None
        self.sim.lineage = None
        try:
            payload = {
                "config": self.config.to_json(),
                "sim": self.sim,
                "tick": self.tick,
                "next_job_id": self.next_job_id,
                "consumed": sorted(self.consumed),
                "degraded": self.degraded,
            }
            return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            self.sim.tracer = tracer
            self.sim.profiler = profiler
            self.sim.lineage = lineage

    @classmethod
    def from_blob(cls, blob: bytes) -> "SimCore":
        payload = pickle.loads(blob)
        sim: Simulator = payload["sim"]
        sim.tracer = NULL_TRACER
        sim.profiler = None
        sim.lineage = None
        core = cls(ServeConfig.from_json(payload["config"]), sim,
                   next_job_id=int(payload["next_job_id"]),
                   consumed=set(payload["consumed"]),
                   tick=int(payload["tick"]))
        core.degraded = payload["degraded"]
        return core
