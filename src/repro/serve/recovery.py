"""Crash recovery: snapshot load + WAL replay + digest verification.

The recovery invariant (DESIGN.md): service state is a pure function of
(config, admitted-spec sequence, tick schedule), all journaled *before*
being applied.  Recovery therefore needs no guesswork:

1. Load the newest snapshot blob from the store (genesis always writes
   a tick-0 snapshot, so one exists whenever a config does).
2. Truncate the active WAL segment's torn tail, if the crash landed
   mid-append.
3. Replay the segment's records past the snapshot's WAL cursor: each
   ``tick`` record re-applies its admission batch and re-advances the
   simulator — both deterministic — and each ``commit`` record's state
   digest is verified against the rebuilt state.  A mismatch is a
   :class:`RecoveryError`, never a silent divergence.
4. If the final tick record lacks its commit (the crash hit between
   journal and commit), the re-applied tick is committed now.

A *clean* store (graceful shutdown) takes the same path; its WAL simply
has no records past the final snapshot, making recovery a no-op — one
code path, exercised on every boot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.logutil import get_logger, log_context
from repro.serve.config import ServeConfig
from repro.serve.core import SimCore
from repro.serve.store import Store
from repro.serve.wal import WriteAheadLog, segment_name

__all__ = ["RecoveryError", "RecoveryReport", "apply_tick_record",
           "recover"]

logger = get_logger("serve.recovery")


class RecoveryError(RuntimeError):
    """Replayed state diverged from the journaled digests (or the WAL
    sequence is broken) — the store cannot be trusted."""


@dataclass(frozen=True)
class RecoveryReport:
    """What one boot's recovery pass did."""

    genesis: bool           #: brand-new store; no recovery needed
    clean: bool             #: previous shutdown was graceful
    snapshot_tick: int      #: tick of the snapshot replay started from
    replayed_ticks: int     #: tick records re-applied from the WAL
    recommitted: bool       #: final tick lacked its commit; written now
    torn_records: int       #: torn trailing WAL records truncated
    tick: int               #: service tick after recovery

    def describe(self) -> str:
        if self.genesis:
            return "genesis: new store initialised at tick 0"
        mode = "clean restart" if self.clean else "crash recovery"
        extra = " +1 recommitted" if self.recommitted else ""
        return (f"{mode}: snapshot tick {self.snapshot_tick}, "
                f"{self.replayed_ticks} tick(s) replayed{extra}, "
                f"{self.torn_records} torn record(s) dropped, "
                f"resuming at tick {self.tick}")


def _verify(core: SimCore, expected: str, where: str) -> None:
    actual = core.digest()
    if actual != expected:
        raise RecoveryError(
            f"state digest mismatch at {where}: replayed {actual[:12]}… "
            f"!= journaled {expected[:12]}… — replay diverged")


def genesis(store: Store, wal: WriteAheadLog,
            config: ServeConfig) -> Tuple[SimCore, RecoveryReport]:
    """Initialise a brand-new store at tick 0.

    Idempotent under crashes: the config row is written *last*, so a
    kill anywhere before that leaves a store with no config, and the
    next boot simply redoes genesis from scratch (clearing any partial
    WAL segments first).
    """
    for name in wal.segments():
        os.unlink(os.path.join(wal.wal_dir, name))
    core = SimCore.genesis(config)
    digest = core.digest()
    wal.open_segment(0, 0)
    wal.append({"kind": "genesis", "config": config.to_json(),
                "digest": digest})
    store.put_snapshot(0, wal.next_seq, digest, core.to_blob())
    store.init_config(config)  # commit point: genesis is now complete
    logger.info("genesis: %s on %s, digest %s", config.scheduler,
                config.trace, digest[:12])
    return core, RecoveryReport(genesis=True, clean=True, snapshot_tick=0,
                                replayed_ticks=0, recommitted=False,
                                torn_records=0, tick=0)


def recover(store: Store, wal: WriteAheadLog,
            requested: Optional[ServeConfig] = None,
            ) -> Tuple[SimCore, RecoveryReport]:
    """Open (or initialise) the service state; leaves the WAL appendable.

    On return the core reflects every journaled transition, the active
    WAL segment is open for append past the last valid record, and any
    uncommitted trailing tick has been re-applied and committed.
    """
    stored = store.config()
    if stored is None:
        return genesis(store, wal, requested or ServeConfig())
    if requested is not None:
        requested.check_compatible(stored)
    clean = store.is_clean()

    snapshot = store.latest_snapshot()
    if snapshot is None:
        raise RecoveryError("store has a config but no snapshot; "
                            "genesis was interrupted — delete the state "
                            "directory and start over")
    snap_tick, snap_seq, snap_digest, blob = snapshot
    core = SimCore.from_blob(blob)
    _verify(core, snap_digest, f"snapshot tick {snap_tick}")

    segment = segment_name(snap_tick)
    torn = wal.truncate_torn_tail(segment)
    replayed = 0
    last_seq = snap_seq - 1
    pending_tick: Optional[Dict[str, Any]] = None
    # The correlation context binds the segment being replayed (and,
    # per record, the tick) onto every log line emitted below — the
    # engine's and WAL's included — so a crash is traceable from the
    # structured log alone: boot → segment → tick → divergence.
    with log_context(wal_segment=segment, snapshot_tick=snap_tick):
        for record in wal.replay_segment(segment):
            if record.seq < snap_seq:
                last_seq = max(last_seq, record.seq)
                continue
            if record.seq != last_seq + 1:
                raise RecoveryError(
                    f"WAL sequence gap in {segment}: expected "
                    f"{last_seq + 1}, found {record.seq}")
            last_seq = record.seq
            if record.kind == "tick":
                with log_context(tick=int(record.rec["tick"])):
                    apply_tick_record(core, record.rec)
                    logger.debug("replayed tick (seq %d, %d spec(s))",
                                 record.seq,
                                 len(record.rec.get("specs", [])))
                replayed += 1
                pending_tick = record.rec
            elif record.kind == "commit":
                with log_context(tick=int(record.rec["tick"])):
                    _verify(core, str(record.rec["digest"]),
                            f"commit of tick {record.rec['tick']}")
                pending_tick = None
            # "genesis" / "snapshot" markers carry no state transition.

        wal.open_segment(snap_tick, last_seq + 1)
        recommitted = False
        if pending_tick is not None:
            # Crash landed between the tick journal and its commit; the
            # deterministic re-application above already rebuilt the
            # state (including ``core.tick``), so commit it now.
            with log_context(tick=core.tick):
                wal.append({"kind": "commit", "tick": core.tick,
                            "digest": core.digest(),
                            "now": core.sim.now,
                            "events": core.sim._events_processed})
                logger.info("recommitted tick %d after crash between "
                            "journal and commit", core.tick)
            recommitted = True

    report = RecoveryReport(genesis=False, clean=clean,
                            snapshot_tick=snap_tick,
                            replayed_ticks=replayed,
                            recommitted=recommitted, torn_records=torn,
                            tick=core.tick)
    logger.info("%s", report.describe())
    return core, report


def apply_tick_record(core: SimCore,
                      rec: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Apply one journaled tick: admissions, then bounded advance.

    The *only* code path that mutates core state from a tick record —
    the live daemon and WAL replay both call it, so what recovery
    re-applies is by construction what the daemon originally did.  That
    includes ``core.tick``: the record's own tick number is the single
    source of truth, so neither caller touches the counter itself.
    Returns the admission dispositions (deterministic).
    """
    specs = rec.get("specs", [])
    files = rec.get("files", [])
    dispositions = core.admit_specs(specs, files) if files else []
    for name in rec.get("skipped", []):
        core.consumed.add(str(name))
    core.advance()
    core.tick = int(rec["tick"])
    return dispositions
