"""``repro serve`` — a crash-recoverable scheduler service.

This package wraps the discrete-event simulator and the Lucid scheduler
behind a long-running daemon with *durable* state:

* :mod:`repro.serve.config` — the durable service configuration that
  pins everything determinism depends on (trace, scheduler, seeds,
  admission batching).
* :mod:`repro.serve.jobspec` — JSON job specifications accepted at
  runtime (file inbox and HTTP), exact-roundtrip serialization.
* :mod:`repro.serve.inbox` — the file inbox: atomically dropped specs,
  polled in sorted order, with burst backpressure.
* :mod:`repro.serve.wal` — append-only, checksummed write-ahead log of
  every state transition (admission batches and tick commits).
* :mod:`repro.serve.store` — sqlite (WAL mode) persistence: service
  metadata, snapshots, and a job catalog for offline inspection.
* :mod:`repro.serve.core` — ``SimCore``: the deterministic state
  machine (simulator + scheduler) the service journals; snapshots and
  state digests live here.
* :mod:`repro.serve.recovery` — unclean-shutdown detection, snapshot
  load + WAL replay, digest verification.
* :mod:`repro.serve.http` — localhost HTTP endpoints (submit / status /
  metrics / healthz) built on ``http.server``.
* :mod:`repro.serve.daemon` — the service loop: admission batching,
  snapshots, graceful drain, watchdog heartbeat, degraded mode.
* :mod:`repro.serve.chaos` — the crash harness: seeded SIGKILL points
  against a live daemon, restart, and bit-identity assertions against
  an uncrashed control run.

The recovery invariant (see DESIGN.md): the service state is a pure
deterministic function of (config, admitted-spec sequence, tick
schedule), all of which are journaled write-ahead — so replaying the
WAL over the last snapshot always reproduces the pre-crash state
bit-identically.
"""

from repro.serve.config import ServeConfig
from repro.serve.core import SimCore, state_digest
from repro.serve.daemon import ServeDaemon
from repro.serve.inbox import Inbox
from repro.serve.jobspec import JobSpecError, job_from_spec, job_to_spec
from repro.serve.recovery import RecoveryReport, recover
from repro.serve.store import Store
from repro.serve.wal import WalRecord, WriteAheadLog

__all__ = [
    "Inbox",
    "JobSpecError",
    "RecoveryReport",
    "ServeConfig",
    "ServeDaemon",
    "SimCore",
    "Store",
    "WalRecord",
    "WriteAheadLog",
    "job_from_spec",
    "job_to_spec",
    "recover",
    "state_digest",
]
