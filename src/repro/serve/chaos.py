"""Chaos harness: seeded SIGKILL trials with bit-identity assertions.

The harness proves the recovery invariant end to end:

1. **Control run** — stage a trace's jobs as spec files in the inbox,
   boot the daemon as a subprocess with ``--exit-when-idle``, and let
   it run to completion untouched.  Its WAL commit records give the
   reference digest of *every* service tick, and its final snapshot the
   reference terminal state.
2. **Crash trials** — for each seeded kill point, repeat the identical
   staging, SIGKILL the daemon after a pseudo-random fraction of the
   control's wall time, then restart it.  The restarted daemon recovers
   (snapshot + WAL replay) and runs the rest of the workload.

Because every spec is staged *before* boot and admission consumes the
inbox in sorted order with a fixed batch size, the sequence of service
ticks is a pure function of the config — independent of wall-clock
timing, and therefore identical between the control and every trial no
matter where the kill lands.  The assertions exploit that:

* every tick digest a trial commits must equal the control's digest
  for the same tick (bit-identical recovery *and* bit-identical
  post-recovery execution);
* the trial's terminal state digest and summary metrics must equal the
  control's;
* the trial's store must end clean (the post-crash boot drained
  gracefully).

Wall-clock sleeps and the seeded kill-point RNG never touch simulated
time — this module is service tooling, not simulation (it is on the
determinism linter's allowlist for exactly that reason).
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.ioutil import atomic_write_text
from repro.obs.logutil import get_logger
from repro.traces.generator import TraceGenerator
from repro.traces.spec import get_spec
from repro.serve.config import ServeConfig
from repro.serve.core import SimCore
from repro.serve.jobspec import job_to_spec
from repro.serve.store import Store
from repro.serve.wal import WriteAheadLog

__all__ = ["ChaosResult", "TrialResult", "chaos_run", "stage_trace_specs"]

logger = get_logger("serve.chaos")


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one SIGKILL trial."""

    index: int
    kill_after_s: float      #: wall seconds into the run the kill landed
    killed: bool             #: False if the daemon finished first
    ticks_checked: int       #: commit digests compared against control
    failures: List[str]      #: empty = bit-identical recovery

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class ChaosResult:
    """Aggregate outcome of a chaos sweep."""

    control_wall_s: float
    control_ticks: int
    control_final: Dict[str, Any]
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(trial.ok for trial in self.trials)

    def describe(self) -> str:
        lines = [f"control: {self.control_ticks} ticks in "
                 f"{self.control_wall_s:.1f}s wall "
                 f"(makespan {self.control_final['sim_now']:.0f}s, "
                 f"{self.control_final['events']} events)"]
        for trial in self.trials:
            verdict = "ok" if trial.ok else "FAILED"
            killed = (f"killed at {trial.kill_after_s:.2f}s"
                      if trial.killed else "finished before kill")
            lines.append(
                f"trial {trial.index:2d}: {killed}, "
                f"{trial.ticks_checked} tick digests checked — {verdict}")
            for failure in trial.failures:
                lines.append(f"    {failure}")
        status = "all recoveries bit-identical" if self.ok \
            else "RECOVERY DIVERGENCE DETECTED"
        return "\n".join(lines + [status])


# ----------------------------------------------------------------------
# Staging & inspection helpers
# ----------------------------------------------------------------------
def stage_trace_specs(state_dir: str, config: ServeConfig) -> int:
    """Pre-stage the trace's evaluation jobs as inbox spec files.

    Staging everything before boot pins the admission schedule: the
    daemon consumes ``job-<n>.json`` in sorted order, batch by batch,
    so the tick sequence is timing-independent.  Returns the number of
    specs staged.
    """
    spec = get_spec(config.trace)
    if config.jobs is not None:
        spec = spec.with_jobs(config.jobs)
    if config.seed is not None:
        spec = spec.with_seed(config.seed)
    jobs = TraceGenerator(spec).generate()
    inbox_dir = os.path.join(state_dir, "inbox")
    for index, job in enumerate(jobs, start=1):
        payload = job_to_spec(job)
        payload.pop("job_id", None)  # the daemon assigns service ids
        atomic_write_text(os.path.join(inbox_dir, f"job-{index:08d}.json"),
                          json.dumps(payload, sort_keys=True) + "\n")
    return len(jobs)


def commit_digests(state_dir: str) -> Dict[int, str]:
    """``tick -> digest`` from every WAL commit record in a state dir."""
    wal = WriteAheadLog(os.path.join(state_dir, "wal"), durable=False)
    digests: Dict[int, str] = {}
    for segment in wal.segments():
        for record in wal.replay_segment(segment):
            if record.kind == "commit":
                digests[int(record.rec["tick"])] = \
                    str(record.rec["digest"])
    return digests


def final_state(state_dir: str) -> Dict[str, Any]:
    """Terminal summary of a drained state dir (from its last snapshot)."""
    with Store(state_dir) as store:
        clean = store.is_clean()
        snapshot = store.latest_snapshot()
        if snapshot is None:
            raise RuntimeError(f"{state_dir}: no snapshot to inspect")
        tick, _, digest, blob = snapshot
    core = SimCore.from_blob(blob)
    finished = sum(1 for row in core.job_statuses()
                   if row["status"] == "finished")
    return {"tick": tick, "digest": digest, "clean": clean,
            "sim_now": core.sim.now,
            "events": core.sim._events_processed,
            "jobs": len(core.sim.jobs), "finished": finished,
            "degraded": core.degraded}


# ----------------------------------------------------------------------
# Subprocess driver
# ----------------------------------------------------------------------
def _serve_argv(state_dir: str, config: ServeConfig) -> List[str]:
    argv = [sys.executable, "-m", "repro", "serve",
            "--state-dir", state_dir,
            "--trace", config.trace,
            "--scheduler", config.scheduler,
            "--batch", str(config.batch),
            "--events-per-tick", str(config.events_per_tick),
            "--poll-interval", "0.01",
            "--exit-when-idle", "--no-fsync"]
    if config.jobs is not None:
        argv += ["--jobs", str(config.jobs)]
    if config.seed is not None:
        argv += ["--seed", str(config.seed)]
    if config.faults is not None:
        argv += ["--faults", config.faults]
    return argv


def _spawn(state_dir: str, config: ServeConfig) -> "subprocess.Popen[bytes]":
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(_serve_argv(state_dir, config), env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def _run_to_completion(state_dir: str, config: ServeConfig,
                       timeout: float) -> float:
    """Boot the daemon and wait for its idle-exit; returns wall seconds."""
    started = time.monotonic()
    proc = _spawn(state_dir, config)
    try:
        code = proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        raise RuntimeError(
            f"daemon in {state_dir} did not drain within {timeout:.0f}s")
    if code != 0:
        raise RuntimeError(
            f"daemon in {state_dir} exited with code {code}")
    return time.monotonic() - started


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def chaos_run(workdir: str, config: ServeConfig, points: int = 20,
              chaos_seed: int = 1, timeout: float = 600.0,
              progress: Optional[Any] = None) -> ChaosResult:
    """Run the control plus ``points`` seeded SIGKILL trials.

    Kill offsets are drawn from ``random.Random(chaos_seed)`` as
    fractions of the control's wall time, so a sweep is reproducible
    for a given (config, chaos_seed, machine-speed) triple.
    """
    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    control_dir = os.path.join(workdir, "control")
    staged = stage_trace_specs(control_dir, config)
    say(f"control: staged {staged} specs; running to completion")
    control_wall = _run_to_completion(control_dir, config, timeout)
    control_digests = commit_digests(control_dir)
    control_final = final_state(control_dir)
    if not control_final["clean"]:
        raise RuntimeError("control run did not drain cleanly")
    result = ChaosResult(control_wall_s=control_wall,
                         control_ticks=max(control_digests, default=0),
                         control_final=control_final)

    rng = random.Random(chaos_seed)
    fractions = [rng.uniform(0.02, 0.95) for _ in range(points)]
    for index, fraction in enumerate(fractions):
        kill_after = fraction * control_wall
        trial_dir = os.path.join(workdir, f"trial-{index:02d}")
        stage_trace_specs(trial_dir, config)
        proc = _spawn(trial_dir, config)
        killed = True
        try:
            proc.wait(timeout=kill_after)
            killed = False  # finished before the kill point
        except subprocess.TimeoutExpired:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
        say(f"trial {index}: "
            + (f"SIGKILL at {kill_after:.2f}s" if killed
               else "finished early")
            + "; restarting for recovery")
        # The restarted daemon recovers and runs the workload to its
        # end; --exit-when-idle drains it cleanly.
        _run_to_completion(trial_dir, config, timeout)
        trial = _check_trial(index, kill_after, killed, trial_dir,
                             control_digests, control_final)
        result.trials.append(trial)
        say(f"trial {index}: "
            + ("ok" if trial.ok else "; ".join(trial.failures)))
    return result


def _check_trial(index: int, kill_after: float, killed: bool,
                 trial_dir: str, control_digests: Dict[int, str],
                 control_final: Dict[str, Any]) -> TrialResult:
    failures: List[str] = []
    trial_digests = commit_digests(trial_dir)
    checked = 0
    for tick in sorted(trial_digests):
        expected = control_digests.get(tick)
        if expected is None:
            failures.append(
                f"tick {tick}: trial committed a tick the control "
                "never ran")
            continue
        checked += 1
        if trial_digests[tick] != expected:
            failures.append(
                f"tick {tick}: digest {trial_digests[tick][:12]}… != "
                f"control {expected[:12]}…")
    missing = set(control_digests) - set(trial_digests)
    if missing:
        failures.append(
            f"trial never committed tick(s) {sorted(missing)[:5]}")
    trial_final = final_state(trial_dir)
    for key in ("digest", "sim_now", "events", "jobs", "finished",
                "degraded"):
        if trial_final[key] != control_final[key]:
            failures.append(
                f"final {key}: {trial_final[key]!r} != control "
                f"{control_final[key]!r}")
    if not trial_final["clean"]:
        failures.append("trial store not clean after drain")
    return TrialResult(index=index, kill_after_s=kill_after,
                       killed=killed, ticks_checked=checked,
                       failures=failures)
