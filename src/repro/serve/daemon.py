"""The service loop: admission ticks, snapshots, drain, watchdog.

One :class:`ServeDaemon` owns a state directory::

    <state_dir>/
        serve.sqlite    durable store (config, snapshots, job catalog)
        wal/            write-ahead log segments
        inbox/          job-spec drop box

Each *service tick* is journaled write-ahead and then applied:

1. Poll the inbox for up to ``config.batch`` unconsumed specs (sorted
   filename order — the admission schedule is timing-independent).
2. Append a ``tick`` WAL record carrying the full specs (write-ahead:
   durable before anything is applied).
3. Apply it via :func:`repro.serve.recovery.apply_tick_record` — the
   same function recovery replays — admitting jobs and advancing the
   simulator by at most ``config.events_per_tick`` event batches.
4. Append the ``commit`` record with the post-tick state digest.

A crash at *any* point in that sequence is recoverable: before the
tick record is durable the tick simply never happened; after it, the
deterministic re-application reproduces the exact state the commit
digest certifies.

Lifecycle hardening: SIGTERM/SIGINT request a graceful drain (finish
the in-flight tick, final snapshot, flush and close WAL + store, mark
the store clean); a watchdog heartbeat timestamp is exported through
``/metrics`` and gates ``/healthz``; a :class:`SimulationError` flips
the core into degraded mode (reads keep working, submissions get 503)
instead of killing the process.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from types import FrameType
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.lineage import (COMPONENTS, JCTDecomposition,
                               LineageCollector, decompose)
from repro.obs.live import (DEFAULT_SIZE_BUCKETS, LiveRegistry,
                            publish_profiler, render_dashboard)
from repro.obs.logutil import get_logger, log_context
from repro.obs.prof import SimProfiler
from repro.serve.config import ServeConfig
from repro.serve.core import SimCore
from repro.serve.http import DegradedError, HttpFrontend
from repro.serve.inbox import Inbox, InboxItem
from repro.serve.jobspec import JobSpecError, job_from_spec
from repro.serve.recovery import RecoveryReport, apply_tick_record, recover
from repro.serve.store import Store
from repro.serve.wal import WriteAheadLog

__all__ = ["ServeDaemon"]

logger = get_logger("serve.daemon")

#: ``/healthz`` fails once the loop heartbeat is older than this many
#: poll intervals (plus a floor for very fast polls).
_HEARTBEAT_SLACK = 20.0


class ServeDaemon:
    """Crash-recoverable scheduler service over one state directory.

    Parameters
    ----------
    state_dir:
        Root of the durable state (created if missing).
    config:
        Requested :class:`ServeConfig`; must match the stored genesis
        config on restarts (``None`` = use the stored one).
    poll_interval:
        Idle sleep between inbox polls, seconds (wall clock; never
        feeds into simulated time).
    snapshot_every:
        Take a store snapshot (and rotate the WAL segment) every N
        committed ticks.
    http_port:
        Localhost HTTP port (0 = ephemeral); ``None`` disables HTTP.
    inbox_capacity:
        Pending-spec bound before submissions get backpressure.
    durable:
        fsync WAL appends and renames (power-loss durability).  Tests
        may disable for speed; SIGKILL-crash safety does not need it.
    exit_when_idle:
        Leave the service loop once at least one job was admitted and
        the simulator went idle with an empty inbox (CI/batch mode).
    telemetry:
        Enable the live telemetry plane: a :class:`LiveRegistry` with
        latency histograms on every hot edge, the ``SimProfiler``
        attached to the engine, Prometheus text on ``/metrics`` and the
        ``/dashboard`` page.  Off = literally zero instrumentation (no
        clock reads beyond the watchdog heartbeat), and either way the
        scheduling stream is bit-identical — telemetry only ever
        *reads* (regression-tested).
    telemetry_refresh:
        Publish the slow-path metrics (profiler span summaries, WAL /
        store sizes) every N committed ticks.
    """

    def __init__(self, state_dir: str,
                 config: Optional[ServeConfig] = None, *,
                 poll_interval: float = 0.05,
                 snapshot_every: int = 25,
                 http_port: Optional[int] = None,
                 inbox_capacity: int = 64,
                 durable: bool = True,
                 exit_when_idle: bool = False,
                 telemetry: bool = True,
                 telemetry_refresh: int = 10) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if telemetry_refresh < 1:
            raise ValueError("telemetry_refresh must be >= 1")
        self.state_dir = state_dir
        self.requested_config = config
        self.poll_interval = poll_interval
        self.snapshot_every = snapshot_every
        self.http_port = http_port
        self.durable = durable
        self.exit_when_idle = exit_when_idle
        self.telemetry_refresh = telemetry_refresh
        #: The live telemetry plane; ``None`` = off (zero overhead).
        self.live: Optional[LiveRegistry] = \
            LiveRegistry() if telemetry else None
        self.profiler: Optional[SimProfiler] = \
            SimProfiler() if telemetry else None
        self.lineage: Optional[LineageCollector] = \
            LineageCollector() if telemetry else None
        #: Memoized per-job decompositions feeding the queue-component
        #: gauges (a finished job's decomposition never changes).
        self._decomposed: Dict[int, JCTDecomposition] = {}
        self._component_totals: Dict[str, float] = \
            {name: 0.0 for name in COMPONENTS}
        self._dropped_published = 0

        self.store: Optional[Store] = None
        self.wal: Optional[WriteAheadLog] = None
        self.core: Optional[SimCore] = None
        self.inbox = Inbox(os.path.join(state_dir, "inbox"),
                           capacity=inbox_capacity)
        self.http: Optional[HttpFrontend] = None
        self.recovery: Optional[RecoveryReport] = None

        self._lock = threading.RLock()
        self._stop_requested = False
        self._started = False
        self._admitted_any = False
        self._heartbeat = 0.0
        self._ticks_this_boot = 0
        self._last_snapshot_monotonic: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> RecoveryReport:
        """Open the store, run recovery, start the HTTP frontend."""
        if self._started:
            raise RuntimeError("daemon already started")
        self.store = Store(self.state_dir)
        self.wal = WriteAheadLog(os.path.join(self.state_dir, "wal"),
                                 durable=self.durable)
        live = self.live
        recover_started = \
            time.perf_counter() if live is not None else 0.0
        self.core, self.recovery = recover(self.store, self.wal,
                                           self.requested_config)
        if live is not None:
            live.histogram(
                "serve_recovery_replay_seconds",
                "Wall time of the boot-time snapshot load + WAL replay"
            ).observe(time.perf_counter() - recover_started)
            live.counter("serve_boots_total",
                         "Daemon boots (each runs recovery)").inc()
            live.gauge("serve_recovery_replayed_ticks",
                       "Tick records replayed at the last boot"
                       ).set(float(self.recovery.replayed_ticks))
            live.gauge("serve_recovery_torn_records",
                       "Torn WAL records truncated at the last boot"
                       ).set(float(self.recovery.torn_records))
            # The profiler and lineage collector observe the engine
            # from here on; both are stashed out of snapshot blobs (see
            # SimCore.to_blob) and feed nothing back, so the event
            # stream stays identical.
            self.core.sim.profiler = self.profiler
            self.core.sim.lineage = self.lineage
            self.wal.on_append = self._observe_wal_append
            # Register at zero so the dropped-events counter and the
            # queue gauges are scrapable before the first refresh.
            live.counter("tracer_dropped_events_total",
                         "Trace events dropped by the ring buffer "
                         "(nonzero = the event log is incomplete)")
            self._publish_lineage(live)
        self._admitted_any = bool(self.core.sim.jobs)
        # Dirty until a graceful close: a SIGKILL from here on leaves
        # clean=0 behind and the next boot knows to distrust the tail.
        self.store.mark_dirty()
        self._heartbeat = time.monotonic()
        if self.http_port is not None:
            self.http = HttpFrontend(self, port=self.http_port)
            self.http.start()
        self._started = True
        logger.info("serve started in %s: %s", self.state_dir,
                    self.recovery.describe())
        return self.recovery

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT request a graceful drain (main thread only)."""
        def _request_stop(signum: int,
                          frame: Optional[FrameType]) -> None:
            logger.info("signal %d: drain requested", signum)
            self._stop_requested = True

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    def run_forever(self) -> int:
        """The service loop; returns the number of ticks run this boot.

        Loops until a drain is requested (SIGTERM/SIGINT or
        :meth:`request_stop`) — or, with ``exit_when_idle``, until the
        admitted work completes — then shuts down gracefully.
        """
        if not self._started:
            self.start()
        try:
            while not self._stop_requested:
                progressed = self.tick()
                self._heartbeat = time.monotonic()
                if not progressed:
                    if self.exit_when_idle and self._admitted_any:
                        logger.info("idle with work complete; draining")
                        break
                    time.sleep(self.poll_interval)
        finally:
            self.close()
        return self._ticks_this_boot

    def request_stop(self) -> None:
        self._stop_requested = True

    def close(self) -> None:
        """Graceful drain: final snapshot, flush + close WAL and store."""
        if not self._started:
            return
        if self.http is not None:
            self.http.stop()
            self.http = None
        with self._lock:
            assert self.core is not None and self.store is not None \
                and self.wal is not None
            self._snapshot()
            self.wal.close()
            self.store.mark_clean()
            self.store.close()
            self._started = False
        logger.info("serve drained cleanly at tick %d", self.core.tick)

    # ------------------------------------------------------------------
    # The service tick
    # ------------------------------------------------------------------
    def tick(self) -> bool:
        """Run one journaled service tick; ``False`` when idle."""
        with self._lock:
            assert self.core is not None and self.wal is not None \
                and self.store is not None
            core = self.core
            live = self.live
            tick_started = \
                time.perf_counter() if live is not None else 0.0
            items = self.inbox.poll(core.consumed, core.config.batch)
            if live is not None:
                live.histogram(
                    "serve_inbox_poll_seconds",
                    "Wall time of one inbox poll (listdir + reads)"
                ).observe(time.perf_counter() - tick_started)
            if core.degraded is not None:
                # Degraded: stop admitting and advancing; reads only.
                return False
            if not items and not core.active:
                if live is not None:
                    live.counter("serve_idle_polls_total",
                                 "Polls that found no work").inc()
                return False
            # Correlation: every log line below — daemon, engine, WAL,
            # inbox — carries the tick being built and the segment it
            # journals into.
            with log_context(tick=core.tick + 1,
                             wal_segment=self.wal.active_segment):
                rec = self._tick_record(core.tick + 1, items)
                self.wal.append(rec)  # write-ahead: durable before applied
                dispositions = apply_tick_record(core, rec)
                self.wal.append({"kind": "commit", "tick": core.tick,
                                 "digest": core.digest(),
                                 "now": core.sim.now,
                                 "events": core.sim._events_processed,
                                 "degraded": core.degraded})
                self._ticks_this_boot += 1
                if dispositions:
                    self._admitted_any = True
                    self._catalog(core.tick, rec, dispositions)
                # Consumed spec files may go: content is in the WAL.
                self.inbox.remove([str(n) for n in rec["files"]]
                                  + [str(n) for n in rec["skipped"]])
                if core.degraded is not None:
                    logger.error("core degraded at tick %d: %s",
                                 core.tick, core.degraded)
                if core.tick % self.snapshot_every == 0:
                    self._snapshot()
            if live is not None:
                self._observe_tick(live, core, len(items),
                                   time.perf_counter() - tick_started)
            return True

    def _observe_tick(self, live: LiveRegistry, core: SimCore,
                      batch_size: int, seconds: float) -> None:
        """Per-tick fast-path metrics (telemetry on only)."""
        live.histogram("serve_tick_duration_seconds",
                       "Wall time of one journaled service tick"
                       ).observe(seconds)
        live.histogram("serve_inbox_batch_size",
                       "Specs admitted per service tick",
                       buckets=DEFAULT_SIZE_BUCKETS
                       ).observe(float(batch_size))
        live.counter("serve_ticks_total",
                     "Committed service ticks").inc()
        when = float(core.tick)
        live.gauge("serve_sim_now_seconds",
                   "Simulated clock (x = service tick)"
                   ).set(core.sim.now, time=when)
        live.gauge("serve_jobs_total", "Jobs admitted since genesis"
                   ).set(float(len(core.sim.jobs)), time=when)
        live.gauge("serve_jobs_unfinished",
                   "Admitted jobs not yet finished (x = service tick)"
                   ).set(float(core.sim._unfinished), time=when)
        live.gauge("serve_events_processed",
                   "Simulator events dispatched since genesis"
                   ).set(float(core.sim._events_processed), time=when)
        # Per-tick, not on the refresh interval: a drained run would
        # otherwise never publish its final decompositions (no further
        # ticks fire).  Incremental totals keep this O(new completions).
        self._publish_lineage(live)
        if core.tick % self.telemetry_refresh == 0:
            self._publish_slow(live)

    def _publish_slow(self, live: LiveRegistry) -> None:
        """Slow-path metrics on the refresh interval: profiler span
        summaries and durable-state sizes."""
        assert self.wal is not None and self.store is not None
        if self.profiler is not None:
            publish_profiler(live, self.profiler)
        stats = self.wal.stats()
        live.gauge("serve_wal_segments", "WAL segment files on disk"
                   ).set(float(stats["segments"]))
        live.gauge("serve_wal_bytes", "Total WAL bytes on disk"
                   ).set(float(stats["bytes"]))
        live.gauge("serve_store_bytes",
                   "sqlite store bytes on disk (db + WAL + SHM)"
                   ).set(float(self.store.db_bytes()))
        live.gauge("serve_snapshots", "Snapshots held by the store"
                   ).set(float(len(self.store.snapshot_ticks())))

    def _publish_lineage(self, live: LiveRegistry) -> None:
        """Queue-delay component gauges from the causal lineage.

        Each completed job is decomposed exactly once (memoized); the
        gauges publish cumulative seconds per JCT component across all
        completed jobs, so ``/metrics`` answers "where is admitted
        work's time going?" without touching the hot path.  Also
        mirrors the tracer's ring-buffer drop count as a counter.
        """
        assert self.core is not None
        lineage = self.lineage
        if lineage is not None:
            for job_id in lineage.completed_job_ids():
                if job_id in self._decomposed:
                    continue
                try:
                    decomposition = decompose(lineage, job_id)
                except (KeyError, ValueError):  # racing a partial job
                    continue
                self._decomposed[job_id] = decomposition
                for name, seconds in decomposition.components().items():
                    self._component_totals[name] += seconds
            for name, seconds in sorted(self._component_totals.items()):
                live.gauge(
                    "serve_queue_component_seconds",
                    "Cumulative JCT-decomposition seconds across "
                    "completed jobs, per causal component",
                    {"component": name}).set(seconds)
            live.gauge("serve_jobs_decomposed",
                       "Completed jobs with a published JCT "
                       "decomposition").set(float(len(self._decomposed)))
            if lineage.n_dropped:
                live.gauge("serve_lineage_dropped_events",
                           "Lineage events dropped at the collector "
                           "cap (decompositions may be partial)"
                           ).set(float(lineage.n_dropped))
        dropped = int(getattr(self.core.sim.tracer, "n_dropped", 0) or 0)
        if dropped > self._dropped_published:
            live.counter(
                "tracer_dropped_events_total",
                "Trace events dropped by the ring buffer "
                "(nonzero = the event log is incomplete)"
            ).inc(float(dropped - self._dropped_published))
            self._dropped_published = dropped

    def _observe_wal_append(self, kind: str, nbytes: int,
                            seconds: float) -> None:
        """WAL append observer (installed only when telemetry is on)."""
        assert self.live is not None
        self.live.histogram("serve_wal_append_seconds",
                            "WAL append latency incl. flush + fsync",
                            {"kind": kind}).observe(seconds)
        self.live.counter("serve_wal_appended_bytes_total",
                          "Bytes appended to the WAL").inc(float(nbytes))

    def _tick_record(self, tick: int,
                     items: List[InboxItem]) -> Dict[str, Any]:
        readable = [item for item in items if item.spec is not None]
        skipped = [item for item in items if item.spec is None]
        for item in skipped:
            logger.warning("inbox %s skipped: %s", item.name, item.error)
        return {"kind": "tick", "tick": tick,
                "files": [item.name for item in readable],
                "specs": [item.spec for item in readable],
                "skipped": [item.name for item in skipped]}

    def _catalog(self, tick: int, rec: Dict[str, Any],
                 dispositions: List[Dict[str, Any]]) -> None:
        """Mirror admission outcomes into the store's job catalog."""
        assert self.store is not None
        specs = {str(name): spec
                 for name, spec in zip(rec["files"], rec["specs"])}
        for dispo in dispositions:
            job_id = dispo["job_id"]
            if job_id is None:
                continue  # rejected specs carry no catalog row
            self.store.record_job(int(job_id), tick,
                                  str(dispo["disposition"]),
                                  specs.get(str(dispo["file"]), {}))
            logger.info("tick %d: job %s %s (%s)", tick, job_id,
                        dispo["disposition"], dispo["file"])

    def _snapshot(self) -> None:
        """Snapshot to the store and rotate the WAL segment."""
        assert self.core is not None and self.store is not None \
            and self.wal is not None
        core = self.core
        live = self.live
        started = time.perf_counter() if live is not None else 0.0
        self.wal.append({"kind": "snapshot", "tick": core.tick})
        self.store.put_snapshot(core.tick, self.wal.next_seq,
                                core.digest(), core.to_blob())
        self.wal.open_segment(core.tick, self.wal.next_seq)
        self._last_snapshot_monotonic = time.monotonic()
        if live is not None:
            live.histogram(
                "serve_snapshot_write_seconds",
                "Wall time of one snapshot (pickle + sqlite + rotate)"
            ).observe(time.perf_counter() - started)
            live.gauge("serve_last_snapshot_tick",
                       "Tick of the newest store snapshot"
                       ).set(float(core.tick))
        logger.info("snapshot at tick %d (seq %d)", core.tick,
                    self.wal.next_seq)

    # ------------------------------------------------------------------
    # Frontend API (HTTP handlers and tests; thread-safe)
    # ------------------------------------------------------------------
    def submit(self, spec: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate and drop one spec into the inbox.

        Raises ``JobSpecError`` on schema violations (fail fast — the
        client gets a 400 instead of a journaled rejection), or the
        admission-time rejection reason when the spec can never be
        placed; ``InboxFullError`` under backpressure;
        :class:`DegradedError` in degraded mode.
        """
        with self._lock:
            assert self.core is not None
            if self.core.degraded is not None:
                raise DegradedError(
                    f"service is degraded: {self.core.degraded}")
            job_from_spec(dict(spec), job_id=0)  # schema check
            reason = self.core.admission_error(dict(spec))
            if reason is not None:
                raise JobSpecError(reason)
            name = self.inbox.submit(dict(spec), self.core.consumed)
            return {"status": "accepted", "file": name}

    def status(self) -> Dict[str, Any]:
        with self._lock:
            assert self.core is not None
            core = self.core
            return {
                "tick": core.tick,
                "sim_now": core.sim.now,
                "active": core.active,
                "degraded": core.degraded,
                "jobs": core.job_statuses(),
                "recovery": (self.recovery.describe()
                             if self.recovery else None),
            }

    def metrics(self) -> Dict[str, Any]:
        with self._lock:
            assert self.core is not None and self.store is not None \
                and self.wal is not None
            core = self.core
            finished = sum(1 for row in core.job_statuses()
                           if row["status"] == "finished")
            wal_stats = self.wal.stats()
            snap_tick = self.store.latest_snapshot_tick()
            snap_age_s = None
            if self._last_snapshot_monotonic is not None:
                snap_age_s = round(
                    time.monotonic() - self._last_snapshot_monotonic, 3)
            return {
                "ticks": core.tick,
                "ticks_this_boot": self._ticks_this_boot,
                "events_processed": core.sim._events_processed,
                "sim_now": core.sim.now,
                "jobs_total": len(core.sim.jobs),
                "jobs_finished": finished,
                "inbox_pending": len(self.inbox.pending(core.consumed)),
                "snapshots": len(self.store.snapshot_ticks()),
                "wal_segments": wal_stats["segments"],
                "wal_bytes": wal_stats["bytes"],
                "store_bytes": self.store.db_bytes(),
                "last_snapshot_tick": snap_tick,
                "snapshot_age_ticks": (None if snap_tick is None
                                       else core.tick - snap_tick),
                "snapshot_age_s": snap_age_s,
                "heartbeat_age_s": round(self.heartbeat_age(), 3),
                "degraded": core.degraded is not None,
                "telemetry": self.live is not None,
            }

    def health(self) -> Tuple[bool, Dict[str, Any]]:
        """Watchdog verdict for ``/healthz``.

        The detail separates the two failure modes so probes can tell
        a *slow tick* (``stale``: the loop heartbeat outran its budget)
        from a *degraded core* (``degraded``: a deterministic
        simulation failure; restarts will reproduce it).
        """
        with self._lock:
            assert self.core is not None
            age = self.heartbeat_age()
            budget = max(5.0, self.poll_interval * _HEARTBEAT_SLACK)
            stale = age > budget
            degraded = self.core.degraded is not None
            self._set_watchdog_gauges(age, stale, degraded)
            detail = {"ok": not (stale or degraded),
                      "stale": stale,
                      "heartbeat_age_s": round(age, 3),
                      "heartbeat_budget_s": budget,
                      "degraded": self.core.degraded}
            return not (stale or degraded), detail

    def heartbeat_age(self) -> float:
        return time.monotonic() - self._heartbeat

    def _set_watchdog_gauges(self, age: float, stale: bool,
                             degraded: bool) -> None:
        if self.live is None:
            return
        self.live.gauge("serve_heartbeat_age_seconds",
                        "Service-loop watchdog heartbeat age").set(age)
        self.live.gauge("serve_stale",
                        "1 while the heartbeat outran its budget "
                        "(slow tick)").set(1.0 if stale else 0.0)
        self.live.gauge("serve_degraded",
                        "1 while the core is in degraded mode"
                        ).set(1.0 if degraded else 0.0)

    # ------------------------------------------------------------------
    # Live telemetry surfaces (``None`` when telemetry is off)
    # ------------------------------------------------------------------
    def prometheus(self) -> Optional[str]:
        """The live registry as Prometheus text exposition."""
        if self.live is None:
            return None
        with self._lock:
            assert self.core is not None
            age = self.heartbeat_age()
            budget = max(5.0, self.poll_interval * _HEARTBEAT_SLACK)
            self._set_watchdog_gauges(
                age, age > budget, self.core.degraded is not None)
        return self.live.render_prometheus()

    def live_json(self) -> Optional[Dict[str, Any]]:
        """The live registry as one JSON document (dashboard polling)."""
        if self.live is None:
            return None
        return self.live.render_json()

    def dashboard_html(self) -> Optional[str]:
        """The self-contained ``/dashboard`` page."""
        if self.live is None:
            return None
        title = f"repro serve · {self.state_dir}"
        return render_dashboard(self.live, title=title)

    def __enter__(self) -> "ServeDaemon":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
