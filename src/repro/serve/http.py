"""Localhost HTTP frontend for the serve daemon (stdlib ``http.server``).

Endpoints:

* ``POST /submit`` — body is one job spec; the frontend drops it into
  the file inbox (the single admission path — HTTP submissions and
  direct file drops are admitted by the identical polling logic).
  Responses: ``202`` accepted (with assigned inbox file), ``400``
  invalid spec/JSON, ``429`` inbox full (with ``Retry-After``), ``503``
  degraded mode.
* ``GET /status`` — service tick, simulated clock, per-job statuses.
* ``GET /metrics`` — content-negotiated: the default is the Prometheus
  text exposition (``text/plain; version=0.0.4``) rendered from the
  daemon's live registry; ``Accept: application/json`` keeps the
  original JSON counter document; ``?format=live`` returns the registry
  itself as JSON (what the dashboard polls).  With telemetry disabled
  the text form answers ``503`` and the JSON form keeps working.
  Includes the causal-lineage queue-delay gauges
  (``repro_serve_queue_component_seconds{component=...}``) and the
  ``repro_tracer_dropped_events_total`` counter.
* ``GET /dashboard`` — the self-contained live dashboard page
  (``503`` when telemetry is off).
* ``GET /healthz`` — ``200 ok`` while the service loop heartbeat is
  fresh and the core is healthy, else ``503``; the JSON detail carries
  distinct ``stale`` (slow tick) and ``degraded`` flags.

When telemetry is on, every request lands in the
``repro_serve_http_request_seconds`` histogram labeled by normalized
route and status code (unknown paths collapse into one ``other`` label
so cardinality stays bounded).

The server binds localhost only, runs in daemon threads, and applies a
per-request socket timeout so a stuck client cannot wedge a handler
thread.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Thread
from typing import Any, Dict, Optional, Tuple, Type

from repro.obs.live import CONTENT_TYPE_PROMETHEUS
from repro.obs.logutil import get_logger
from repro.serve.inbox import InboxFullError
from repro.serve.jobspec import JobSpecError

__all__ = ["DegradedError", "HttpFrontend"]

logger = get_logger("serve.http")

_MAX_BODY = 1 << 20  # 1 MiB: job specs are small; bound request memory

#: Routes that get their own latency label; everything else is "other".
_KNOWN_ROUTES = frozenset(
    {"/submit", "/status", "/metrics", "/healthz", "/dashboard"})


class DegradedError(RuntimeError):
    """The service is in degraded mode and not accepting submissions."""


def _make_handler(daemon: Any) -> Type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        timeout = 10.0  # per-request socket timeout
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        # -- plumbing --------------------------------------------------
        def log_message(self, fmt: str, *args: Any) -> None:
            logger.debug("http: " + fmt, *args)

        def _send(self, code: int, body: bytes,
                  content_type: str,
                  headers: Optional[Dict[str, str]] = None) -> None:
            self._status = code
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)

        def _reply(self, code: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
            body = (json.dumps(payload, sort_keys=True) + "\n"
                    ).encode("utf-8")
            self._send(code, body, "application/json", headers)

        def _reply_text(self, code: int, text: str,
                        content_type: str) -> None:
            self._send(code, text.encode("utf-8"), content_type)

        def _observe(self, route: str, started: float) -> None:
            live = daemon.live
            if live is None:
                return
            if route not in _KNOWN_ROUTES:
                route = "other"
            status = str(getattr(self, "_status", 500))
            live.histogram(
                "serve_http_request_seconds",
                "HTTP request latency by route and status",
                {"route": route, "status": status},
            ).observe(time.perf_counter() - started)

        # -- routes ----------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            started = time.perf_counter() if daemon.live is not None \
                else 0.0
            path, _, query = self.path.partition("?")
            try:
                self._route_get(path, query)
            finally:
                self._observe(path, started)

        def _route_get(self, path: str, query: str) -> None:
            if path == "/status":
                self._reply(200, daemon.status())
            elif path == "/metrics":
                self._metrics(query)
            elif path == "/healthz":
                healthy, detail = daemon.health()
                self._reply(200 if healthy else 503, detail)
            elif path == "/dashboard":
                page = daemon.dashboard_html()
                if page is None:
                    self._reply(503, {"error": "telemetry is disabled "
                                      "(serve --no-telemetry)"})
                else:
                    self._reply_text(200, page,
                                     "text/html; charset=utf-8")
            else:
                self._reply(404, {"error": f"no such path {path!r}"})

        def _metrics(self, query: str) -> None:
            """Content negotiation for ``GET /metrics``.

            Priority: ``?format=live`` (registry JSON, the dashboard's
            poll target) > ``?format=json`` / ``Accept:
            application/json`` (the original counter document) > the
            Prometheus text exposition.
            """
            accept = self.headers.get("Accept", "")
            if "format=live" in query:
                doc = daemon.live_json()
                if doc is None:
                    self._reply(503, {"error": "telemetry is disabled"})
                else:
                    self._reply(200, doc)
            elif "format=json" in query or "application/json" in accept:
                self._reply(200, daemon.metrics())
            else:
                text = daemon.prometheus()
                if text is None:
                    self._reply(503, {
                        "error": "telemetry is disabled; JSON metrics "
                                 "remain at Accept: application/json"})
                else:
                    self._reply_text(200, text,
                                     CONTENT_TYPE_PROMETHEUS)

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            started = time.perf_counter() if daemon.live is not None \
                else 0.0
            path = self.path.partition("?")[0]
            try:
                self._route_post(path)
            finally:
                self._observe(path, started)

        def _route_post(self, path: str) -> None:
            if path != "/submit":
                self._reply(404, {"error": f"no such path {path!r}"})
                return
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0 or length > _MAX_BODY:
                self._reply(400, {"error": "missing or oversized body"})
                return
            try:
                spec = json.loads(self.rfile.read(length))
            except ValueError as exc:
                self._reply(400, {"error": f"invalid JSON: {exc}"})
                return
            try:
                result = daemon.submit(spec)
            except (JobSpecError, ValueError) as exc:
                self._reply(400, {"error": str(exc)})
            except InboxFullError as exc:
                self._reply(429, {"error": str(exc)},
                            {"Retry-After": f"{exc.retry_after:.0f}"})
            except DegradedError as exc:
                self._reply(503, {"error": str(exc)})
            else:
                self._reply(202, result)

    return Handler


class HttpFrontend:
    """Threaded HTTP server bound to localhost."""

    def __init__(self, daemon: Any, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._server = ThreadingHTTPServer((host, port),
                                           _make_handler(daemon))
        self._server.daemon_threads = True
        self._thread: Optional[Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — port is concrete even for 0."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> None:
        self._thread = Thread(target=self._server.serve_forever,
                              name="serve-http", daemon=True)
        self._thread.start()
        logger.info("http frontend on %s:%d", *self.address)

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
