"""Localhost HTTP frontend for the serve daemon (stdlib ``http.server``).

Endpoints (all JSON):

* ``POST /submit`` — body is one job spec; the frontend drops it into
  the file inbox (the single admission path — HTTP submissions and
  direct file drops are admitted by the identical polling logic).
  Responses: ``202`` accepted (with assigned inbox file), ``400``
  invalid spec/JSON, ``429`` inbox full (with ``Retry-After``), ``503``
  degraded mode.
* ``GET /status`` — service tick, simulated clock, per-job statuses.
* ``GET /metrics`` — counters and gauges, including the watchdog
  heartbeat age.
* ``GET /healthz`` — ``200 ok`` while the service loop heartbeat is
  fresh and the core is healthy, else ``503``.

The server binds localhost only, runs in daemon threads, and applies a
per-request socket timeout so a stuck client cannot wedge a handler
thread.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from threading import Thread
from typing import Any, Dict, Optional, Tuple, Type

from repro.obs.logutil import get_logger
from repro.serve.inbox import InboxFullError
from repro.serve.jobspec import JobSpecError

__all__ = ["DegradedError", "HttpFrontend"]

logger = get_logger("serve.http")

_MAX_BODY = 1 << 20  # 1 MiB: job specs are small; bound request memory


class DegradedError(RuntimeError):
    """The service is in degraded mode and not accepting submissions."""


def _make_handler(daemon: Any) -> Type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        timeout = 10.0  # per-request socket timeout
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        # -- plumbing --------------------------------------------------
        def log_message(self, fmt: str, *args: Any) -> None:
            logger.debug("http: " + fmt, *args)

        def _reply(self, code: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
            body = (json.dumps(payload, sort_keys=True) + "\n"
                    ).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)

        # -- routes ----------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            if self.path == "/status":
                self._reply(200, daemon.status())
            elif self.path == "/metrics":
                self._reply(200, daemon.metrics())
            elif self.path == "/healthz":
                healthy, detail = daemon.health()
                self._reply(200 if healthy else 503, detail)
            else:
                self._reply(404, {"error": f"no such path {self.path!r}"})

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            if self.path != "/submit":
                self._reply(404, {"error": f"no such path {self.path!r}"})
                return
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0 or length > _MAX_BODY:
                self._reply(400, {"error": "missing or oversized body"})
                return
            try:
                spec = json.loads(self.rfile.read(length))
            except ValueError as exc:
                self._reply(400, {"error": f"invalid JSON: {exc}"})
                return
            try:
                result = daemon.submit(spec)
            except (JobSpecError, ValueError) as exc:
                self._reply(400, {"error": str(exc)})
            except InboxFullError as exc:
                self._reply(429, {"error": str(exc)},
                            {"Retry-After": f"{exc.retry_after:.0f}"})
            except DegradedError as exc:
                self._reply(503, {"error": str(exc)})
            else:
                self._reply(202, result)

    return Handler


class HttpFrontend:
    """Threaded HTTP server bound to localhost."""

    def __init__(self, daemon: Any, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._server = ThreadingHTTPServer((host, port),
                                           _make_handler(daemon))
        self._server.daemon_threads = True
        self._thread: Optional[Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — port is concrete even for 0."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> None:
        self._thread = Thread(target=self._server.serve_forever,
                              name="serve-http", daemon=True)
        self._thread.start()
        logger.info("http frontend on %s:%d", *self.address)

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
