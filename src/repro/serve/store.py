"""Durable service state: a sqlite database in WAL mode.

The store holds three things:

* ``meta`` — a key/value table with the genesis :class:`ServeConfig`
  JSON, the ``clean`` shutdown flag, and the WAL sequence/tick cursors
  of the newest snapshot.
* ``snapshots`` — pickled :class:`~repro.serve.core.SimCore` blobs
  keyed by tick, each with the state digest taken at snapshot time.
* ``jobs`` — a catalog of every admitted job (spec JSON + disposition)
  for offline inspection; *not* used by recovery, which re-derives the
  job set from the WAL.

The clean-flag protocol implements unclean-shutdown detection: the flag
is set to ``0`` the moment the daemon opens the store for writing and
back to ``1`` only after a graceful drain (final snapshot + WAL close).
A SIGKILL therefore always leaves ``clean=0`` behind, and the next boot
runs recovery.  sqlite's own WAL journal makes each transaction
crash-atomic, so the store is never torn below the record level.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.ioutil import ensure_parent
from repro.serve.config import ServeConfig

__all__ = ["Store"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshots (
    tick     INTEGER PRIMARY KEY,
    next_seq INTEGER NOT NULL,
    digest   TEXT NOT NULL,
    blob     BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    job_id      INTEGER PRIMARY KEY,
    tick        INTEGER NOT NULL,
    disposition TEXT NOT NULL,
    spec        TEXT NOT NULL
);
"""


class Store:
    """sqlite-backed durable state under ``<state_dir>/serve.sqlite``."""

    def __init__(self, state_dir: str) -> None:
        self.state_dir = state_dir
        self.path = os.path.join(state_dir, "serve.sqlite")
        ensure_parent(self.path)
        # HTTP handler threads reach the store through the daemon (which
        # serializes every access behind one lock), so the connection
        # must be usable off its creating thread.
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=FULL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # -- meta ----------------------------------------------------------
    def _get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else str(row[0])

    def _set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value))
        self._conn.commit()

    def config(self) -> Optional[ServeConfig]:
        """The genesis config, or ``None`` for a brand-new store."""
        raw = self._get_meta("config")
        return None if raw is None else ServeConfig.from_json(raw)

    def init_config(self, config: ServeConfig) -> None:
        if self._get_meta("config") is not None:
            raise RuntimeError("store already has a genesis config")
        self._set_meta("config", config.to_json())
        self._set_meta("clean", "1")

    def is_clean(self) -> bool:
        """``True`` unless the last writer died without draining."""
        return self._get_meta("clean") != "0"

    def mark_dirty(self) -> None:
        self._set_meta("clean", "0")

    def mark_clean(self) -> None:
        self._set_meta("clean", "1")

    # -- snapshots -----------------------------------------------------
    def put_snapshot(self, tick: int, next_seq: int, digest: str,
                     blob: bytes) -> None:
        """Persist the snapshot at ``tick`` in one transaction."""
        self._conn.execute(
            "INSERT OR REPLACE INTO snapshots "
            "(tick, next_seq, digest, blob) VALUES (?, ?, ?, ?)",
            (tick, next_seq, digest, sqlite3.Binary(blob)))
        self._conn.commit()

    def latest_snapshot(self) -> Optional[Tuple[int, int, str, bytes]]:
        """``(tick, next_seq, digest, blob)`` of the newest snapshot."""
        row = self._conn.execute(
            "SELECT tick, next_seq, digest, blob FROM snapshots "
            "ORDER BY tick DESC LIMIT 1").fetchone()
        if row is None:
            return None
        return int(row[0]), int(row[1]), str(row[2]), bytes(row[3])

    def snapshot_ticks(self) -> List[int]:
        rows = self._conn.execute(
            "SELECT tick FROM snapshots ORDER BY tick").fetchall()
        return [int(row[0]) for row in rows]

    def latest_snapshot_tick(self) -> Optional[int]:
        """Newest snapshot's tick without loading its blob."""
        row = self._conn.execute(
            "SELECT MAX(tick) FROM snapshots").fetchone()
        return None if row is None or row[0] is None else int(row[0])

    def db_bytes(self) -> int:
        """On-disk size of the sqlite database (main file + WAL/SHM)."""
        total = 0
        for suffix in ("", "-wal", "-shm"):
            try:
                total += os.path.getsize(self.path + suffix)
            except OSError:
                pass
        return total

    # -- job catalog ---------------------------------------------------
    def record_job(self, job_id: int, tick: int, disposition: str,
                   spec: Dict[str, Any]) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO jobs "
            "(job_id, tick, disposition, spec) VALUES (?, ?, ?, ?)",
            (job_id, tick, disposition,
             json.dumps(spec, sort_keys=True)))
        self._conn.commit()

    def jobs(self) -> List[Tuple[int, int, str, Dict[str, Any]]]:
        rows = self._conn.execute(
            "SELECT job_id, tick, disposition, spec FROM jobs "
            "ORDER BY job_id").fetchall()
        return [(int(r[0]), int(r[1]), str(r[2]), json.loads(r[3]))
                for r in rows]

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
