"""The file inbox: runtime job submission by atomic file drop.

Clients (and the daemon's own HTTP ``/submit`` endpoint) place job-spec
JSON files into ``<state_dir>/inbox/``.  The daemon polls the inbox
each service tick and admits up to ``batch`` specs in **sorted filename
order** — that ordering, together with the durable consumed-set, is
what makes the admission schedule independent of wall-clock timing:
a recovered daemon and a never-crashed control admit the identical
sequence.

Drops must be atomic (write a ``.tmp`` sibling, then rename); the
daemon ignores non-``.json`` names, so a half-written temp file is
never picked up.  The inbox is *bounded*: when ``capacity`` pending
specs are already waiting, :meth:`Inbox.submit` raises
:class:`InboxFullError` — the HTTP layer maps this to ``429`` with a
``Retry-After`` hint — which is the service's burst backpressure.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set

from repro.obs.ioutil import atomic_write_text
from repro.obs.logutil import get_logger

__all__ = ["Inbox", "InboxFullError", "InboxItem"]

logger = get_logger("serve.inbox")

_NAME_RE = re.compile(r"^job-(\d{8})\.json$")


class InboxFullError(RuntimeError):
    """The inbox is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, capacity: int, retry_after: float) -> None:
        super().__init__(
            f"inbox is full ({capacity} pending specs); "
            f"retry in {retry_after:.0f}s")
        self.capacity = capacity
        self.retry_after = retry_after


@dataclass(frozen=True)
class InboxItem:
    """One polled inbox file: its spec, or the reason it is unreadable."""

    name: str
    spec: Optional[Dict[str, Any]]
    error: Optional[str] = None


class Inbox:
    """Bounded spec-file inbox under one directory."""

    def __init__(self, inbox_dir: str, capacity: int = 64,
                 retry_after: float = 5.0) -> None:
        self.inbox_dir = inbox_dir
        self.capacity = capacity
        self.retry_after = retry_after
        os.makedirs(inbox_dir, exist_ok=True)

    # -- polling (daemon side) -----------------------------------------
    def pending(self, consumed: Set[str]) -> List[str]:
        """Unconsumed ``.json`` filenames in admission (sorted) order."""
        return sorted(name for name in os.listdir(self.inbox_dir)
                      if name.endswith(".json") and name not in consumed)

    def poll(self, consumed: Set[str], batch: int) -> List[InboxItem]:
        """Read the next admission batch (up to ``batch`` specs)."""
        items: List[InboxItem] = []
        for name in self.pending(consumed)[:batch]:
            path = os.path.join(self.inbox_dir, name)
            try:
                with open(path, "r") as handle:
                    spec = json.load(handle)
            except (OSError, ValueError) as exc:
                items.append(InboxItem(name, None, f"unreadable spec: {exc}"))
                continue
            if not isinstance(spec, dict):
                items.append(InboxItem(
                    name, None, "spec file must hold a JSON object"))
                continue
            items.append(InboxItem(name, spec))
        if items:
            logger.debug("poll: %d item(s), first %s", len(items),
                         items[0].name)
        return items

    def remove(self, names: Iterable[str]) -> None:
        """Delete consumed spec files (their content lives in the WAL)."""
        for name in names:
            try:
                os.unlink(os.path.join(self.inbox_dir, name))
            except FileNotFoundError:
                pass

    # -- submission (client side) --------------------------------------
    def next_name(self, consumed: Set[str]) -> str:
        """A fresh ``job-<seq>.json`` name, never reusing a consumed one.

        The sequence counter is derived from both the files on disk and
        the durable consumed-set, so names stay unique across restarts
        even after consumed files are deleted (a reused name would be
        silently skipped by the consumed-set).
        """
        highest = 0
        names = set(os.listdir(self.inbox_dir)) | set(consumed)
        for name in names:
            match = _NAME_RE.match(name)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"job-{highest + 1:08d}.json"

    def submit(self, spec: Dict[str, Any], consumed: Set[str]) -> str:
        """Atomically drop ``spec`` into the inbox; returns the filename.

        Raises :class:`InboxFullError` when ``capacity`` specs are
        already pending (burst backpressure).
        """
        pending = len(self.pending(consumed))
        if pending >= self.capacity:
            logger.warning("inbox full: %d pending >= capacity %d",
                           pending, self.capacity)
            raise InboxFullError(self.capacity, self.retry_after)
        name = self.next_name(consumed)
        atomic_write_text(os.path.join(self.inbox_dir, name),
                          json.dumps(spec, sort_keys=True, indent=2) + "\n")
        logger.debug("submitted %s (%d pending)", name, pending + 1)
        return name
