"""Durable service configuration.

A :class:`ServeConfig` pins every knob the deterministic replay depends
on: which trace preset sizes the cluster and history, which scheduler
runs, the fault spec, and the admission/advance batching constants.  It
is written into the sqlite store at genesis and *re-loaded from the
store on every restart* — a recovered daemon must rebuild the exact
state machine the WAL was journaled against, so command-line overrides
of these fields after genesis are a config-mismatch error, not a merge.

Runtime-only knobs (HTTP port, poll interval, drain mode, fsync,
snapshot cadence) deliberately live *outside* this class: they may vary
across boots without affecting the journaled state evolution.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Optional

__all__ = ["ServeConfig", "ConfigMismatchError"]


class ConfigMismatchError(ValueError):
    """A restart tried to change a determinism-critical config field."""


@dataclass(frozen=True)
class ServeConfig:
    """Determinism-critical configuration of one service instance.

    Attributes
    ----------
    trace:
        Trace preset name (``venus``/``saturn``/``philly``); sizes the
        cluster and generates the model-training history.
    scheduler:
        Scheduler name (``lucid``, ``fifo``, ...).
    jobs:
        Trace-spec job-count override (affects history generation),
        or ``None`` for the preset default.
    seed:
        Trace-spec seed override, or ``None`` for the preset default.
    faults:
        Fault-injection spec string (inline k=v or JSON) armed at
        genesis — the chaos driver — or ``None``.
    batch:
        Admission batch size: at most this many inbox specs are
        admitted per tick (burst protection).
    events_per_tick:
        Maximum simulator event batches advanced per tick; bounds how
        much work one tick performs (and one WAL record covers).
    """

    trace: str = "venus"
    scheduler: str = "lucid"
    jobs: Optional[int] = None
    seed: Optional[int] = None
    faults: Optional[str] = None
    batch: int = 8
    events_per_tick: int = 64

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if self.events_per_tick < 1:
            raise ValueError("events_per_tick must be >= 1")

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServeConfig":
        payload: Dict[str, Any] = json.loads(text)
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown serve config keys: {sorted(unknown)}")
        return cls(**payload)

    def check_compatible(self, stored: "ServeConfig") -> None:
        """Raise :class:`ConfigMismatchError` if this boot's config
        diverges from the one the store was created with."""
        if self != stored:
            diffs = [
                f"{f.name}: stored={getattr(stored, f.name)!r} "
                f"requested={getattr(self, f.name)!r}"
                for f in fields(self)
                if getattr(self, f.name) != getattr(stored, f.name)
            ]
            raise ConfigMismatchError(
                "service store was created with a different config; "
                "deterministic replay requires the original values "
                f"({'; '.join(diffs)})")
