"""Append-only, checksummed write-ahead log of service transitions.

Every state transition the daemon performs is journaled *before* it is
applied:

* ``tick`` records carry the admission decisions of one service tick —
  which inbox files were consumed, which specs were admitted (full spec
  JSON, so replay needs no inbox), which were rejected and why.
* ``commit`` records close a tick: they carry the post-tick state
  digest, simulated clock, and event count, and are what recovery
  verifies replayed state against.
* ``snapshot`` records mark that a snapshot at a given tick was
  persisted to the store; segments older than the newest snapshot are
  no longer needed for recovery (but are kept for audit).

Physical format: JSONL, one record per line::

    {"seq": 17, "crc": 3735928559, "rec": {"kind": "tick", ...}}

``crc`` is the CRC-32 of the canonical JSON of ``rec``; ``seq`` is a
strictly increasing sequence number across segment boundaries.  A crash
mid-append can only produce a *torn tail*: the last line may be
truncated or checksum-broken.  Replay therefore tolerates exactly one
trailing bad record per segment — it truncates there — and treats a bad
record *followed by good ones* as corruption, which is a hard error.

Segments are named ``wal-<tick:08d>.jsonl`` where ``<tick>`` is the
tick of the snapshot that opened them (00000000 for genesis).  Rotation
happens at snapshot boundaries so recovery only ever replays one
segment over one snapshot.
"""

from __future__ import annotations

import json
import os
import re
import time
import zlib
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterator, List, Optional,
                    Tuple)

from repro.obs.ioutil import ensure_parent, fsync_dir

__all__ = ["WalCorruptionError", "WalRecord", "WriteAheadLog",
           "segment_name", "segment_tick"]

#: Append observer signature: ``(kind, encoded_bytes, wall_seconds)``
#: after each durable append.  ``wall_seconds`` covers encode + write +
#: flush + fsync — the full write-ahead latency the daemon's
#: ``serve_wal_append_seconds`` histogram reports.
AppendObserver = Callable[[str, int, float], None]

_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.jsonl$")


class WalCorruptionError(RuntimeError):
    """The WAL is corrupt beyond torn-tail tolerance."""


def segment_name(tick: int) -> str:
    """Segment filename for the segment opened at snapshot ``tick``."""
    return f"wal-{tick:08d}.jsonl"


def segment_tick(name: str) -> Optional[int]:
    """Inverse of :func:`segment_name`; ``None`` for non-WAL files."""
    match = _SEGMENT_RE.match(name)
    return int(match.group(1)) if match else None


@dataclass(frozen=True)
class WalRecord:
    """One journaled transition: a sequence number plus a payload."""

    seq: int
    rec: Dict[str, Any]

    @property
    def kind(self) -> str:
        return str(self.rec.get("kind", ""))

    def encode(self) -> str:
        body = json.dumps(self.rec, sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(body.encode("utf-8"))
        return json.dumps({"seq": self.seq, "crc": crc, "rec": self.rec},
                          sort_keys=True, separators=(",", ":"))

    @staticmethod
    def decode(line: str) -> "WalRecord":
        """Parse one WAL line; raises ``ValueError`` on any damage."""
        envelope = json.loads(line)
        if not isinstance(envelope, dict):
            raise ValueError("WAL line is not an object")
        rec = envelope["rec"]
        body = json.dumps(rec, sort_keys=True, separators=(",", ":"))
        if zlib.crc32(body.encode("utf-8")) != envelope["crc"]:
            raise ValueError("WAL checksum mismatch")
        return WalRecord(seq=int(envelope["seq"]), rec=rec)


class WriteAheadLog:
    """Segmented JSONL WAL under one directory.

    The instance owns the *active* segment file handle; appends go
    through :meth:`append` which assigns sequence numbers, encodes with
    a checksum, writes, flushes, and (when ``durable``) fsyncs before
    returning — write-ahead means the record must be on disk before the
    transition it describes is applied.
    """

    def __init__(self, wal_dir: str, durable: bool = True) -> None:
        self.wal_dir = wal_dir
        self.durable = durable
        self._handle: Optional[Any] = None
        self._active: Optional[str] = None
        self._next_seq = 0
        #: Optional per-append telemetry hook (``None`` = zero overhead:
        #: the hot path takes no clock reads while unset).
        self.on_append: Optional[AppendObserver] = None
        ensure_parent(os.path.join(wal_dir, "x"))

    # -- reading -------------------------------------------------------
    def segments(self) -> List[str]:
        """Segment filenames sorted by opening tick."""
        names = [n for n in os.listdir(self.wal_dir)
                 if segment_tick(n) is not None]
        return sorted(names)

    def latest_segment(self) -> Optional[str]:
        names = self.segments()
        return names[-1] if names else None

    def replay_segment(self, name: str) -> Iterator[WalRecord]:
        """Yield the valid records of one segment.

        Tolerates a single torn/corrupt *trailing* record (crash during
        append); corruption anywhere else raises
        :class:`WalCorruptionError`.
        """
        path = os.path.join(self.wal_dir, name)
        if not os.path.exists(path):
            return  # crash between snapshot store and segment creation
        lines: List[Tuple[int, str]] = []
        with open(path, "r") as handle:
            for lineno, line in enumerate(handle, start=1):
                if line.strip():
                    lines.append((lineno, line))
        for index, (lineno, line) in enumerate(lines):
            try:
                yield WalRecord.decode(line)
            except (ValueError, KeyError, TypeError) as exc:
                if index == len(lines) - 1:
                    return  # torn tail — crash mid-append, expected
                raise WalCorruptionError(
                    f"{name}:{lineno}: corrupt record followed by "
                    f"{len(lines) - 1 - index} valid record(s): {exc}"
                ) from None

    # -- writing -------------------------------------------------------
    def open_segment(self, tick: int, next_seq: int) -> str:
        """Open (create or append to) the segment for snapshot ``tick``."""
        self.close()
        name = segment_name(tick)
        path = os.path.join(self.wal_dir, name)
        existed = os.path.exists(path)
        self._handle = open(path, "a")  # append-only journal
        self._active = name
        self._next_seq = next_seq
        if not existed and self.durable:
            fsync_dir(path)  # make the new directory entry durable
        return name

    def truncate_torn_tail(self, name: str) -> int:
        """Drop a torn trailing record from ``name`` in place.

        Returns the number of records dropped (0 or 1).  Called during
        recovery before the segment is re-opened for append, so a fresh
        record never lands after a half-written line.
        """
        path = os.path.join(self.wal_dir, name)
        if not os.path.exists(path):
            return 0
        with open(path, "r") as handle:
            raw = handle.readlines()
        lines = [line for line in raw if line.strip()]
        keep = len(lines)
        if lines:
            try:
                WalRecord.decode(lines[-1])
            except (ValueError, KeyError, TypeError):
                keep -= 1
        if keep == len(lines) and len(lines) == len(raw):
            return 0
        with open(path, "w") as handle:  # repro: noqa RPR009 (torn-tail truncation)
            handle.writelines(lines[:keep])
            handle.flush()
            if self.durable:
                os.fsync(handle.fileno())
        return len(lines) - keep

    def append(self, rec: Dict[str, Any]) -> WalRecord:
        """Journal ``rec``; durable on return when ``durable=True``."""
        if self._handle is None:
            raise RuntimeError("WAL has no open segment")
        observer = self.on_append
        started = time.perf_counter() if observer is not None else 0.0
        record = WalRecord(seq=self._next_seq, rec=rec)
        line = record.encode() + "\n"
        self._handle.write(line)
        self._handle.flush()
        if self.durable:
            os.fsync(self._handle.fileno())
        self._next_seq += 1
        if observer is not None:
            observer(record.kind, len(line.encode("utf-8")),
                     time.perf_counter() - started)
        return record

    def stats(self) -> Dict[str, int]:
        """Segment count and total on-disk bytes (for ``/metrics``)."""
        segments = self.segments()
        total = 0
        for name in segments:
            try:
                total += os.path.getsize(os.path.join(self.wal_dir, name))
            except OSError:  # pragma: no cover - raced with cleanup
                pass
        return {"segments": len(segments), "bytes": total}

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def active_segment(self) -> Optional[str]:
        return self._active

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self.durable:
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
            self._active = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
