"""Synthetic model zoo reproducing Table 1 of the Lucid paper.

The paper measures 14 PyTorch workloads (image classification, GAN, point
cloud, NLP, RL and recommendation models) across batch sizes {32, 64, 128}
and with/without automatic mixed precision (AMP), recording three
non-intrusive metrics per configuration:

* **GPU utilization** — fraction of sample intervals with at least one kernel
  resident on the GPU,
* **GPU memory utilization** — fraction of time the memory subsystem was
  read/written,
* **GPU memory usage** — resident bytes on the device.

We cannot train the real models offline, so this module provides a
calibrated synthetic stand-in: each (model, batch size, AMP) configuration
maps deterministically to a :class:`ResourceProfile`.  Base numbers are
hand-tuned to the qualitative facts the paper reports (Figures 2 and 3):
RL and point-cloud workloads barely load the GPU, ImageNet CNNs and GANs
load it heavily, utilization grows sub-linearly with batch size and AMP
both lowers utilization pressure and raises throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Tuple

import numpy as np

#: Device memory of the testbed GPUs (NVIDIA RTX 3090, 24 GB) in MB.
GPU_MEMORY_MB = 24_576


@dataclass(frozen=True)
class ResourceProfile:
    """Per-GPU resource usage of one workload configuration.

    Attributes
    ----------
    gpu_util:
        GPU utilization in percent (0-100).
    gpu_mem_util:
        GPU memory-bandwidth utilization in percent (0-100).
    gpu_mem_mb:
        GPU memory footprint in MB.
    amp:
        Whether mixed-precision training is enabled.
    """

    gpu_util: float
    gpu_mem_util: float
    gpu_mem_mb: float
    amp: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.gpu_util <= 100.0:
            raise ValueError(f"gpu_util out of range: {self.gpu_util}")
        if not 0.0 <= self.gpu_mem_util <= 100.0:
            raise ValueError(f"gpu_mem_util out of range: {self.gpu_mem_util}")
        if self.gpu_mem_mb < 0:
            raise ValueError(f"gpu_mem_mb must be >= 0: {self.gpu_mem_mb}")

    def as_features(self) -> Tuple[float, float, float, float]:
        """Feature vector (U_G, U_M, M_G, A) used by the packing model."""
        return (self.gpu_util, self.gpu_mem_util, self.gpu_mem_mb, float(self.amp))

    def with_noise(self, rng: np.random.Generator, rel_std: float = 0.05) -> "ResourceProfile":
        """Return a noisy copy emulating NVIDIA-SMI sampling error."""
        util = float(np.clip(self.gpu_util * rng.normal(1.0, rel_std), 0.5, 100.0))
        mem_util = float(np.clip(self.gpu_mem_util * rng.normal(1.0, rel_std), 0.5, 100.0))
        mem = float(np.clip(self.gpu_mem_mb * rng.normal(1.0, rel_std / 2), 64.0, GPU_MEMORY_MB))
        return ResourceProfile(util, mem_util, mem, self.amp)


@dataclass(frozen=True)
class ModelSpec:
    """Static description of one Table-1 workload.

    ``base_*`` values describe the batch-64, AMP-off configuration; derived
    configurations are computed by :meth:`profile`.
    """

    name: str
    task: str
    dataset: str
    base_gpu_util: float
    base_mem_util: float
    base_mem_mb: float
    batch_sizes: Tuple[int, ...]
    supports_amp: bool
    #: Relative utilization growth when the batch size doubles.
    batch_util_slope: float = 0.12
    #: Relative memory growth when the batch size doubles.
    batch_mem_slope: float = 0.35

    def profile(self, batch_size: int, amp: bool) -> ResourceProfile:
        """Resource profile of this model at a given configuration.

        Batch-size scaling is multiplicative per doubling relative to the
        batch-64 baseline; AMP lowers compute/memory pressure (tensor cores
        finish kernels faster, activations are half precision).
        """
        if batch_size not in self.batch_sizes:
            raise ValueError(f"{self.name} does not support batch size {batch_size}")
        if amp and not self.supports_amp:
            raise ValueError(f"{self.name} does not support AMP")
        doublings = np.log2(batch_size / 64.0)
        util = self.base_gpu_util * (1.0 + self.batch_util_slope) ** doublings
        mem_util = self.base_mem_util * (1.0 + self.batch_util_slope * 0.8) ** doublings
        mem = self.base_mem_mb * (1.0 + self.batch_mem_slope) ** doublings
        if amp:
            util *= 0.88
            mem_util *= 0.85
            mem *= 0.72
        return ResourceProfile(
            gpu_util=float(np.clip(util, 1.0, 100.0)),
            gpu_mem_util=float(np.clip(mem_util, 1.0, 100.0)),
            gpu_mem_mb=float(np.clip(mem, 128.0, GPU_MEMORY_MB * 0.92)),
            amp=amp,
        )

    def configurations(self) -> Iterator["WorkloadConfig"]:
        """Iterate every (batch size, AMP) configuration of this model."""
        for batch in self.batch_sizes:
            for amp in ((False, True) if self.supports_amp else (False,)):
                yield WorkloadConfig(self.name, batch, amp)


@dataclass(frozen=True)
class WorkloadConfig:
    """One concrete (model, batch size, AMP) workload configuration."""

    model: str
    batch_size: int
    amp: bool

    @property
    def key(self) -> str:
        return f"{self.model}-b{self.batch_size}-{'amp' if self.amp else 'fp32'}"


# ---------------------------------------------------------------------------
# Table 1 of the paper.  Base values are per-GPU measurements at batch 64,
# AMP off, hand-calibrated to Figures 2/3 (see module docstring).
# ---------------------------------------------------------------------------
MODEL_ZOO: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in [
        ModelSpec("ResNet-50", "img_classification", "ImageNet",
                  base_gpu_util=92.0, base_mem_util=62.0, base_mem_mb=10_000,
                  batch_sizes=(32, 64, 128), supports_amp=True,
                  batch_util_slope=0.05),
        ModelSpec("MobileNetV3", "img_classification", "ImageNet",
                  base_gpu_util=68.0, base_mem_util=50.0, base_mem_mb=9_200,
                  batch_sizes=(32, 64, 128), supports_amp=True),
        ModelSpec("ResNet-18", "img_classification", "CIFAR-10",
                  base_gpu_util=48.0, base_mem_util=28.0, base_mem_mb=2_700,
                  batch_sizes=(32, 64, 128), supports_amp=True),
        ModelSpec("MobileNetV2", "img_classification", "CIFAR-10",
                  base_gpu_util=40.0, base_mem_util=20.0, base_mem_mb=2_300,
                  batch_sizes=(32, 64, 128), supports_amp=True),
        ModelSpec("EfficientNet", "img_classification", "CIFAR-10",
                  base_gpu_util=36.0, base_mem_util=17.0, base_mem_mb=2_900,
                  batch_sizes=(32, 64, 128), supports_amp=True),
        ModelSpec("VGG-11", "img_classification", "CIFAR-10",
                  base_gpu_util=55.0, base_mem_util=44.0, base_mem_mb=3_800,
                  batch_sizes=(32, 64, 128), supports_amp=True),
        ModelSpec("DCGAN", "img_translation", "LSUN",
                  base_gpu_util=84.0, base_mem_util=38.0, base_mem_mb=6_500,
                  batch_sizes=(32, 64, 128), supports_amp=True),
        ModelSpec("PointNet", "point_cloud", "ShapeNet",
                  base_gpu_util=18.0, base_mem_util=15.0, base_mem_mb=1_900,
                  batch_sizes=(32, 64, 128), supports_amp=True),
        ModelSpec("BERT", "question_answering", "SQuAD",
                  base_gpu_util=88.0, base_mem_util=66.0, base_mem_mb=16_800,
                  batch_sizes=(32,), supports_amp=True,
                  batch_util_slope=0.04),
        ModelSpec("LSTM", "language_modeling", "Wikitext2",
                  base_gpu_util=62.0, base_mem_util=52.0, base_mem_mb=5_400,
                  batch_sizes=(64, 128), supports_amp=True),
        ModelSpec("Transformer", "translation", "Multi30k",
                  base_gpu_util=74.0, base_mem_util=42.0, base_mem_mb=8_800,
                  batch_sizes=(32, 64), supports_amp=False),
        ModelSpec("PPO", "rl", "LunarLander",
                  base_gpu_util=9.0, base_mem_util=4.0, base_mem_mb=900,
                  batch_sizes=(32, 64, 128), supports_amp=False),
        ModelSpec("TD3", "rl", "BipedalWalker",
                  base_gpu_util=12.0, base_mem_util=12.0, base_mem_mb=1_100,
                  batch_sizes=(32, 64, 128), supports_amp=False),
        ModelSpec("NeuMF", "recommendation", "MovieLens",
                  base_gpu_util=26.0, base_mem_util=14.0, base_mem_mb=2_100,
                  batch_sizes=(64, 128), supports_amp=True),
    ]
}

#: Models the paper's trace construction prefers for large, long jobs.
HEAVY_MODELS: Tuple[str, ...] = ("ResNet-50", "BERT", "Transformer", "DCGAN", "MobileNetV3")
#: Models preferred for small, short jobs.
LIGHT_MODELS: Tuple[str, ...] = (
    "ResNet-18", "MobileNetV2", "EfficientNet", "VGG-11", "PointNet",
    "PPO", "TD3", "NeuMF", "LSTM",
)


def get_model(name: str) -> ModelSpec:
    """Look up a model spec by its Table-1 name."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_ZOO)}") from None


def get_profile(config: WorkloadConfig) -> ResourceProfile:
    """Resource profile of a workload configuration."""
    return get_model(config.model).profile(config.batch_size, config.amp)


def all_configurations() -> List[WorkloadConfig]:
    """Every (model, batch size, AMP) configuration in Table 1."""
    configs: List[WorkloadConfig] = []
    for spec in MODEL_ZOO.values():
        configs.extend(spec.configurations())
    return configs


def configurations_sorted_by_util() -> List[WorkloadConfig]:
    """All configurations ordered by increasing exclusive GPU utilization."""
    return sorted(all_configurations(), key=lambda c: get_profile(c).gpu_util)
