"""Colocation interference model (paper §2.3, Figures 2, 3 and 5).

The paper's key empirical finding is that the *accumulated GPU utilization*
of two colocated jobs strongly predicts their normalized speed: pairs whose
utilizations sum to ~100% still retain ~0.92× speed on average, with
degradation accelerating beyond that (Figure 2a).  Memory-bandwidth
contention adds a second-order effect, and individual pairs scatter around
the fitted curve.

:class:`InterferenceModel` reproduces this structure.  It is the ground
truth the simulator uses to slow down packed jobs, and also the measurement
apparatus used to build the offline colocation dataset on which Lucid's
Packing Analyze Model is trained — exactly mirroring how the authors
profiled all Table-1 jobpair combinations on their RTX 3090 testbed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.workloads.model_zoo import (
    GPU_MEMORY_MB,
    ResourceProfile,
    WorkloadConfig,
    all_configurations,
    get_profile,
)

# Quadratic fit through the paper's reported anchor points of Figure 2a:
# speed(60) = 1.0, speed(100) ~= 0.92, speed(200) ~= 0.60, where the
# argument is the accumulated *effective* utilization of the pair.
_KNEE = 60.0
_LIN = 1.657e-3
_QUAD = 8.571e-6

#: Weight of memory-bandwidth utilization in the effective load.  Small:
#: Figure 2a is parameterized by *GPU utilization* and memory bandwidth is
#: a second-order correction.
MEM_UTIL_WEIGHT = 0.10
#: Extra packing headroom of mixed-precision jobs (Figure 2b).
AMP_RELIEF = 0.93


def fitted_curve(accumulated_util: float) -> float:
    """Average normalized jobpair speed at a given accumulated utilization.

    This is the least-squares polynomial fit shown in Figure 2a.
    """
    if accumulated_util <= _KNEE:
        return 1.0
    x = accumulated_util - _KNEE
    return max(0.2, 1.0 - _LIN * x - _QUAD * x * x)


def _pair_hash(a: str, b: str) -> float:
    """Deterministic pseudo-random value in [0, 1) for an unordered pair."""
    # Canonical order via a single comparison — no list/sort per call.
    key = (a + "|" + b if a <= b else b + "|" + a).encode()
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class PairSpeeds:
    """Normalized speeds of two colocated jobs (1.0 = exclusive speed)."""

    first: float
    second: float

    @property
    def average(self) -> float:
        return (self.first + self.second) / 2.0


class InterferenceModel:
    """Ground-truth colocation slowdown model.

    Parameters
    ----------
    pair_noise_std:
        Standard deviation of the deterministic per-pair deviation from the
        fitted curve (the scatter visible in Figure 2a).
    gpu_memory_mb:
        Device memory used for out-of-memory feasibility checks.
    """

    def __init__(self, pair_noise_std: float = 0.035,
                 gpu_memory_mb: float = GPU_MEMORY_MB) -> None:
        self.pair_noise_std = pair_noise_std
        self.gpu_memory_mb = gpu_memory_mb

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def memory_fits(self, profiles: Sequence[ResourceProfile]) -> bool:
        """Whether the given workloads fit device memory together."""
        return sum(p.gpu_mem_mb for p in profiles) <= self.gpu_memory_mb

    # ------------------------------------------------------------------
    # Speed model
    # ------------------------------------------------------------------
    def effective_load(self, profiles: Sequence[ResourceProfile]) -> float:
        """Accumulated effective utilization of colocated workloads."""
        load = 0.0
        for p in profiles:
            contrib = p.gpu_util + MEM_UTIL_WEIGHT * p.gpu_mem_util
            if p.amp:
                contrib *= AMP_RELIEF
            load += contrib
        return load

    def pair_speeds(self, a: ResourceProfile, b: ResourceProfile,
                    pair_key: Tuple[str, str] = ("a", "b")) -> PairSpeeds:
        """Normalized speeds when workloads ``a`` and ``b`` share GPUs.

        The average follows :func:`fitted_curve` on the effective load with
        a deterministic per-pair offset; the split between the two jobs is
        mildly asymmetric — the lighter job is crowded out slightly more,
        matching the ResNet-18 vs DCGAN example of Figure 3a.
        """
        load = self.effective_load((a, b))
        avg = fitted_curve(load)
        # Deterministic scatter, reproducible across calls for a given pair.
        noise = (_pair_hash(*pair_key) - 0.5) * 2.0 * self.pair_noise_std
        avg = float(np.clip(avg + noise, 0.25, 1.0))
        contention = max(0.0, load - _KNEE) / 140.0
        imbalance = 0.0
        total_util = a.gpu_util + b.gpu_util
        if total_util > 0:
            # Positive when `a` is the lighter job.
            imbalance = (b.gpu_util - a.gpu_util) / total_util
        skew = 0.12 * contention * imbalance
        first = float(np.clip(avg - skew, 0.2, 1.0))
        second = float(np.clip(avg + skew, 0.2, 1.0))
        return PairSpeeds(first=first, second=second)

    def k_way_speed(self, profiles: Sequence[ResourceProfile]) -> float:
        """Average speed for >2-way packing (acute degradation, §2.3)."""
        if len(profiles) <= 1:
            return 1.0
        load = self.effective_load(profiles)
        base = fitted_curve(load)
        # Every job beyond the second costs an extra multiplicative penalty.
        return float(base * 0.8 ** (len(profiles) - 2))


@dataclass(frozen=True)
class ColocationMeasurement:
    """One measured jobpair colocation (a row of the offline dataset)."""

    config_a: WorkloadConfig
    config_b: WorkloadConfig
    speed_a: float
    speed_b: float
    accumulated_util: float

    @property
    def average_speed(self) -> float:
        return (self.speed_a + self.speed_b) / 2.0


def measure_all_pairs(model: InterferenceModel,
                      configs: Iterable[WorkloadConfig] = None
                      ) -> List[ColocationMeasurement]:
    """Measure every feasible jobpair combination (the Figure 2a dataset).

    Mirrors the paper's testbed characterization: all Table-1 configuration
    pairs are colocated and their normalized speeds recorded.  Pairs that
    would exceed device memory are skipped (they cannot run at all).
    """
    config_list = list(configs) if configs is not None else all_configurations()
    measurements: List[ColocationMeasurement] = []
    for i, ca in enumerate(config_list):
        pa = get_profile(ca)
        for cb in config_list[i:]:
            pb = get_profile(cb)
            if not model.memory_fits((pa, pb)):
                continue
            speeds = model.pair_speeds(pa, pb, pair_key=(ca.key, cb.key))
            measurements.append(ColocationMeasurement(
                config_a=ca,
                config_b=cb,
                speed_a=speeds.first,
                speed_b=speeds.second,
                accumulated_util=pa.gpu_util + pb.gpu_util,
            ))
    return measurements


def average_colocation_speed(model: InterferenceModel,
                             config: WorkloadConfig,
                             partners: Iterable[WorkloadConfig] = None
                             ) -> float:
    """Mean normalized speed of ``config`` across all feasible partners.

    This is the quantity thresholded into Tiny/Medium/Jumbo sharing-score
    labels when building the Packing Analyze Model's training set (§3.5.1).
    """
    partner_list = list(partners) if partners is not None else all_configurations()
    profile = get_profile(config)
    speeds: List[float] = []
    for partner in partner_list:
        partner_profile = get_profile(partner)
        if not model.memory_fits((profile, partner_profile)):
            continue
        pair = model.pair_speeds(profile, partner_profile,
                                 pair_key=(config.key, partner.key))
        speeds.append(pair.first)
    if not speeds:
        return 1.0
    return float(np.mean(speeds))
