"""Job abstractions for the cluster simulator.

A :class:`Job` carries everything the *simulator* knows about a training job
(including ground truth such as its true duration), while a :class:`JobView`
exposes only the fields a **non-intrusive** scheduler is allowed to observe.
Intrusive baselines (Tiresias, Horus, Pollux) are explicitly constructed with
access to wider information; Lucid only ever sees ``JobView``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.workloads.model_zoo import ResourceProfile


class JobStatus(enum.Enum):
    """Lifecycle states of a job inside the simulator."""

    SUBMITTED = "submitted"
    PROFILING = "profiling"
    PENDING = "pending"
    RUNNING = "running"
    PREEMPTED = "preempted"
    FINISHED = "finished"
    #: Killed by a fault, waiting out its retry backoff.
    CRASHED = "crashed"
    #: Terminal: retry budget exhausted, job abandoned.
    FAILED = "failed"


@dataclass
class Job:
    """A deep-learning training job as replayed by the simulator.

    Attributes
    ----------
    job_id:
        Unique integer id, assigned in submission order.
    name:
        User-visible job name (recurring jobs share similar names).
    user:
        Submitting user name.
    vc:
        Virtual cluster the job belongs to.
    submit_time:
        Submission timestamp in seconds since the trace epoch.
    duration:
        Ground-truth *exclusive-execution* time in seconds, i.e. the wall
        time the job needs when running alone on its requested GPUs.
    gpu_num:
        Number of requested GPUs.
    profile:
        Ground-truth per-GPU resource profile of the workload.
    amp:
        Whether the job uses automatic mixed precision (the only optional
        user-declared metric Lucid consumes, per the paper's Figure 6).
    template_id:
        Identifier of the recurring-job template this submission was drawn
        from, or ``None`` for one-off jobs.  Only used by trace generators
        and oracle analyses, never by schedulers.
    """

    job_id: int
    name: str
    user: str
    vc: str
    submit_time: float
    duration: float
    gpu_num: int
    profile: ResourceProfile
    amp: bool = False
    template_id: Optional[int] = None
    #: Optional completion deadline (absolute trace time); jobs without a
    #: deadline are best-effort.  Used by the SLO extension (paper SS6).
    deadline: Optional[float] = None
    #: CPU threads requested per GPU (data loading / preprocessing).  Only
    #: consulted when the simulator's CPU model is enabled (paper SS6:
    #: "fully exploit affiliated resources").
    cpu_per_gpu: float = 4.0
    #: Exponent of the slowdown when CPU-starved: speed *= share**sens.
    #: 0 = insensitive (compute-bound), 1 = fully data-loading-bound.
    cpu_sensitivity: float = 0.5

    # --- mutable simulation state ------------------------------------
    status: JobStatus = JobStatus.SUBMITTED
    progress: float = 0.0  # completed exclusive-execution seconds
    finish_time: Optional[float] = None
    first_start_time: Optional[float] = None
    service_time: float = 0.0  # wall-clock seconds spent executing
    preemptions: int = 0
    profiled: bool = False
    finished_in_profiler: bool = False
    measured_profile: Optional[ResourceProfile] = None
    #: Fault-injection state: crashes survived so far and the exclusive-
    #: execution seconds rolled back to the last checkpoint across them.
    restarts: int = 0
    lost_work: float = 0.0

    # Scratch fields owned by whichever scheduler is active.
    sharing_score: Optional[int] = None
    estimated_duration: Optional[float] = None
    priority: float = 0.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"job {self.job_id}: duration must be > 0")
        if self.gpu_num <= 0:
            raise ValueError(f"job {self.job_id}: gpu_num must be > 0")

    @property
    def remaining(self) -> float:
        """Exclusive-execution seconds still to run."""
        return max(0.0, self.duration - self.progress)

    @property
    def jct(self) -> Optional[float]:
        """Job completion time, or ``None`` if the job has not finished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def queue_delay(self) -> Optional[float]:
        """Total non-executing wall time between submission and completion."""
        if self.finish_time is None:
            return None
        return max(0.0, self.jct - self.service_time)

    def view(self) -> "JobView":
        """Return the non-intrusive projection of this job."""
        return JobView(
            job_id=self.job_id,
            name=self.name,
            user=self.user,
            vc=self.vc,
            submit_time=self.submit_time,
            gpu_num=self.gpu_num,
            amp=self.amp,
            measured_profile=self.measured_profile,
        )


@dataclass
class JobView:
    """What a non-intrusive scheduler may observe about a job.

    The view deliberately omits the ground-truth duration and true resource
    profile.  ``measured_profile`` is populated only after the job passed
    through the non-intrusive profiler (NVIDIA-SMI style sampling) and
    includes measurement noise.
    """

    job_id: int
    name: str
    user: str
    vc: str
    submit_time: float
    gpu_num: int
    amp: bool
    measured_profile: Optional[ResourceProfile] = None


@dataclass
class JobRecord:
    """Completed-job record used for model training and metric reports."""

    job_id: int
    name: str
    user: str
    vc: str
    submit_time: float
    duration: float
    gpu_num: int
    jct: float
    queue_delay: float
    preemptions: int
    finished_in_profiler: bool
    profile: Optional[ResourceProfile] = None
    deadline: Optional[float] = None
    #: Fault-injection outcome: restarts survived; ``failed`` marks a job
    #: that exhausted its retry budget (its ``jct`` is time-to-abandonment).
    restarts: int = 0
    failed: bool = False

    @property
    def met_deadline(self) -> Optional[bool]:
        """Whether the job finished by its deadline (None = best-effort)."""
        if self.deadline is None:
            return None
        return self.submit_time + self.jct <= self.deadline

    @classmethod
    def from_job(cls, job: Job) -> "JobRecord":
        if job.finish_time is None:
            raise ValueError(f"job {job.job_id} has not finished")
        return cls(
            job_id=job.job_id,
            name=job.name,
            user=job.user,
            vc=job.vc,
            submit_time=job.submit_time,
            duration=job.duration,
            gpu_num=job.gpu_num,
            jct=job.jct,
            queue_delay=job.queue_delay,
            preemptions=job.preemptions,
            finished_in_profiler=job.finished_in_profiler,
            profile=job.measured_profile or job.profile,
            deadline=job.deadline,
            restarts=job.restarts,
            failed=job.status is JobStatus.FAILED,
        )
