"""Workload substrate: jobs, the Table-1 model zoo and colocation model."""

from repro.workloads.colocation import (
    ColocationMeasurement,
    InterferenceModel,
    PairSpeeds,
    average_colocation_speed,
    fitted_curve,
    measure_all_pairs,
)
from repro.workloads.job import Job, JobRecord, JobStatus, JobView
from repro.workloads.model_zoo import (
    GPU_MEMORY_MB,
    MODEL_ZOO,
    ModelSpec,
    ResourceProfile,
    WorkloadConfig,
    all_configurations,
    get_model,
    get_profile,
)

__all__ = [
    "ColocationMeasurement",
    "InterferenceModel",
    "PairSpeeds",
    "average_colocation_speed",
    "fitted_curve",
    "measure_all_pairs",
    "Job",
    "JobRecord",
    "JobStatus",
    "JobView",
    "GPU_MEMORY_MB",
    "MODEL_ZOO",
    "ModelSpec",
    "ResourceProfile",
    "WorkloadConfig",
    "all_configurations",
    "get_model",
    "get_profile",
]
