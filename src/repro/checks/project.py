"""``repro lint --project``: file rules + graph rules, SARIF, ratchet.

One project run:

1. builds the whole-program :class:`~repro.checks.graph.ProjectIndex`
   over ``src/repro`` (every module parsed once, parse failures become
   RPR000 findings instead of crashes);
2. runs the per-file rules (RPR000–RPR009) over every indexed module
   and the graph rule packs (RPR100+) over the index, with one shared
   :class:`~repro.checks.lint.SuppressionTracker` so ``# repro: noqa``
   comments and allowlist entries suppress uniformly;
3. reports suppressions that fired nothing as RPR130 — the suppression
   surface ratchets down, not just up.

Output formats: text, JSON, and SARIF 2.1.0 (for GitHub code
scanning).  The committed findings baseline
(``benchmarks/lint_baseline.json``) supports ``--ratchet``: CI fails
only on findings *not* in the baseline, so pre-existing debt never
blocks an unrelated change while new debt always does.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.checks.graph import ProjectIndex, build_index
from repro.checks.lint import (
    RPR002_ALLOWLIST,
    RPR009_ALLOWLIST,
    RULES,
    Finding,
    SuppressionTracker,
    apply_noqa,
    lint_source,
)
from repro.checks.rules import GRAPH_RULES, RuleContext, run_graph_rules

__all__ = [
    "ALL_RULES",
    "BASELINE_SCHEMA",
    "baseline_delta",
    "fingerprint",
    "format_sarif",
    "lint_project",
    "load_baseline",
    "write_baseline",
]

#: Every rule the project mode can emit: file rules + graph rules.
ALL_RULES: Dict[str, Tuple[str, str]] = {**RULES, **GRAPH_RULES}

BASELINE_SCHEMA = "repro-lint-baseline/v1"

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def _repo_root_for(package_dir: str) -> str:
    """Repo root guess: ``<root>/src/<pkg>`` -> ``<root>``, else parent."""
    parent = os.path.dirname(os.path.abspath(package_dir))
    if os.path.basename(parent) == "src":
        return os.path.dirname(parent)
    return parent


def find_package_dir(path: str) -> str:
    """Resolve a CLI path to the package root to index.

    ``path`` may be the package itself (has ``__init__.py``) or a
    directory holding exactly one package (the ``src`` layout).
    """
    if os.path.isfile(os.path.join(path, "__init__.py")):
        return path
    candidates = []
    try:
        entries = sorted(os.listdir(path))
    except OSError:
        raise FileNotFoundError(path)
    for entry in entries:
        full = os.path.join(path, entry)
        if os.path.isfile(os.path.join(full, "__init__.py")):
            candidates.append(full)
    if len(candidates) == 1:
        return candidates[0]
    raise FileNotFoundError(
        f"{path}: expected a package directory (or a src/ directory "
        f"holding exactly one package); found {len(candidates)}")


def lint_project(package_dir: str,
                 repo_root: Optional[str] = None,
                 tracker: Optional[SuppressionTracker] = None,
                 ) -> List[Finding]:
    """Run file + graph rules over one package tree; sorted findings."""
    if repo_root is None:
        repo_root = _repo_root_for(package_dir)
    if tracker is None:
        tracker = SuppressionTracker()
    index = build_index(package_dir)

    findings: List[Finding] = []
    for mod_name in sorted(index.modules,
                           key=lambda m: index.modules[m].path):
        module = index.modules[mod_name]
        if module.error is not None:
            line, col, message = module.error
            findings.append(Finding(
                code="RPR000", path=module.path, line=line, col=col,
                message=message, hint=RULES["RPR000"][1]))
            continue
        findings.extend(lint_source(module.source, module.path, tracker))

    pyproject = os.path.join(repo_root, "pyproject.toml")
    bench = os.path.join(repo_root, "benchmarks", "results",
                         "bench_baseline.json")
    ctx = RuleContext(
        index=index, repo_root=repo_root,
        pyproject_path=pyproject if os.path.exists(pyproject) else None,
        bench_baseline_path=bench if os.path.exists(bench) else None,
        tracker=tracker)
    graph_findings = run_graph_rules(ctx)
    findings.extend(_apply_noqa_by_module(graph_findings, index, tracker))
    findings.extend(_unused_suppressions(tracker, index))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def _apply_noqa_by_module(findings: List[Finding], index: ProjectIndex,
                          tracker: SuppressionTracker) -> List[Finding]:
    """Graph findings honor the same ``# repro: noqa`` comments."""
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    sources = {m.path: m.source for m in index.modules.values()}
    kept: List[Finding] = []
    for path in sorted(by_path):
        source = sources.get(path)
        if source is None:
            kept.extend(by_path[path])
            continue
        kept.extend(apply_noqa(by_path[path], source, path, tracker))
    return kept


def _resolve_suffix(index: ProjectIndex, suffix: str) -> Optional[str]:
    """Path of the indexed module an allowlist key points at, if any."""
    for mod_name in sorted(index.modules):
        path = index.modules[mod_name].path.replace(os.sep, "/")
        if path == suffix or path.endswith("/" + suffix):
            return index.modules[mod_name].path
    return None


def _unused_suppressions(tracker: SuppressionTracker,
                         index: ProjectIndex) -> List[Finding]:
    """RPR130: suppressions that fired nothing in this run."""
    findings: List[Finding] = []
    hint = GRAPH_RULES["RPR130"][1]
    for (path, line) in sorted(tracker.noqa):
        if (path, line) in tracker.noqa_used:
            continue
        codes = tracker.noqa[(path, line)]
        what = "all rules" if codes is None else ", ".join(sorted(codes))
        findings.append(Finding(
            code="RPR130", path=path, line=line, col=0,
            message=f"'# repro: noqa' ({what}) suppresses nothing on "
                    "this line", hint=hint))
    allowlists: List[Tuple[str, Dict[str, object]]] = [
        ("RPR002_ALLOWLIST", dict(RPR002_ALLOWLIST)),
        ("RPR009_ALLOWLIST", dict(RPR009_ALLOWLIST)),
    ]
    for name, allowlist in allowlists:
        for suffix in sorted(allowlist):
            target = _resolve_suffix(index, suffix)
            if target is None:
                continue  # module outside this scan; cannot judge
            functions = allowlist[suffix]
            if functions is None:
                if (name, suffix, None) not in tracker.allowlist_used:
                    findings.append(Finding(
                        code="RPR130", path=target, line=1, col=0,
                        message=f"{name} entry {suffix!r} suppresses "
                                "nothing", hint=hint))
            elif isinstance(functions, frozenset):
                for fn in sorted(functions):
                    if (name, suffix, fn) not in tracker.allowlist_used:
                        findings.append(Finding(
                            code="RPR130", path=target, line=1, col=0,
                            message=f"{name} entry {suffix!r} function "
                                    f"{fn!r} suppresses nothing",
                            hint=hint))
    return findings


# ----------------------------------------------------------------------
# Baseline / ratchet
# ----------------------------------------------------------------------
def fingerprint(finding: Finding, repo_root: str) -> str:
    """Line-number-free identity of a finding, stable across edits."""
    return "|".join((finding.code, _rel(finding.path, repo_root),
                     finding.message))


def _rel(path: str, repo_root: str) -> str:
    abspath = os.path.abspath(path)
    root = os.path.abspath(repo_root)
    if abspath.startswith(root + os.sep):
        path = abspath[len(root) + 1:]
    return path.replace(os.sep, "/")


def load_baseline(path: str) -> Dict[str, int]:
    """Fingerprint -> allowed count; empty when the file is absent."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {}
    raw = data.get("fingerprints", {}) if isinstance(data, dict) else {}
    if not isinstance(raw, dict):
        return {}
    return {str(k): int(v) for k, v in raw.items()
            if isinstance(v, int) and v > 0}


def write_baseline(path: str, findings: List[Finding],
                   repo_root: str) -> None:
    counts: Dict[str, int] = {}
    for finding in findings:
        key = fingerprint(finding, repo_root)
        counts[key] = counts.get(key, 0) + 1
    payload = {"schema": BASELINE_SCHEMA, "fingerprints": counts}
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def baseline_delta(findings: List[Finding], baseline: Dict[str, int],
                   repo_root: str) -> List[Finding]:
    """Findings beyond the baseline's per-fingerprint allowance."""
    groups: Dict[str, List[Finding]] = {}
    for finding in findings:
        groups.setdefault(fingerprint(finding, repo_root),
                          []).append(finding)
    fresh: List[Finding] = []
    for key in sorted(groups):
        allowed = baseline.get(key, 0)
        extra = groups[key][allowed:]
        fresh.extend(extra)
    fresh.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return fresh


# ----------------------------------------------------------------------
# SARIF 2.1.0
# ----------------------------------------------------------------------
def format_sarif(findings: List[Finding],
                 repo_root: Optional[str] = None) -> str:
    """SARIF 2.1.0 document for GitHub code scanning upload."""
    root = repo_root if repo_root is not None else os.getcwd()
    codes = sorted({f.code for f in findings})
    rules = []
    for code in codes:
        summary, hint = ALL_RULES.get(code, ("unknown rule", ""))
        rules.append({
            "id": code,
            "shortDescription": {"text": summary},
            "help": {"text": hint},
            "defaultConfiguration": {"level": "error"},
        })
    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": f"{finding.message} "
                                f"(hint: {finding.hint})"},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _rel(finding.path, root),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": max(1, finding.col + 1),
                    },
                },
            }],
        })
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://github.com/repro/repro#static-analysis",
                    "version": "1.0.0",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///" + os.path.abspath(root)
                            .replace(os.sep, "/").lstrip("/") + "/"},
            },
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
