"""Reproducibility tooling: determinism linter + simulation-state sanitizer.

Every number this reproduction reports rests on the simulator being
bit-deterministic under a seed.  This package defends that guarantee with
two tools:

* :mod:`repro.checks.lint` — an AST-based determinism linter with
  repo-specific rules (RPR001..RPR008): no global RNG calls, no wall-clock
  reads in simulation paths, no unordered ``set``/dict-view iteration in
  decision code, no float ``==`` on simulated time, and more.  Run it with
  ``python -m repro lint src tests``.
* :mod:`repro.checks.sanitizer` — a runtime :class:`SimSanitizer` that,
  when enabled via ``Simulator(sanitize=True)`` / ``--sanitize``, asserts
  cluster/job state invariants at every event dispatch (GPU allocation
  conservation, monotone event clock, legal job state-machine transitions,
  queue consistency, fault-flag coherence).
"""

from repro.checks.lint import (
    RPR002_ALLOWLIST,
    RULES,
    Finding,
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.checks.sanitizer import SanitizerError, SimSanitizer

__all__ = [
    "RPR002_ALLOWLIST",
    "RULES",
    "Finding",
    "format_json",
    "format_text",
    "lint_file",
    "lint_paths",
    "lint_source",
    "SanitizerError",
    "SimSanitizer",
]
