"""Reproducibility tooling: determinism linter + whole-program analyzer.

Every number this reproduction reports rests on the simulator being
bit-deterministic under a seed.  This package defends that guarantee with
three tools:

* :mod:`repro.checks.lint` — an AST-based determinism linter with
  repo-specific per-file rules (RPR000..RPR009): no global RNG calls, no
  wall-clock reads in simulation paths, no unordered ``set``/dict-view
  iteration in decision code, no float ``==`` on simulated time, and
  more.  Run it with ``python -m repro lint src tests``.
* :mod:`repro.checks.graph` + :mod:`repro.checks.rules` — a
  whole-program analyzer: one pass builds the module import graph,
  per-module symbol tables and an approximate call graph, then three
  rule packs run over it — architecture (RPR100..RPR104: cycles,
  layering DAG conformance, private cross-package access), replay
  safety (RPR110..RPR113: state mutation outside the WAL apply path,
  uncovered event kinds, wall-clock/RNG reachability into digest code)
  and hot path (RPR120..RPR123: allocation patterns in profiler-hot
  functions).  Run it with ``python -m repro lint --project``;
  :mod:`repro.checks.project` adds SARIF output and baseline
  ratcheting (RPR130 flags suppressions that no longer fire).
* :mod:`repro.checks.sanitizer` — a runtime :class:`SimSanitizer` that,
  when enabled via ``Simulator(sanitize=True)`` / ``--sanitize``, asserts
  cluster/job state invariants at every event dispatch (GPU allocation
  conservation, monotone event clock, legal job state-machine transitions,
  queue consistency, fault-flag coherence).
"""

from repro.checks.graph import ProjectIndex, build_index
from repro.checks.lint import (
    RPR002_ALLOWLIST,
    RPR009_ALLOWLIST,
    RULES,
    Finding,
    SuppressionTracker,
    apply_noqa,
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.checks.project import (
    ALL_RULES,
    baseline_delta,
    format_sarif,
    lint_project,
    load_baseline,
    write_baseline,
)
from repro.checks.rules import GRAPH_RULES, RuleContext, run_graph_rules
from repro.checks.sanitizer import SanitizerError, SimSanitizer

__all__ = [
    "ALL_RULES",
    "GRAPH_RULES",
    "RPR002_ALLOWLIST",
    "RPR009_ALLOWLIST",
    "RULES",
    "Finding",
    "ProjectIndex",
    "RuleContext",
    "SanitizerError",
    "SimSanitizer",
    "SuppressionTracker",
    "apply_noqa",
    "baseline_delta",
    "build_index",
    "format_json",
    "format_sarif",
    "format_text",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_baseline",
    "run_graph_rules",
    "write_baseline",
]
