"""AST-based determinism linter (the ``RPR`` rules).

The simulator's headline numbers (Table 3/4 deltas, the <4.6% fidelity
claim) are only meaningful if a run is *bit-deterministic under a seed*.
This linter statically enforces the coding rules that protect that
property as the codebase grows.  Rules are repo-specific by design — they
encode this project's conventions, not generic style:

========  ============================================================
RPR001    No global ``random.*`` / ``np.random.*`` convenience calls in
          simulation packages; randomness must flow through an injected,
          seeded ``np.random.Generator``.
RPR002    No wall-clock reads (``time.time``, ``time.monotonic``,
          ``time.perf_counter``, ``datetime.now``, ...) in simulation
          paths; simulated time is ``engine.now``, full stop.
          Instrumentation that measures the *simulator itself* (and
          never feeds wall time back into simulated state) is exempted
          by :data:`RPR002_ALLOWLIST` — a per-module (optionally
          per-function) allowlist — instead of per-line noqa comments.
RPR003    No iteration over a raw ``set`` / ``frozenset`` / dict view in
          scheduling or placement decision code without ``sorted(...)``
          — unordered iteration makes tie-breaking depend on hash seeds
          or insertion history.
RPR004    No float ``==`` / ``!=`` against simulated-time expressions;
          compare with an epsilon or ``<=`` / ``>=``.
RPR005    No mutable default arguments (shared state across calls).
RPR006    ``EventKind`` exhaustiveness: every enum member must be
          dispatched (``sim/engine.py`` or ``faults/runtime.py``) and
          mapped to a timeline track (``obs/timeline.py``).
RPR007    No bare or overbroad ``except`` (``Exception``/
          ``BaseException``) unless the handler re-raises.
RPR008    Public sim entry points (``simulate*``/``generate*``/
          ``sample*``/...) must thread a ``seed``/``rng``/spec
          parameter so callers control determinism.
RPR009    No raw ``open(path, "w")`` writes to state/sink paths in the
          durability-sensitive packages (``serve``, ``obs``): a crash
          mid-write leaves a truncated file at the final path.  Writes
          must go through :mod:`repro.obs.ioutil`
          (``atomic_write_text`` or the stream-to-``tmp_path``-then-
          rename pattern).  Streaming into ``open(tmp_path(p), "w")``
          is recognized and allowed; ``obs/ioutil.py`` itself is
          allowlisted (:data:`RPR009_ALLOWLIST`).
========  ============================================================

Suppression: append ``# repro: noqa`` (all rules) or
``# repro: noqa RPR002`` (specific codes, comma-separated) to the
offending line, ideally with a justification comment nearby.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import asdict, dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

__all__ = [
    "RPR002_ALLOWLIST",
    "RPR009_ALLOWLIST",
    "RULES",
    "Finding",
    "SuppressionTracker",
    "apply_noqa",
    "format_json",
    "format_text",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: code -> (one-line summary, fix hint).
RULES: Dict[str, Tuple[str, str]] = {
    "RPR000": ("file does not parse",
               "fix the syntax error; unparsable files cannot be vetted"),
    "RPR001": ("global RNG call in a simulation package",
               "inject a seeded np.random.Generator (np.random.default_rng"
               "(seed)) and thread it through"),
    "RPR002": ("wall-clock read in a simulation path",
               "use the engine's simulated clock (engine.now); wall time "
               "breaks replay determinism"),
    "RPR003": ("iteration over an unordered collection in decision code",
               "wrap the iterable in sorted(...) so tie-breaking is "
               "deterministic"),
    "RPR004": ("float equality against simulated time",
               "compare with an epsilon (abs(a - b) <= eps) or an "
               "inequality"),
    "RPR005": ("mutable default argument",
               "default to None and create the list/dict/set inside the "
               "function"),
    "RPR006": ("EventKind member not exhaustively handled",
               "dispatch the member in sim/engine.py (or faults/runtime.py) "
               "and map its value in obs/timeline.py EVENT_KIND_TRACKS"),
    "RPR007": ("bare or overbroad except clause",
               "catch the specific exceptions the block can raise, or "
               "re-raise after cleanup"),
    "RPR008": ("public sim entry point without a seed/rng parameter",
               "add a seed/rng parameter (or take a *Spec object that "
               "carries one) so callers control determinism"),
    "RPR009": ("raw in-place write to a state/sink path",
               "write via repro.obs.ioutil.atomic_write_text (or stream "
               "into tmp_path(p) and os.replace); a crash mid-write must "
               "never leave a truncated file at the final path"),
}

#: Packages whose modules are "simulation paths" (RPR001/RPR002/RPR004).
SIM_PACKAGES = frozenset(
    {"sim", "core", "schedulers", "faults", "workloads", "cluster"})
#: Packages holding scheduling/placement decision code (RPR003).
DECISION_PACKAGES = frozenset(
    {"sim", "core", "schedulers", "faults", "cluster"})
#: Packages whose public entry points must thread a seed (RPR008).
ENTRYPOINT_PACKAGES = frozenset(
    {"sim", "core", "schedulers", "faults", "workloads", "traces"})
#: Packages holding durable state / observability sinks (RPR009).
STATE_SINK_PACKAGES = frozenset({"serve", "obs"})

#: np.random attributes that are legitimate Generator plumbing.
_NP_RANDOM_ALLOWED = frozenset({
    "Generator", "BitGenerator", "SeedSequence", "default_rng",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})
#: Wall-clock functions of the ``time`` module.
_TIME_BANNED = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
})
#: Wall-clock constructors on datetime/date objects.
_DATETIME_BANNED = frozenset({"now", "utcnow", "today"})
#: Attribute calls that return dict views.
_DICT_VIEW_ATTRS = frozenset({"keys", "values", "items"})
#: Set methods whose result is another unordered set.
_SET_COMBINATORS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})
#: Identifier fragments that denote simulated-time values (RPR004).
_TIME_NAMES = frozenset({
    "now", "time", "submit_time", "finish_time", "first_start_time",
    "start_time", "end_time", "last_update", "time_limit_at", "eta",
    "deadline", "makespan", "timestamp", "peek_time", "arrival_time",
})
#: Entry-point name prefixes that must thread a seed (RPR008).
_ENTRYPOINT_PREFIXES = (
    "simulate", "generate", "sample", "perturb", "synthesize",
    "randomize", "shuffle", "jitter",
)
#: Parameter names that satisfy RPR008 (a *Spec carries its own seed).
_SEED_PARAMS = frozenset({"seed", "rng", "random_state", "generator", "spec"})

#: RPR002 instrumentation allowlist: wall-clock reads that measure the
#: simulator itself (profiling, latency telemetry) rather than simulated
#: time.  Keys are path suffixes (``/``-separated); a value of ``None``
#: exempts the whole module, a frozenset of function names exempts only
#: reads whose innermost enclosing function matches.  Prefer this list
#: over per-line noqa comments: the exemption is reviewed in one place
#: and survives line moves.  Entries that stop matching any finding are
#: flagged RPR130 by ``repro lint --project`` — delete them.
RPR002_ALLOWLIST: Dict[str, Optional[FrozenSet[str]]] = {
    # The self-profiler is wall-clock measurement by definition.  obs/
    # is outside per-file RPR002's scope, but the cross-function RPR112
    # (digest reachability) consults this list too.
    "obs/prof.py": None,
    # Scheduler-pass latency telemetry (tracer metrics + SimProfiler).
    "sim/engine.py": frozenset({"_invoke_scheduler"}),
}

#: RPR009 allowlist (same shape as :data:`RPR002_ALLOWLIST`): modules
#: allowed to issue raw in-place writes.  Currently empty — the atomic
#: write helper's tmp-file + rename dance already satisfies the rule.
RPR009_ALLOWLIST: Dict[str, Optional[FrozenSet[str]]] = {}

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s+(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*))?",
)


@dataclass(frozen=True)
class Finding:
    """One linter finding, pointing at a source location."""

    code: str
    path: str
    line: int
    col: int
    message: str
    hint: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.code} "
                f"{self.message} (hint: {self.hint})")


def _comment_lines(source: str) -> Dict[int, str]:
    """line -> comment text, via tokenize so docstring mentions of the
    noqa marker are never mistaken for real suppressions."""
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Untokenizable source: fall back to whole-line matching.
        return {i: line for i, line in
                enumerate(source.splitlines(), start=1)}
    return comments


def _noqa_map(source: str) -> Dict[int, Optional[Set[str]]]:
    """``line -> suppressed codes`` (``None`` = every code) from comments."""
    suppressed: Dict[int, Optional[Set[str]]] = {}
    for lineno, comment in _comment_lines(source).items():
        match = _NOQA_RE.search(comment)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressed[lineno] = None
        else:
            suppressed[lineno] = {c.strip() for c in codes.split(",")}
    return suppressed


class SuppressionTracker:
    """Records which suppressions actually fired during a lint run.

    ``repro lint --project`` threads one tracker through every file and
    graph rule; suppressions that never matched a finding surface as
    RPR130 ("unused suppression") so the suppression surface can only
    ratchet down.  ``# repro: noqa`` comments are keyed by
    ``(path, line)``; allowlist entries by
    ``(allowlist name, path-suffix key, function-or-None)``.
    """

    def __init__(self) -> None:
        #: (path, line) -> codes the comment names (None = all codes).
        self.noqa: Dict[Tuple[str, int], Optional[Set[str]]] = {}
        self.noqa_used: Set[Tuple[str, int]] = set()
        self.allowlist_used: Set[Tuple[str, str, Optional[str]]] = set()

    def register_noqa(self, path: str, line: int,
                      codes: Optional[Set[str]]) -> None:
        self.noqa[(path, line)] = codes

    def mark_noqa_used(self, path: str, line: int) -> None:
        self.noqa_used.add((path, line))

    def mark_allowlist_used(self, name: str, key: str,
                            function: Optional[str]) -> None:
        self.allowlist_used.add((name, key, function))


def _path_packages(path: str) -> Set[str]:
    """Directory names along ``path`` (used for rule scoping)."""
    parts = os.path.normpath(path).split(os.sep)
    return set(parts[:-1])


class _Scope:
    """Per-function tracking of locals bound to set-typed values."""

    def __init__(self) -> None:
        self.set_vars: Set[str] = set()


class _DeterminismVisitor(ast.NodeVisitor):
    """Single-file pass implementing rules RPR001..RPR005, 7, 8, 9."""

    def __init__(self, path: str,
                 tracker: Optional[SuppressionTracker] = None) -> None:
        self.path = path
        self.tracker = tracker
        self.findings: List[Finding] = []
        packages = _path_packages(path)
        self.in_sim = bool(packages & SIM_PACKAGES)
        self.in_decision = bool(packages & DECISION_PACKAGES)
        self.in_entrypoint = bool(packages & ENTRYPOINT_PACKAGES)
        self.in_state_sink = bool(packages & STATE_SINK_PACKAGES)
        # Import aliases discovered while walking.
        self.random_aliases: Set[str] = set()       # stdlib random module
        self.random_funcs: Set[str] = set()         # from random import X
        self.numpy_aliases: Set[str] = set()        # numpy / np
        self.np_random_aliases: Set[str] = set()    # numpy.random as npr
        self.time_aliases: Set[str] = set()         # time module
        self.time_funcs: Set[str] = set()           # from time import X
        self.datetime_names: Set[str] = set()       # datetime/date classes
        self.datetime_modules: Set[str] = set()     # datetime module
        # Names bound to tmp_path(...) results (RPR009 exemption).
        self.tmp_path_vars: Set[str] = set()
        self._scopes: List[_Scope] = [_Scope()]
        self._func_depth = 0
        self._class_depth = 0
        self._func_names: List[str] = []

    # -- helpers -------------------------------------------------------
    def _report(self, code: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            code=code, path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message, hint=RULES[code][1]))

    def _is_set_var(self, name: str) -> bool:
        return any(name in scope.set_vars for scope in reversed(self._scopes))

    def _allowlist_match(
            self,
            allowlist: Dict[str, Optional[FrozenSet[str]]],
    ) -> Optional[Tuple[str, Optional[str]]]:
        """``(key, function)`` when the current location is allowlisted.

        Called only once a finding was *detected*, so a hit means the
        entry genuinely suppressed something — which is what the
        RPR130 unused-suppression rule needs to know.
        """
        path = os.path.normpath(self.path).replace(os.sep, "/")
        for suffix, functions in allowlist.items():
            if path == suffix or path.endswith("/" + suffix):
                if functions is None:
                    return (suffix, None)
                if self._func_names and self._func_names[-1] in functions:
                    return (suffix, self._func_names[-1])
        return None

    def _suppressed_by(self, name: str,
                       allowlist: Dict[str, Optional[FrozenSet[str]]],
                       ) -> bool:
        """Check an allowlist and record the hit with the tracker."""
        match = self._allowlist_match(allowlist)
        if match is None:
            return False
        if self.tracker is not None:
            self.tracker.mark_allowlist_used(name, match[0], match[1])
        return True

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name in ("numpy", "numpy.random"):
                if alias.name == "numpy.random" and alias.asname:
                    self.np_random_aliases.add(alias.asname)
                else:
                    self.numpy_aliases.add(bound)
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_modules.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "random":
                self.random_funcs.add(bound)
            elif node.module == "numpy" and alias.name == "random":
                self.np_random_aliases.add(bound)
            elif node.module == "time":
                self.time_funcs.add(bound)
            elif node.module == "datetime" and alias.name in ("datetime",
                                                              "date"):
                self.datetime_names.add(bound)
        self.generic_visit(node)

    # -- RPR001 / RPR002: calls ---------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self.in_sim:
            self._check_rng_call(node)
            self._check_clock_call(node)
        if self.in_state_sink:
            self._check_raw_write(node)
        self.generic_visit(node)

    # -- RPR009: raw in-place writes ----------------------------------
    @staticmethod
    def _is_tmp_path_call(node: Optional[ast.expr]) -> bool:
        if not isinstance(node, ast.Call):
            return False
        inner = node.func
        return (isinstance(inner, ast.Name) and inner.id == "tmp_path") \
            or (isinstance(inner, ast.Attribute)
                and inner.attr == "tmp_path")

    def _check_raw_write(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Name) and func.id == "open"):
            return
        mode: Optional[str] = None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) \
                and isinstance(node.args[1].value, str):
            mode = node.args[1].value
        for keyword in node.keywords:
            if keyword.arg == "mode" \
                    and isinstance(keyword.value, ast.Constant) \
                    and isinstance(keyword.value.value, str):
                mode = keyword.value.value
        if mode is None or not any(flag in mode for flag in "wx"):
            return  # read or append mode: no truncation hazard
        # open(tmp_path(p), "w") or open(tmp, "w") where tmp came from
        # tmp_path(...): the sanctioned stream-then-rename pattern — the
        # final path is never exposed mid-write.
        target = node.args[0] if node.args else None
        if self._is_tmp_path_call(target):
            return
        if isinstance(target, ast.Name) and target.id in self.tmp_path_vars:
            return
        if self._suppressed_by("RPR009_ALLOWLIST", RPR009_ALLOWLIST):
            return
        self._report("RPR009", node,
                     f"open(..., {mode!r}) truncates the destination in "
                     "place; a crash mid-write corrupts it")

    def _check_rng_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.random_funcs:
                self._report("RPR001", node,
                             f"call to random.{func.id}() uses the global "
                             "stdlib RNG")
            return
        if not isinstance(func, ast.Attribute):
            return
        owner = func.value
        # random.<anything>(...)
        if isinstance(owner, ast.Name) and owner.id in self.random_aliases:
            self._report("RPR001", node,
                         f"call to random.{func.attr}() uses the global "
                         "stdlib RNG")
            return
        # np.random.<attr>(...) or npr.<attr>(...)
        is_np_random = (
            (isinstance(owner, ast.Attribute) and owner.attr == "random"
             and isinstance(owner.value, ast.Name)
             and owner.value.id in self.numpy_aliases)
            or (isinstance(owner, ast.Name)
                and owner.id in self.np_random_aliases))
        if not is_np_random:
            return
        if func.attr not in _NP_RANDOM_ALLOWED:
            self._report("RPR001", node,
                         f"np.random.{func.attr}() draws from the global "
                         "NumPy RNG")
        elif func.attr == "default_rng" and not node.args and not node.keywords:
            self._report("RPR001", node,
                         "np.random.default_rng() without a seed is "
                         "entropy-seeded (nondeterministic)")

    def _report_clock(self, node: ast.Call, message: str) -> None:
        """RPR002 report point: allowlist checked *after* detection so
        suppression hits are observable (RPR130)."""
        if self._suppressed_by("RPR002_ALLOWLIST", RPR002_ALLOWLIST):
            return
        self._report("RPR002", node, message)

    def _check_clock_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.time_funcs and func.id in _TIME_BANNED:
                self._report_clock(node,
                                   f"{func.id}() reads the wall clock")
            return
        if not isinstance(func, ast.Attribute):
            return
        owner = func.value
        if (isinstance(owner, ast.Name) and owner.id in self.time_aliases
                and func.attr in _TIME_BANNED):
            self._report_clock(node,
                               f"time.{func.attr}() reads the wall clock")
            return
        if func.attr not in _DATETIME_BANNED:
            return
        if isinstance(owner, ast.Name) and owner.id in self.datetime_names:
            self._report_clock(node,
                               f"datetime.{func.attr}() reads the wall "
                               "clock")
        elif (isinstance(owner, ast.Attribute)
              and owner.attr in ("datetime", "date")
              and isinstance(owner.value, ast.Name)
              and owner.value.id in self.datetime_modules):
            self._report_clock(node,
                               f"datetime.{owner.attr}.{func.attr}() reads "
                               "the wall clock")

    # -- RPR003: unordered iteration ----------------------------------
    def _is_unordered(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._is_set_var(node.id)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            # set algebra: a | b, a - b, ... on a known set operand
            return (self._is_unordered(node.left)
                    or self._is_unordered(node.right))
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in ("set", "frozenset")
        if isinstance(func, ast.Attribute):
            if func.attr in _DICT_VIEW_ATTRS and not node.args:
                return True
            if func.attr in _SET_COMBINATORS:
                return self._is_unordered(func.value)
        return False

    def _check_iterable(self, iterable: ast.expr) -> None:
        if not self.in_decision:
            return
        if isinstance(iterable, ast.Call) and isinstance(
                iterable.func, ast.Name) and iterable.func.id == "sorted":
            return
        if self._is_unordered(iterable):
            what = ("a dict view" if isinstance(iterable, ast.Call)
                    and isinstance(iterable.func, ast.Attribute)
                    and iterable.func.attr in _DICT_VIEW_ATTRS
                    else "an unordered set")
            self._report("RPR003", iterable,
                         f"iterating {what} makes decision order "
                         "hash/insertion dependent")

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.expr) -> None:
        for gen in getattr(node, "generators", []):
            self._check_iterable(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_unordered(node.value) or (
            isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id in ("set", "frozenset"))
        is_tmp = self._is_tmp_path_call(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                scope = self._scopes[-1]
                if is_set:
                    scope.set_vars.add(target.id)
                else:
                    scope.set_vars.discard(target.id)
                if is_tmp:
                    self.tmp_path_vars.add(target.id)
                else:
                    self.tmp_path_vars.discard(target.id)
        self.generic_visit(node)

    # -- RPR004: float equality on simulated time ----------------------
    @staticmethod
    def _mentions_time(node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in _TIME_NAMES:
                return True
            if isinstance(sub, ast.Attribute) and sub.attr in _TIME_NAMES:
                return True
        return False

    @staticmethod
    def _is_exempt_operand(node: ast.expr) -> bool:
        """Comparisons against strings/None are identity-ish, not float."""
        return isinstance(node, ast.Constant) and (
            node.value is None or isinstance(node.value, str))

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.in_sim and any(isinstance(op, (ast.Eq, ast.NotEq))
                               for op in node.ops):
            operands = [node.left] + list(node.comparators)
            if (not any(self._is_exempt_operand(o) for o in operands)
                    and any(self._mentions_time(o) for o in operands)):
                self._report("RPR004", node,
                             "exact float comparison on a simulated-time "
                             "expression")
        self.generic_visit(node)

    # -- RPR005 / RPR008: function definitions -------------------------
    def _check_defaults(self, node: ast.arguments) -> None:
        for default in list(node.defaults) + [d for d in node.kw_defaults
                                              if d is not None]:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                           ast.ListComp, ast.DictComp,
                                           ast.SetComp))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")):
                mutable = True
            if mutable:
                self._report("RPR005", default,
                             "mutable default is shared across calls")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Methods are not entry points (their class threads the seed, e.g.
        # TraceGenerator(spec)); only module-level functions face RPR008.
        self._class_depth += 1
        self.generic_visit(node)
        self._class_depth -= 1

    def _check_entrypoint(self, node: ast.FunctionDef) -> None:
        if (not self.in_entrypoint or self._func_depth > 0
                or self._class_depth > 0 or node.name.startswith("_")):
            return
        if not node.name.startswith(_ENTRYPOINT_PREFIXES):
            return
        args = node.args
        names = {a.arg for a in (args.posonlyargs + args.args
                                 + args.kwonlyargs)}
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        ok = any(n in _SEED_PARAMS or n.endswith(("_seed", "_rng", "_spec"))
                 for n in names)
        if not ok:
            self._report("RPR008", node,
                         f"entry point {node.name}() cannot be seeded by "
                         "its caller")

    def _visit_function(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node.args)
        self._check_entrypoint(node)
        self._scopes.append(_Scope())
        self._func_depth += 1
        self._func_names.append(node.name)
        self.generic_visit(node)
        self._func_names.pop()
        self._func_depth -= 1
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- RPR007: overbroad except --------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report("RPR007", node, "bare except swallows everything "
                         "including KeyboardInterrupt")
        else:
            name = None
            if isinstance(node.type, ast.Name):
                name = node.type.id
            elif isinstance(node.type, ast.Attribute):
                name = node.type.attr
            if name in ("Exception", "BaseException"):
                reraises = any(isinstance(sub, ast.Raise) and sub.exc is None
                               for sub in ast.walk(node))
                if not reraises:
                    self._report("RPR007", node,
                                 f"except {name} without re-raise hides "
                                 "real failures")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# RPR006: EventKind exhaustiveness (cross-file project rule)
# ----------------------------------------------------------------------
def _enum_members(events_tree: ast.Module) -> Dict[str, Tuple[str, int]]:
    """``member name -> (string value, line)`` of the EventKind enum."""
    members: Dict[str, Tuple[str, int]] = {}
    for node in events_tree.body:
        if not (isinstance(node, ast.ClassDef) and node.name == "EventKind"):
            continue
        for stmt in node.body:
            if (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)):
                target = stmt.targets[0]
                members[target.id] = (stmt.value.value, stmt.lineno)
    return members


def _referenced_members(path: str) -> Set[str]:
    """EventKind members referenced (``EventKind.X``) in a dispatch file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            tree = ast.parse(handle.read())
    except (OSError, SyntaxError):
        return set()
    refs: Set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "EventKind"):
            refs.add(node.attr)
    return refs


def _timeline_track_keys(path: str) -> Optional[Set[str]]:
    """Keys of the ``EVENT_KIND_TRACKS`` literal, or None when absent."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            tree = ast.parse(handle.read())
    except (OSError, SyntaxError):
        return None
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target: ast.expr = node.targets[0]
            value: Optional[ast.expr] = node.value
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            value = node.value
        else:
            continue
        if (isinstance(target, ast.Name)
                and target.id == "EVENT_KIND_TRACKS"
                and isinstance(value, ast.Dict)):
            keys: Set[str] = set()
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value,
                                                                str):
                    keys.add(key.value)
            return keys
    return None


def _check_eventkind(path: str, tree: ast.Module) -> List[Finding]:
    """RPR006 for an ``events.py`` defining ``EventKind``.

    Dispatch coverage is looked for in the sibling ``engine.py`` and in
    ``../faults/runtime.py``; track mapping in ``../obs/timeline.py``.
    """
    members = _enum_members(tree)
    if not members:
        return []
    directory = os.path.dirname(os.path.abspath(path))
    parent = os.path.dirname(directory)
    dispatched: Set[str] = set()
    for candidate in (os.path.join(directory, "engine.py"),
                      os.path.join(parent, "faults", "runtime.py")):
        dispatched |= _referenced_members(candidate)
    tracks = _timeline_track_keys(os.path.join(parent, "obs", "timeline.py"))
    findings: List[Finding] = []
    for name, (value, line) in sorted(members.items()):
        if name not in dispatched:
            findings.append(Finding(
                code="RPR006", path=path, line=line, col=4,
                message=f"EventKind.{name} is never dispatched in "
                        "sim/engine.py or faults/runtime.py",
                hint=RULES["RPR006"][1]))
        if tracks is None or value not in tracks:
            findings.append(Finding(
                code="RPR006", path=path, line=line, col=4,
                message=f"EventKind.{name} ({value!r}) has no track in "
                        "obs/timeline.py EVENT_KIND_TRACKS",
                hint=RULES["RPR006"][1]))
    return findings


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def lint_source(source: str, path: str = "<string>",
                tracker: Optional[SuppressionTracker] = None,
                ) -> List[Finding]:
    """Lint one module's source; returns noqa-filtered findings.

    Any parse failure — syntax error, null bytes, broken encoding —
    becomes an RPR000 finding with the file/line instead of an
    exception, so one bad file cannot take down a whole lint run.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(code="RPR000", path=path, line=exc.lineno or 1,
                        col=exc.offset or 0, message=str(exc.msg),
                        hint=RULES["RPR000"][1])]
    except ValueError as exc:  # e.g. null bytes in the source
        return [Finding(code="RPR000", path=path, line=1, col=0,
                        message=str(exc), hint=RULES["RPR000"][1])]
    visitor = _DeterminismVisitor(path, tracker=tracker)
    visitor.visit(tree)
    findings = visitor.findings
    if os.path.basename(path) == "events.py":
        findings = findings + _check_eventkind(path, tree)
    return apply_noqa(findings, source, path, tracker)


def apply_noqa(findings: Sequence[Finding], source: str, path: str,
               tracker: Optional[SuppressionTracker] = None,
               ) -> List[Finding]:
    """Drop findings suppressed by ``# repro: noqa`` comments, recording
    registration and use with the tracker (RPR130)."""
    suppressed = _noqa_map(source)
    if tracker is not None:
        for line, codes in suppressed.items():
            tracker.register_noqa(path, line, codes)
    kept: List[Finding] = []
    for finding in findings:
        codes = suppressed.get(finding.line, frozenset())
        if codes is None or (codes and finding.code in codes):
            if tracker is not None:
                tracker.mark_noqa_used(path, finding.line)
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return kept


def lint_file(path: str,
              tracker: Optional[SuppressionTracker] = None,
              ) -> List[Finding]:
    """Lint one ``.py`` file from disk (unreadable files -> RPR000)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(code="RPR000", path=path, line=1, col=0,
                        message=str(exc), hint=RULES["RPR000"][1])]
    return lint_source(source, path, tracker)


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint files and/or directory trees (``__pycache__`` skipped).

    Raises ``FileNotFoundError`` for a path that does not exist, so CLI
    typos fail loudly instead of reporting a clean empty run.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d != "__pycache__"
                                 and not d.startswith("."))
                files.extend(os.path.join(root, n) for n in sorted(names)
                             if n.endswith(".py"))
        else:
            raise FileNotFoundError(path)
    findings: List[Finding] = []
    for name in files:
        findings.extend(lint_file(name))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def format_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    if not findings:
        return "determinism lint: clean"
    lines = [f.format() for f in findings]
    by_code: Dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    summary = ", ".join(f"{code} x{count}"
                        for code, count in sorted(by_code.items()))
    lines.append(f"determinism lint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable key order)."""
    return json.dumps({
        "findings": [asdict(f) for f in findings],
        "count": len(findings),
    }, indent=2, sort_keys=True)
