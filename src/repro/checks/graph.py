"""Whole-program project index for the graph rule packs (RPR1xx).

The per-file linter (:mod:`repro.checks.lint`) sees one module at a
time, so it cannot check the invariants that now matter most — layering
conformance, replay-safe mutation routing, hot-path reachability.  This
module parses every ``.py`` file under one package root *once* into a
:class:`ProjectIndex`:

* the **module import graph**, with every edge classified as
  module-level, lazy (inside a function body) or ``TYPE_CHECKING``-only;
* a **per-module symbol table** (functions, classes, imported names);
* an approximate **intra-project call graph** with attribute-call
  resolution through class definitions: ``self.x`` attributes assigned
  from ``ClassName(...)`` constructors resolve precisely, everything
  else falls back to class-hierarchy-analysis by method name.

The index is purely syntactic (``ast`` only — nothing is imported or
executed) and deterministic: all traversals sort, so two builds over
the same files produce identical graphs regardless of file discovery
order.  Rule packs in :mod:`repro.checks.rules` consume the index.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Mapping, Optional, Sequence, Set,
                    Tuple, Union)

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ImportEdge",
    "ModuleInfo",
    "ProjectIndex",
    "build_index",
]

FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Pseudo-function name holding a module's top-level statements.
MODULE_SCOPE = "<module>"

#: Cap on name-based (CHA) fallback resolution: a bare name defined in
#: more places than this is too ambiguous to produce useful edges.
_FALLBACK_CAP = 8

#: Names never resolved by bare-name fallback: builtin functions and
#: common container/str methods.  A project method that happens to share
#: one of these names is still resolved through the precise paths
#: (self./attribute-type/module lookup), just not by name alone.
_GENERIC_NAMES = frozenset({
    "add", "append", "extend", "insert", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "get", "keys", "values",
    "items", "copy", "sort", "reverse", "index", "count", "split",
    "rsplit", "join", "strip", "lstrip", "rstrip", "startswith",
    "endswith", "format", "encode", "decode", "read", "write", "close",
    "open", "flush", "readline", "readlines", "seek",
    "digest", "hexdigest",
    "max", "min", "sum", "len", "sorted", "abs", "round", "repr", "str",
    "int", "float", "bool", "list", "dict", "set", "tuple", "frozenset",
    "print", "next", "iter", "enumerate", "zip", "range", "map",
    "filter", "any", "all", "isinstance", "issubclass", "getattr",
    "setattr", "hasattr", "super", "type", "id", "hash", "vars",
})


@dataclass(frozen=True)
class ImportEdge:
    """One project-internal import statement."""

    src: str                  #: importing module (dotted)
    dest: str                 #: imported module (dotted, project-internal)
    name: Optional[str]       #: ``from dest import name`` (None otherwise)
    line: int
    col: int
    lazy: bool                #: inside a function/method body
    type_checking: bool       #: under ``if TYPE_CHECKING:``


@dataclass(frozen=True)
class CallSite:
    """One call (or callable reference) found in a function body."""

    caller: str               #: qualified name of the enclosing function
    name: str                 #: bare callee name (``predict``)
    owner: Optional[str]      #: dotted owner text (``self.binder``) or None
    kind: str                 #: ``"call"`` or ``"ref"`` (callable argument)
    line: int
    col: int
    in_loop: bool             #: lexically inside a loop / comprehension


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qname: str                #: ``repro.sim.engine.Simulator.step_batch``
    module: str
    name: str                 #: bare name
    cls: Optional[str]        #: enclosing class bare name, or None
    line: int
    col: int
    node: FuncNode


@dataclass
class ClassInfo:
    """One class definition with constructor-inferred attribute types."""

    qname: str
    module: str
    name: str
    line: int
    bases: List[str] = field(default_factory=list)
    #: ``self.attr`` -> bare class name, from ``self.attr = ClassName(...)``.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: method bare name -> function qname.
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Everything the index knows about one module."""

    name: str                 #: dotted module name (``repro.sim.engine``)
    path: str                 #: filesystem path
    source: str
    tree: Optional[ast.Module]
    #: (line, col, message) when the module failed to parse.
    error: Optional[Tuple[int, int, str]] = None
    is_package: bool = False  #: the module is an ``__init__.py``
    imports: List[ImportEdge] = field(default_factory=list)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    calls: List[CallSite] = field(default_factory=list)
    #: local name -> (module, original name or None when the name *is*
    #: a module); covers ``from m import f as g`` and ``from p import m``.
    imported_names: Dict[str, Tuple[str, Optional[str]]] = \
        field(default_factory=dict)


def _is_type_checking_test(test: ast.expr) -> bool:
    """``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` guard?"""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _owner_text(node: ast.expr) -> Optional[str]:
    """Dotted text of a Name/Attribute chain, or None when dynamic."""
    parts: List[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


class _ModuleVisitor(ast.NodeVisitor):
    """Single pass collecting imports, defs, classes and call sites."""

    def __init__(self, info: ModuleInfo, package: str) -> None:
        self.info = info
        self.package = package
        self._func_stack: List[str] = []        # qname segments
        self._class_stack: List[ClassInfo] = []
        self._loop_depth = 0
        self._type_checking = 0

    # -- scope helpers -------------------------------------------------
    def _caller(self) -> str:
        if self._func_stack:
            return self._func_stack[-1]
        return f"{self.info.name}.{MODULE_SCOPE}"

    def _lazy(self) -> bool:
        return bool(self._func_stack)

    # -- imports -------------------------------------------------------
    def _add_edge(self, dest: str, name: Optional[str],
                  node: ast.stmt) -> None:
        if dest != self.package and not dest.startswith(self.package + "."):
            return
        self.info.imports.append(ImportEdge(
            src=self.info.name, dest=dest, name=name,
            line=node.lineno, col=node.col_offset,
            lazy=self._lazy(), type_checking=self._type_checking > 0))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add_edge(alias.name, None, node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._resolve_from(node)
        if base is None:
            return
        for alias in node.names:
            self._add_edge(base, alias.name, node)
            bound = alias.asname or alias.name
            if base == self.package or base.startswith(self.package + "."):
                self.info.imported_names[bound] = (base, alias.name)

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: resolve against this module's package path.
        parts = self.info.name.split(".")
        if not self.info.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop > 0:
            if drop >= len(parts):
                return None
            parts = parts[:len(parts) - drop]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else None

    # -- TYPE_CHECKING guards ------------------------------------------
    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._type_checking += 1
            for stmt in node.body:
                self.visit(stmt)
            self._type_checking -= 1
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.visit(node.test)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    # -- definitions ---------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        prefix = (self._class_stack[-1].qname if self._class_stack
                  else self.info.name)
        cls = ClassInfo(qname=f"{prefix}.{node.name}",
                        module=self.info.name, name=node.name,
                        line=node.lineno)
        for base in node.bases:
            text = _owner_text(base)
            if text is not None:
                cls.bases.append(text.split(".")[-1])
        self.info.classes[cls.qname] = cls
        self._class_stack.append(cls)
        for stmt in node.body:
            self.visit(stmt)
        self._class_stack.pop()

    def _visit_func(self, node: FuncNode) -> None:
        if self._func_stack:
            prefix = self._func_stack[-1]
        elif self._class_stack:
            prefix = self._class_stack[-1].qname
        else:
            prefix = self.info.name
        qname = f"{prefix}.{node.name}"
        cls = self._class_stack[-1] if (self._class_stack
                                        and not self._func_stack) else None
        self.info.functions[qname] = FunctionInfo(
            qname=qname, module=self.info.name, name=node.name,
            cls=cls.name if cls is not None else None,
            line=node.lineno, col=node.col_offset, node=node)
        if cls is not None:
            cls.methods[node.name] = qname
        self._func_stack.append(qname)
        outer_loop = self._loop_depth
        self._loop_depth = 0
        for stmt in node.body:
            self.visit(stmt)
        self._loop_depth = outer_loop
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node)

    # -- attribute type inference --------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if self._class_stack and isinstance(node.value, ast.Call):
            ctor = _owner_text(node.value.func)
            if ctor is not None:
                cls_name = ctor.split(".")[-1]
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        self._class_stack[-1].attr_types[target.attr] = \
                            cls_name
        self.generic_visit(node)

    # -- loops / comprehensions ----------------------------------------
    def _visit_loop(self, node: Union[ast.For, ast.AsyncFor,
                                      ast.While]) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self.visit(node.iter)       # evaluated once, outside the loop
            self.visit(node.target)
        else:
            self.visit(node.test)
        self._loop_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self._loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def _visit_comp(self, node: Union[ast.ListComp, ast.SetComp,
                                      ast.DictComp,
                                      ast.GeneratorExp]) -> None:
        # A comprehension body runs once per element: treat as a loop.
        # The FIRST generator's iterable is evaluated exactly once,
        # outside that loop (like a For statement's iter); everything
        # else — element, conditions, nested generators — runs per item.
        self.visit(node.generators[0].iter)
        self._loop_depth += 1
        for pos, gen in enumerate(node.generators):
            if pos > 0:
                self.visit(gen.iter)
            self.visit(gen.target)
            for cond in gen.ifs:
                self.visit(cond)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self._loop_depth -= 1

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comp(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name: Optional[str] = None
        owner: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
            owner = _owner_text(func.value) or "?"
        if name is not None:
            self.info.calls.append(CallSite(
                caller=self._caller(), name=name, owner=owner,
                kind="call", line=node.lineno, col=node.col_offset,
                in_loop=self._loop_depth > 0))
        # Callable references passed as arguments (callbacks): resolve
        # lazily — unresolvable names simply produce no edges.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name):
                self.info.calls.append(CallSite(
                    caller=self._caller(), name=arg.id, owner=None,
                    kind="ref", line=arg.lineno, col=arg.col_offset,
                    in_loop=self._loop_depth > 0))
            elif isinstance(arg, ast.Attribute):
                ref_owner = _owner_text(arg.value)
                self.info.calls.append(CallSite(
                    caller=self._caller(), name=arg.attr,
                    owner=ref_owner or "?", kind="ref",
                    line=arg.lineno, col=arg.col_offset,
                    in_loop=self._loop_depth > 0))
        self.generic_visit(node)


class ProjectIndex:
    """Import graph + symbol tables + approximate call graph."""

    def __init__(self, package: str, root: str,
                 modules: Dict[str, ModuleInfo]) -> None:
        self.package = package
        self.root = root
        self.modules = modules
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._by_name: Dict[str, List[str]] = {}
        self._class_by_name: Dict[str, List[str]] = {}
        self._subclasses: Dict[str, List[str]] = {}
        for mod_name in sorted(modules):
            module = modules[mod_name]
            for qname in sorted(module.functions):
                self.functions[qname] = module.functions[qname]
                bare = module.functions[qname].name
                self._by_name.setdefault(bare, []).append(qname)
            for qname in sorted(module.classes):
                self.classes[qname] = module.classes[qname]
                bare = module.classes[qname].name
                self._class_by_name.setdefault(bare, []).append(qname)
        for qname in sorted(self.classes):
            for base in self.classes[qname].bases:
                for base_qname in self._class_by_name.get(base, []):
                    self._subclasses.setdefault(base_qname, []).append(qname)
        self._edges: Optional[Dict[str, List[Tuple[str, CallSite]]]] = None

    # -- module-level structure ----------------------------------------
    def relname(self, module: str) -> str:
        """Module name without the package prefix (``sim.engine``)."""
        if module == self.package:
            return ""
        prefix = self.package + "."
        return module[len(prefix):] if module.startswith(prefix) else module

    def package_of(self, module: str) -> str:
        """First-level package of a module; ``""`` for top-level ones."""
        rel = self.relname(module)
        if "." not in rel:
            mod = self.modules.get(module)
            if mod is not None and mod.is_package and rel:
                return rel
            return ""
        return rel.split(".", 1)[0]

    def import_graph(self, include_lazy: bool = False,
                     include_type_checking: bool = False,
                     ) -> Dict[str, Set[str]]:
        """Module -> imported project modules, filtered by edge class."""
        graph: Dict[str, Set[str]] = {name: set() for name in self.modules}
        for name in sorted(self.modules):
            for edge in self.modules[name].imports:
                if edge.type_checking and not include_type_checking:
                    continue
                if edge.lazy and not include_lazy:
                    continue
                dest = self._edge_dest_module(edge)
                if dest != name and dest in self.modules:
                    graph[name].add(dest)
        return graph

    def _edge_dest_module(self, edge: ImportEdge) -> str:
        """Effective destination module (``from p import m`` -> ``p.m``)."""
        if edge.name is not None:
            candidate = f"{edge.dest}.{edge.name}"
            if candidate in self.modules:
                return candidate
        return edge.dest

    def find_cycles(self) -> List[List[str]]:
        """Strongly connected components (size > 1) of the module-level
        import graph, each sorted, the list sorted by first member."""
        graph = self.import_graph()
        order: List[str] = []
        seen: Set[str] = set()

        def _dfs1(start: str) -> None:
            stack: List[Tuple[str, List[str]]] = [
                (start, sorted(graph.get(start, set())))]
            seen.add(start)
            while stack:
                node, nexts = stack[-1]
                if nexts:
                    nxt = nexts.pop(0)
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, sorted(graph.get(nxt, set()))))
                else:
                    order.append(node)
                    stack.pop()

        for node in sorted(graph):
            if node not in seen:
                _dfs1(node)
        reverse: Dict[str, Set[str]] = {name: set() for name in graph}
        for src in graph:
            for dst in graph[src]:
                reverse[dst].add(src)
        assigned: Set[str] = set()
        components: List[List[str]] = []
        for node in reversed(order):
            if node in assigned:
                continue
            component: List[str] = []
            stack2: List[str] = [node]
            assigned.add(node)
            while stack2:
                cur = stack2.pop()
                component.append(cur)
                for prev in sorted(reverse.get(cur, set())):
                    if prev not in assigned:
                        assigned.add(prev)
                        stack2.append(prev)
            if len(component) > 1:
                components.append(sorted(component))
        components.sort()
        return components

    # -- call graph ----------------------------------------------------
    def _resolve_through_init(self, module: str, name: str,
                              depth: int = 0) -> List[str]:
        """Find function ``module.name``, following package ``__init__``
        re-exports up to a few hops."""
        qname = f"{module}.{name}"
        if qname in self.functions:
            return [qname]
        cls_qname = qname
        if cls_qname in self.classes:
            init = self.classes[cls_qname].methods.get("__init__")
            return [init] if init is not None else []
        mod = self.modules.get(module)
        if mod is not None and depth < 3:
            target = mod.imported_names.get(name)
            if target is not None and target[1] is not None:
                return self._resolve_through_init(target[0], target[1],
                                                  depth + 1)
        return []

    def _method_candidates(self, cls_qname: str, name: str) -> List[str]:
        """Methods named ``name`` on a class, its project ancestors and
        its project descendants (CHA through the class hierarchy)."""
        found: Set[str] = set()
        # Up the hierarchy to the first definition.
        queue = [cls_qname]
        visited: Set[str] = set()
        while queue:
            cur = queue.pop(0)
            if cur in visited or cur not in self.classes:
                continue
            visited.add(cur)
            cls = self.classes[cur]
            if name in cls.methods:
                found.add(cls.methods[name])
            else:
                for base in cls.bases:
                    queue.extend(self._class_by_name.get(base, []))
        # Down the hierarchy: overriding subclasses.
        queue = [cls_qname]
        visited = set()
        while queue:
            cur = queue.pop(0)
            if cur in visited:
                continue
            visited.add(cur)
            cls2 = self.classes.get(cur)
            if cls2 is not None and name in cls2.methods:
                found.add(cls2.methods[name])
            queue.extend(self._subclasses.get(cur, []))
        return sorted(found)

    def _fallback_by_name(self, name: str) -> List[str]:
        if name in _GENERIC_NAMES:
            return []
        candidates = self._by_name.get(name, [])
        if not candidates or len(candidates) > _FALLBACK_CAP:
            return []
        return list(candidates)

    def resolve_call(self, site: CallSite) -> List[str]:
        """Possible callee qnames for one call site (sorted).

        Name-based fallback only applies to real ``call`` sites: a bare
        name passed as an argument (kind ``ref``) resolves precisely or
        not at all — otherwise every local variable that happens to
        share a method's name would wire a bogus call edge.
        """
        fallback = (self._fallback_by_name if site.kind == "call"
                    else lambda _name: [])
        if site.caller.endswith("." + MODULE_SCOPE):
            module_name: Optional[str] = site.caller.rsplit(".", 1)[0]
        elif site.caller in self.functions:
            module_name = self.functions[site.caller].module
        else:
            module_name = None
        if module_name is None or module_name not in self.modules:
            # Module scope of a module we know by prefix.
            parts = site.caller.split(".")
            while parts and ".".join(parts) not in self.modules:
                parts.pop()
            module_name = ".".join(parts) if parts else None
        if module_name is None:
            return fallback(site.name)
        module = self.modules[module_name]
        caller_cls = self._caller_class(site.caller, module)
        if site.owner is None:
            return self._resolve_name(module, site.name, fallback)
        if site.owner in ("self", "cls") and caller_cls is not None:
            found = self._method_candidates(caller_cls.qname, site.name)
            return found if found else fallback(site.name)
        if site.owner not in ("?", None):
            head, _, rest = site.owner.partition(".")
            if head in ("self", "cls") and caller_cls is not None \
                    and rest and "." not in rest:
                attr_cls = self._attr_type(caller_cls, rest)
                if attr_cls is not None:
                    found = self._method_candidates(attr_cls, site.name)
                    if found:
                        return found
            if not rest:
                resolved = self._resolve_owner_head(module, head, site.name)
                if resolved is not None:
                    return resolved
        return fallback(site.name)

    def _attr_type(self, cls: ClassInfo, attr: str) -> Optional[str]:
        bare = cls.attr_types.get(attr)
        if bare is None:
            return None
        candidates = self._class_by_name.get(bare, [])
        return candidates[0] if candidates else None

    def _caller_class(self, caller: str,
                      module: ModuleInfo) -> Optional[ClassInfo]:
        info = self.functions.get(caller)
        if info is None or info.cls is None:
            return None
        cls_qname = caller.rsplit(".", 1)[0]
        return self.classes.get(cls_qname)

    def _resolve_name(self, module: ModuleInfo, name: str,
                      fallback: Callable[[str], List[str]]) -> List[str]:
        local = f"{module.name}.{name}"
        if local in self.functions:
            return [local]
        if local in self.classes:
            init = self.classes[local].methods.get("__init__")
            return [init] if init is not None else []
        target = module.imported_names.get(name)
        if target is not None and target[1] is not None:
            found = self._resolve_through_init(target[0], target[1])
            if found:
                return found
        return fallback(name)

    def _resolve_owner_head(self, module: ModuleInfo, head: str,
                            name: str) -> Optional[List[str]]:
        """Resolve ``head.name()`` where head is an imported module,
        an imported class, or a local class."""
        local_cls = f"{module.name}.{head}"
        if local_cls in self.classes:
            return self._method_candidates(local_cls, name)
        target = module.imported_names.get(head)
        if target is None:
            return None
        base, orig = target
        if orig is None:
            return self._resolve_through_init(base, name) or []
        candidate_mod = f"{base}.{orig}"
        if candidate_mod in self.modules:
            return self._resolve_through_init(candidate_mod, name) or []
        cls_qname = f"{base}.{orig}"
        if cls_qname in self.classes:
            return self._method_candidates(cls_qname, name)
        return None

    def call_edges(self) -> Dict[str, List[Tuple[str, CallSite]]]:
        """caller qname -> sorted ``(callee qname, site)`` pairs."""
        if self._edges is not None:
            return self._edges
        edges: Dict[str, List[Tuple[str, CallSite]]] = {}
        for mod_name in sorted(self.modules):
            for site in self.modules[mod_name].calls:
                for callee in self.resolve_call(site):
                    edges.setdefault(site.caller, []).append((callee, site))
        for caller in edges:
            edges[caller].sort(key=lambda pair: (pair[0], pair[1].line,
                                                 pair[1].col))
        self._edges = edges
        return edges

    def reachable(self, roots: Sequence[str]) -> Set[str]:
        """Function qnames reachable from ``roots`` via the call graph."""
        edges = self.call_edges()
        seen: Set[str] = set()
        queue = sorted(set(roots))
        while queue:
            cur = queue.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            for callee, _site in edges.get(cur, []):
                if callee not in seen:
                    queue.append(callee)
        return seen

    def loop_reachable(self, roots: Sequence[str]) -> Dict[str, bool]:
        """Reachability with loop-carry: ``qname -> True`` when some hot
        call chain to it passes through a call site inside a loop."""
        edges = self.call_edges()
        state: Dict[str, bool] = {}
        queue: List[Tuple[str, bool]] = [(r, False) for r in sorted(set(roots))]
        while queue:
            cur, loop = queue.pop(0)
            prev = state.get(cur)
            if prev is not None and (prev or not loop):
                continue
            state[cur] = loop if prev is None else (prev or loop)
            for callee, site in edges.get(cur, []):
                queue.append((callee, loop or site.in_loop))
        return state

    def functions_in_module(self, module: str) -> List[FunctionInfo]:
        mod = self.modules.get(module)
        if mod is None:
            return []
        return [mod.functions[q] for q in sorted(mod.functions)]


def _module_name(package: str, package_dir: str, path: str,
                 ) -> Tuple[str, bool]:
    rel = os.path.relpath(path, package_dir)
    parts = rel.replace(os.sep, "/").split("/")
    assert parts[-1].endswith(".py")
    is_package = parts[-1] == "__init__.py"
    if is_package:
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3]
    return ".".join([package] + [p for p in parts if p]), is_package


def _discover(package_dir: str) -> List[str]:
    files: List[str] = []
    for root, dirs, names in os.walk(package_dir):
        dirs[:] = sorted(d for d in dirs
                         if d != "__pycache__" and not d.startswith("."))
        files.extend(os.path.join(root, n) for n in sorted(names)
                     if n.endswith(".py"))
    return files


def build_index(package_dir: str,
                files: Optional[Sequence[str]] = None,
                sources: Optional[Mapping[str, str]] = None,
                ) -> ProjectIndex:
    """Parse every module under ``package_dir`` into a project index.

    ``package_dir`` is the package root itself (e.g. ``src/repro``); the
    package name is its basename.  ``files`` overrides discovery (any
    order — the index is order-independent); ``sources`` maps paths to
    source text for callers that already read the files.  Files that do
    not parse still get a :class:`ModuleInfo` carrying ``error`` so
    rules can report a parse-failure finding instead of crashing.
    """
    package_dir = os.path.normpath(package_dir)
    package = os.path.basename(os.path.abspath(package_dir))
    if files is None:
        files = _discover(package_dir)
    modules: Dict[str, ModuleInfo] = {}
    for path in sorted(set(files)):
        name, is_package = _module_name(package, package_dir, path)
        source = ""
        error: Optional[Tuple[int, int, str]] = None
        tree: Optional[ast.Module] = None
        try:
            if sources is not None and path in sources:
                source = sources[path]
            else:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            error = (exc.lineno or 1, exc.offset or 0,
                     str(exc.msg or "syntax error"))
        except (OSError, ValueError, UnicodeDecodeError) as exc:
            error = (1, 0, str(exc))
        info = ModuleInfo(name=name, path=path, source=source, tree=tree,
                          error=error, is_package=is_package)
        if tree is not None:
            _ModuleVisitor(info, package).visit(tree)
            info.imports.sort(key=lambda e: (e.line, e.col, e.dest))
            info.calls.sort(key=lambda c: (c.line, c.col, c.name))
        modules[name] = info
    return ProjectIndex(package=package, root=package_dir, modules=modules)
