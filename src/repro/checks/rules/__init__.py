"""Graph rule packs (RPR1xx) over the whole-program project index.

Three packs, each consuming the :class:`~repro.checks.graph.ProjectIndex`
built once per ``repro lint --project`` run:

* :mod:`repro.checks.rules.architecture` — RPR100..RPR104: import
  cycles, layering conformance against the DAG declared in
  ``pyproject.toml`` (``[tool.repro.layers]``), cross-package private
  imports, umbrella imports, entry-point imports.
* :mod:`repro.checks.rules.replay` — RPR110..RPR114: replay safety of
  the serve subsystem (SimCore mutations outside ``apply_tick_record``,
  WAL payload coverage of ``EventKind``, wall-clock/RNG and unordered
  iteration reachable from digest-computing code, lineage cause-schema
  coverage of ``EventKind``).
* :mod:`repro.checks.rules.hotpath` — RPR120..RPR123: allocation and
  per-item-model-call patterns inside functions the profiler baseline
  (``benchmarks/results/bench_baseline.json``) marks hot.

Suppression semantics match the file rules: a ``# repro: noqa`` (or
``# repro: noqa RPR121``) comment on the flagged line suppresses the
finding; the project runner tracks which suppressions fire so unused
ones surface as RPR130.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.checks.graph import ProjectIndex
from repro.checks.lint import Finding, SuppressionTracker

__all__ = [
    "GRAPH_RULES",
    "RuleContext",
    "run_graph_rules",
]

#: code -> (one-line summary, fix hint) for the graph rule packs.
GRAPH_RULES: Dict[str, Tuple[str, str]] = {
    "RPR100": ("import cycle between project modules",
               "break the cycle: move the shared names into a lower "
               "layer, or make one edge lazy (function-scoped import)"),
    "RPR101": ("module-level import violates the declared layering DAG",
               "depend only on the packages [tool.repro.layers.allowed] "
               "grants this package, or move the code down a layer"),
    "RPR102": ("cross-package import of a private (_-prefixed) name",
               "import the public API of the other package; promote the "
               "name (drop the underscore) if it is genuinely shared"),
    "RPR103": ("umbrella import of the top-level package from a "
               "subpackage",
               "import the defining module directly (e.g. "
               "repro.sim.engine) — umbrella imports hide the real "
               "dependency and can recurse through __init__"),
    "RPR104": ("entry-point module imported from library code",
               "cli/__main__ are leaves of the import DAG; move the "
               "shared helper into a library package instead"),
    "RPR110": ("SimCore state mutated outside the apply_tick_record path",
               "route every SimCore mutation through apply_tick_record "
               "so WAL replay reproduces it; reads are fine"),
    "RPR111": ("EventKind member without WAL payload coverage",
               "add the member to WAL_EVENT_COVERAGE in serve/core.py "
               "stating how replay reproduces its payload (and drop "
               "stale entries)"),
    "RPR112": ("wall-clock/RNG call reachable from digest/replay code",
               "digest-feeding state must be a pure function of the "
               "journaled inputs; hoist the read out of the replay "
               "path or allowlist instrumentation in RPR002_ALLOWLIST"),
    "RPR113": ("unordered iteration reachable from digest/replay code",
               "wrap the iterable in sorted(...); iteration order feeds "
               "the digest via state mutation order"),
    "RPR114": ("EventKind member without a lineage cause-schema entry",
               "add the member to LINEAGE_CAUSE_SCHEMA in obs/lineage.py "
               "stating which causes the lineage collector records for "
               "it (and drop stale entries)"),
    "RPR120": ("deepcopy inside a profiler-hot function",
               "deepcopy on the hot path dominates the profile; share "
               "immutable state or copy only the mutated fields"),
    "RPR121": ("sorted() allocation on a profiler-hot loop path",
               "hoist the sort out of the loop, maintain a sorted "
               "index, or use an order-free aggregate (any/min/max)"),
    "RPR122": ("per-iteration comprehension allocation in a hot loop",
               "hoist the allocation out of the loop or fold the "
               "computation into the existing pass"),
    "RPR123": ("per-item model predict call inside a hot loop",
               "batch the predictions (predict over a vector) outside "
               "the loop instead of one model call per item"),
    "RPR130": ("unused suppression",
               "delete the stale # repro: noqa comment or allowlist "
               "entry; the suppression surface must ratchet down"),
}


@dataclass
class RuleContext:
    """Everything a graph rule pack needs besides the index."""

    index: ProjectIndex
    #: Repo root used to locate pyproject.toml / the bench baseline and
    #: to relativize finding paths.
    repo_root: str
    pyproject_path: Optional[str] = None
    bench_baseline_path: Optional[str] = None
    #: When set, packs record allowlist suppressions they apply here so
    #: RPR130 can tell live entries from dead ones.
    tracker: Optional["SuppressionTracker"] = None


def run_graph_rules(ctx: RuleContext) -> List[Finding]:
    """Run every graph rule pack; findings sorted, not noqa-filtered
    (the project runner applies suppression uniformly)."""
    from repro.checks.rules.architecture import check_architecture
    from repro.checks.rules.hotpath import check_hotpath
    from repro.checks.rules.replay import check_replay

    findings: List[Finding] = []
    findings.extend(check_architecture(ctx))
    findings.extend(check_replay(ctx))
    findings.extend(check_hotpath(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
