"""Hot-path pack: RPR120–RPR123 inside profiler-hot functions.

The hot set is seeded from the committed profiler baseline
(``benchmarks/results/bench_baseline.json``): every span and counter
name that appears there (``lucid.control``, ``binder_attempts``,
``speed_refreshes``, …) is mapped to the functions that emit it —
call sites of ``profile_span("…")`` / ``profile_count("…")`` (or the
profiler's own ``span``/``count`` methods) with a matching string
literal — and the set is closed over the call graph.

Propagation tracks *loop carry*: a function is "loop-hot" when some
hot call chain to it passes through a call site inside a loop.  The
loop-carry is what makes a per-call ``sorted()`` in a helper equivalent
to a sorted-in-loop at the caller.  Rules:

* **RPR120** — ``copy.deepcopy`` anywhere in a hot function.
* **RPR121** — ``sorted()`` lexically inside a loop of a hot function,
  or anywhere in a loop-hot function.
* **RPR122** — list/dict/set comprehension lexically inside a loop of a
  hot function (a fresh allocation per iteration).
* **RPR123** — per-item model calls (``.predict`` / ``.safe_predict``)
  inside a loop or comprehension of a hot function.

This pack feeds ROADMAP item 1 (the Lucid 10–20× hot-path gap): its
findings are exactly the allocation patterns the profiler blames.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Dict, List, Optional, Set

from repro.checks.graph import FuncNode, ProjectIndex
from repro.checks.lint import Finding
from repro.checks.rules import GRAPH_RULES, RuleContext

__all__ = ["check_hotpath", "hot_names_from_baseline"]

#: Call names that register a profiler span/counter with a literal.
_PROFILE_CALLS = frozenset({"profile_span", "profile_count", "span",
                            "count"})

#: Model-prediction method names (RPR123).
_PREDICT_METHODS = frozenset({"predict", "safe_predict"})


def _finding(code: str, path: str, line: int, col: int,
             message: str) -> Finding:
    return Finding(code=code, path=path, line=line, col=col,
                   message=message, hint=GRAPH_RULES[code][1])


def hot_names_from_baseline(path: str) -> Set[str]:
    """Span + counter names recorded in a ``repro-bench`` baseline."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return set()
    names: Set[str] = set()

    def _collect(obj: object) -> None:
        if isinstance(obj, dict):
            for key, value in obj.items():
                if key in ("spans", "counters") and isinstance(value,
                                                               dict):
                    names.update(str(k) for k in value)
                else:
                    _collect(value)
        elif isinstance(obj, list):
            for item in obj:
                _collect(item)

    _collect(data)
    return names


def _hot_roots(index: ProjectIndex, hot_names: Set[str]) -> List[str]:
    """Functions containing a profile_span/count call whose literal
    names a baseline span or counter."""
    roots: Set[str] = set()
    for mod_name in sorted(index.modules):
        module = index.modules[mod_name]
        for qname in sorted(module.functions):
            node = module.functions[qname].node
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if name not in _PROFILE_CALLS or not sub.args:
                    continue
                first = sub.args[0]
                if isinstance(first, ast.Constant) \
                        and isinstance(first.value, str) \
                        and first.value in hot_names:
                    roots.add(qname)
                    break
    return sorted(roots)


def check_hotpath(ctx: RuleContext) -> List[Finding]:
    index = ctx.index
    baseline = ctx.bench_baseline_path
    if baseline is None or not os.path.exists(baseline):
        return []
    hot_names = hot_names_from_baseline(baseline)
    if not hot_names:
        return []
    roots = _hot_roots(index, hot_names)
    if not roots:
        return []
    hot = index.loop_reachable(roots)
    findings: List[Finding] = []
    for qname in sorted(hot):
        info = index.functions.get(qname)
        if info is None:
            continue
        module = index.modules[info.module]
        findings.extend(_scan_function(
            module.path, qname, info.node, loop_hot=hot[qname]))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


class _HotScanner(ast.NodeVisitor):
    """Lexical scan of one hot function for RPR120..RPR123 patterns."""

    def __init__(self, path: str, qname: str, loop_hot: bool) -> None:
        self.path = path
        self.short = qname.rsplit(".", 1)[-1]
        self.loop_hot = loop_hot
        self.loop_depth = 0
        self.findings: List[Finding] = []

    def _where(self) -> str:
        if self.loop_depth > 0:
            return f"inside a loop of hot function {self.short}()"
        return (f"in {self.short}(), which hot callers invoke "
                "per loop iteration")

    # -- loops ---------------------------------------------------------
    def _visit_loop_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self.visit(node.iter)
            self.visit(node.target)
            body = node.body
            orelse = node.orelse
        else:
            assert isinstance(node, ast.While)
            self.visit(node.test)
            body = node.body
            orelse = node.orelse
        self.loop_depth += 1
        for stmt in body:
            self.visit(stmt)
        self.loop_depth -= 1
        for stmt in orelse:
            self.visit(stmt)

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop_stmt(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop_stmt(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop_stmt(node)

    # Nested defs run on their own profile; skip them here (they are
    # scanned as their own functions when hot).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    # Error paths are cold by definition: an allocation inside a raise
    # expression or an except handler never runs on the steady-state
    # hot path.
    def visit_Raise(self, node: ast.Raise) -> None:
        return

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        return

    # -- comprehensions (RPR122 + loop context for RPR123) -------------
    def _visit_comp(self, node: ast.expr, kind: str) -> None:
        if self.loop_depth > 0 and kind != "generator":
            self.findings.append(_finding(
                "RPR122", self.path, node.lineno, node.col_offset,
                f"{kind} comprehension allocates a fresh container "
                f"every iteration {self._where()}"))
        # The first generator's iterable is evaluated once, outside the
        # comprehension's implicit loop.
        assert isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp))
        self.visit(node.generators[0].iter)
        self.loop_depth += 1
        for pos, gen in enumerate(node.generators):
            if pos > 0:
                self.visit(gen.iter)
            self.visit(gen.target)
            for cond in gen.ifs:
                self.visit(cond)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self.loop_depth -= 1

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, "list")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comp(node, "set")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node, "dict")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node, "generator")

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "deepcopy":
            self.findings.append(_finding(
                "RPR120", self.path, node.lineno, node.col_offset,
                f"deepcopy in hot function {self.short}() — a full "
                "object-graph copy on the profiled hot path"))
        elif name == "sorted" and isinstance(func, ast.Name):
            if self.loop_depth > 0 or self.loop_hot:
                self.findings.append(_finding(
                    "RPR121", self.path, node.lineno, node.col_offset,
                    f"sorted() allocates and sorts {self._where()}"))
        elif name in _PREDICT_METHODS and isinstance(func, ast.Attribute):
            if self.loop_depth > 0:
                self.findings.append(_finding(
                    "RPR123", self.path, node.lineno, node.col_offset,
                    f"per-item model .{name}() call {self._where()}; "
                    "batch the predictions instead"))
        self.generic_visit(node)


def _scan_function(path: str, qname: str, node: FuncNode,
                   loop_hot: bool) -> List[Finding]:
    scanner = _HotScanner(path, qname, loop_hot)
    for stmt in node.body:
        scanner.visit(stmt)
    return scanner.findings
