"""Replay-safety pack: RPR110–RPR114 over the serve/digest call graph.

The serve subsystem's recovery invariant (DESIGN.md): state is a pure
function of the journaled inputs, and ``apply_tick_record`` is the only
code path that mutates :class:`SimCore` from a tick record.  These
rules machine-check that invariant across module boundaries:

* **RPR110** — any function reachable from ``serve.daemon`` /
  ``serve.recovery`` that mutates SimCore state (attribute assignment,
  in-place container mutation, or a call to a mutating SimCore method)
  outside the ``apply_tick_record`` path.  Mutating methods are
  *derived* from the AST of ``SimCore`` and ``Simulator`` themselves,
  so new mutators are covered automatically.
* **RPR111** — ``EventKind`` members missing from (or stale in) the
  declared ``WAL_EVENT_COVERAGE`` literal in ``serve/core.py``, which
  documents how replay reproduces each event's payload.
* **RPR112** — wall-clock/RNG calls reachable from digest-computing
  code (``state_digest`` / ``SimCore.digest`` / ``apply_tick_record``)
  via the call graph — the cross-function extension of RPR001/RPR002.
  Modules already policed per-file (``SIM_PACKAGES``) and the
  ``RPR002_ALLOWLIST`` instrumentation exemptions are respected.
* **RPR113** — unordered iteration (RPR003 patterns) in functions
  reachable from the digest roots but living outside the per-file
  decision packages, where iteration order still feeds the digest
  through mutation order.
* **RPR114** — ``EventKind`` members missing from (or stale in) the
  ``LINEAGE_CAUSE_SCHEMA`` literal in ``obs/lineage.py``, which
  documents which upstream events the causal-lineage collector records
  as causes for each engine event kind (the RPR111 pattern applied to
  the lineage plane).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.checks.graph import (
    MODULE_SCOPE,
    FuncNode,
    ModuleInfo,
    ProjectIndex,
)
from repro.checks.lint import (
    DECISION_PACKAGES,
    RPR002_ALLOWLIST,
    SIM_PACKAGES,
    _DATETIME_BANNED,
    _NP_RANDOM_ALLOWED,
    _SET_COMBINATORS,
    _TIME_BANNED,
    Finding,
)
from repro.checks.rules import GRAPH_RULES, RuleContext

__all__ = ["check_replay"]

#: Container methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "add", "append", "extend", "insert", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "push",
})

#: SimCore methods exempt from mutator classification: constructors
#: build fresh cores, and the snapshot serializers stash-and-restore
#: (``to_blob`` nulls the tracer around pickling, under ``finally``).
_CORE_CONSTRUCTORS = frozenset({"__init__", "genesis", "from_blob"})
_CORE_READONLY = frozenset({"to_blob"})


def _finding(code: str, path: str, line: int, col: int,
             message: str) -> Finding:
    return Finding(code=code, path=path, line=line, col=col,
                   message=message, hint=GRAPH_RULES[code][1])


def _module(index: ProjectIndex, rel: str) -> Optional[ModuleInfo]:
    return index.modules.get(f"{index.package}.{rel}")


def _is_self_rooted(node: ast.expr) -> bool:
    cur = node
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        cur = cur.value
    return isinstance(cur, ast.Name) and cur.id == "self"


def _self_mutators(cls_node: ast.ClassDef) -> Set[str]:
    """Method names that assign/mutate ``self`` state (syntactically)."""
    mutators: Set[str] = set()
    for stmt in cls_node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if _mutates_self(stmt):
            mutators.add(stmt.name)
    return mutators


def _mutates_self(func: FuncNode) -> bool:
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)) \
                    and _is_self_rooted(target):
                return True
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATING_METHODS \
                and isinstance(node.func.value, (ast.Attribute,
                                                 ast.Subscript)) \
                and _is_self_rooted(node.func.value):
            return True
    return False


def _find_class(module: Optional[ModuleInfo],
                name: str) -> Optional[ast.ClassDef]:
    if module is None or module.tree is None:
        return None
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _core_mutators(index: ProjectIndex) -> Set[str]:
    """Mutating SimCore method names, derived from the class bodies."""
    core_mod = _module(index, "serve.core")
    sim_mod = _module(index, "sim.engine")
    core_cls = _find_class(core_mod, "SimCore")
    if core_cls is None:
        return set()
    sim_cls = _find_class(sim_mod, "Simulator")
    sim_mutators = _self_mutators(sim_cls) if sim_cls is not None else set()
    mutators = _self_mutators(core_cls)
    # A SimCore method that calls a mutating Simulator method through
    # ``self.sim`` is itself a mutator (e.g. advance -> step_batch).
    for stmt in core_cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in sim_mutators \
                    and isinstance(node.func.value, ast.Attribute) \
                    and node.func.value.attr == "sim" \
                    and _is_self_rooted(node.func.value):
                mutators.add(stmt.name)
                break
    return (mutators - _CORE_CONSTRUCTORS) - _CORE_READONLY


def _is_core_expr(node: ast.expr) -> bool:
    """``core`` / ``self.core`` / ``...core`` — a SimCore reference."""
    if isinstance(node, ast.Name):
        return node.id == "core"
    if isinstance(node, ast.Attribute):
        return node.attr == "core"
    return False


# ----------------------------------------------------------------------
# RPR110
# ----------------------------------------------------------------------
def _check_rpr110(index: ProjectIndex) -> List[Finding]:
    daemon = _module(index, "serve.daemon")
    recovery = _module(index, "serve.recovery")
    if daemon is None and recovery is None:
        return []
    mutators = _core_mutators(index)
    roots: List[str] = []
    for mod in (daemon, recovery):
        if mod is None:
            continue
        roots.append(f"{mod.name}.{MODULE_SCOPE}")
        roots.extend(sorted(mod.functions))
    reachable = index.reachable(roots)
    serve_prefix = f"{index.package}.serve."
    findings: List[Finding] = []
    for qname in sorted(reachable):
        info = index.functions.get(qname)
        if info is None or not info.module.startswith(serve_prefix):
            continue
        if info.name == "apply_tick_record" or info.cls == "SimCore":
            continue  # the sanctioned mutation path and the core itself
        module = index.modules[info.module]
        findings.extend(_scan_core_mutations(module.path, qname,
                                             info.node, mutators))
    return findings


def _scan_core_mutations(path: str, qname: str, func: FuncNode,
                         mutators: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    short = qname.rsplit(".", 1)[-1]
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            base = target
            while isinstance(base, ast.Subscript):
                base = base.value
            if isinstance(base, ast.Attribute) \
                    and _is_core_expr(base.value):
                findings.append(_finding(
                    "RPR110", path, node.lineno, node.col_offset,
                    f"{short}() assigns SimCore.{base.attr} directly; "
                    "only apply_tick_record may mutate core state"))
        if not isinstance(node, ast.Call) \
                or not isinstance(node.func, ast.Attribute):
            continue
        func_attr = node.func
        if _is_core_expr(func_attr.value) and func_attr.attr in mutators:
            findings.append(_finding(
                "RPR110", path, node.lineno, node.col_offset,
                f"{short}() calls mutating SimCore.{func_attr.attr}() "
                "outside the apply_tick_record path"))
        elif func_attr.attr in _MUTATING_METHODS \
                and isinstance(func_attr.value, ast.Attribute) \
                and _is_core_expr(func_attr.value.value):
            findings.append(_finding(
                "RPR110", path, node.lineno, node.col_offset,
                f"{short}() mutates SimCore.{func_attr.value.attr} in "
                "place outside the apply_tick_record path"))
    return findings


# ----------------------------------------------------------------------
# RPR111
# ----------------------------------------------------------------------
def _event_kind_values(module: Optional[ModuleInfo]) -> Dict[str, int]:
    """EventKind member string value -> definition line."""
    cls = _find_class(module, "EventKind")
    if cls is None:
        return {}
    values: Dict[str, int] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Constant) \
                and isinstance(stmt.value.value, str):
            values[stmt.value.value] = stmt.lineno
    return values


def _coverage_literal(module: Optional[ModuleInfo],
                      name: str = "WAL_EVENT_COVERAGE",
                      ) -> Optional[Tuple[Set[str], int]]:
    if module is None or module.tree is None:
        return None
    for node in ast.walk(module.tree):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if isinstance(target, ast.Name) \
                and target.id == name \
                and isinstance(value, ast.Dict):
            keys = {k.value for k in value.keys
                    if isinstance(k, ast.Constant)
                    and isinstance(k.value, str)}
            return keys, target.lineno
    return None


def _check_rpr111(index: ProjectIndex) -> List[Finding]:
    events = _module(index, "sim.events")
    core = _module(index, "serve.core")
    if events is None or core is None:
        return []
    members = _event_kind_values(events)
    if not members:
        return []
    coverage = _coverage_literal(core)
    if coverage is None:
        return [_finding(
            "RPR111", core.path, 1, 0,
            "serve/core.py declares no WAL_EVENT_COVERAGE literal; every "
            "EventKind member needs a declared replay-payload story")]
    keys, line = coverage
    findings: List[Finding] = []
    for value in sorted(set(members) - keys):
        findings.append(_finding(
            "RPR111", core.path, line, 0,
            f"EventKind value {value!r} has no WAL_EVENT_COVERAGE "
            "entry; state its replay-payload story"))
    for value in sorted(keys - set(members)):
        findings.append(_finding(
            "RPR111", core.path, line, 0,
            f"WAL_EVENT_COVERAGE entry {value!r} matches no EventKind "
            "member; delete the stale entry"))
    return findings


# ----------------------------------------------------------------------
# RPR114
# ----------------------------------------------------------------------
def _check_rpr114(index: ProjectIndex) -> List[Finding]:
    """Every ``EventKind`` member needs a ``LINEAGE_CAUSE_SCHEMA`` entry.

    Same shape as RPR111, against the causal-lineage cause schema in
    ``obs/lineage.py``: the literal documents, per engine event kind,
    which upstream events the :class:`LineageCollector` records as
    causes.  A new EventKind without an entry means lineage silently
    misses a causal edge; a stale key documents an edge that cannot
    occur.
    """
    events = _module(index, "sim.events")
    lineage = _module(index, "obs.lineage")
    if events is None or lineage is None:
        return []
    members = _event_kind_values(events)
    if not members:
        return []
    coverage = _coverage_literal(lineage, name="LINEAGE_CAUSE_SCHEMA")
    if coverage is None:
        return [_finding(
            "RPR114", lineage.path, 1, 0,
            "obs/lineage.py declares no LINEAGE_CAUSE_SCHEMA literal; "
            "every EventKind member needs a declared cause story")]
    keys, line = coverage
    findings: List[Finding] = []
    for value in sorted(set(members) - keys):
        findings.append(_finding(
            "RPR114", lineage.path, line, 0,
            f"EventKind value {value!r} has no LINEAGE_CAUSE_SCHEMA "
            "entry; state which causes lineage records for it"))
    for value in sorted(keys - set(members)):
        findings.append(_finding(
            "RPR114", lineage.path, line, 0,
            f"LINEAGE_CAUSE_SCHEMA entry {value!r} matches no EventKind "
            "member; delete the stale entry"))
    return findings


# ----------------------------------------------------------------------
# RPR112 / RPR113: reachability from digest-computing code
# ----------------------------------------------------------------------
class _Aliases:
    """Module-level import aliases for clock/RNG detection."""

    def __init__(self, tree: ast.Module) -> None:
        self.time_aliases: Set[str] = set()
        self.time_funcs: Set[str] = set()
        self.datetime_names: Set[str] = set()
        self.datetime_modules: Set[str] = set()
        self.random_aliases: Set[str] = set()
        self.random_funcs: Set[str] = set()
        self.numpy_aliases: Set[str] = set()
        self.np_random_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        self.time_aliases.add(bound)
                    elif alias.name == "random":
                        self.random_aliases.add(bound)
                    elif alias.name == "numpy":
                        self.numpy_aliases.add(bound)
                    elif alias.name == "numpy.random":
                        self.np_random_aliases.add(
                            alias.asname or "numpy")
                    elif alias.name == "datetime":
                        self.datetime_modules.add(bound)
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "time":
                        self.time_funcs.add(bound)
                    elif node.module == "random":
                        self.random_funcs.add(bound)
                    elif node.module == "numpy" \
                            and alias.name == "random":
                        self.np_random_aliases.add(bound)
                    elif node.module == "datetime" \
                            and alias.name in ("datetime", "date"):
                        self.datetime_names.add(bound)


def _banned_call(node: ast.Call, aliases: _Aliases) -> Optional[str]:
    """Describe a wall-clock/RNG call, or None when the call is clean."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in aliases.time_funcs and func.id in _TIME_BANNED:
            return f"{func.id}() reads the wall clock"
        if func.id in aliases.random_funcs:
            return f"random.{func.id}() draws from the global RNG"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    owner = func.value
    if isinstance(owner, ast.Name):
        if owner.id in aliases.time_aliases and func.attr in _TIME_BANNED:
            return f"time.{func.attr}() reads the wall clock"
        if owner.id in aliases.random_aliases:
            return f"random.{func.attr}() draws from the global RNG"
        if owner.id in aliases.datetime_names \
                and func.attr in _DATETIME_BANNED:
            return f"datetime.{func.attr}() reads the wall clock"
        if owner.id in aliases.np_random_aliases:
            if func.attr not in _NP_RANDOM_ALLOWED:
                return (f"np.random.{func.attr}() draws from the global "
                        "NumPy RNG")
            if func.attr == "default_rng" and not node.args \
                    and not node.keywords:
                return "np.random.default_rng() without a seed"
        return None
    if isinstance(owner, ast.Attribute):
        if owner.attr == "random" and isinstance(owner.value, ast.Name) \
                and owner.value.id in aliases.numpy_aliases:
            if func.attr not in _NP_RANDOM_ALLOWED:
                return (f"np.random.{func.attr}() draws from the global "
                        "NumPy RNG")
            if func.attr == "default_rng" and not node.args \
                    and not node.keywords:
                return "np.random.default_rng() without a seed"
        if owner.attr in ("datetime", "date") \
                and isinstance(owner.value, ast.Name) \
                and owner.value.id in aliases.datetime_modules \
                and func.attr in _DATETIME_BANNED:
            return f"datetime.{owner.attr}.{func.attr}() reads the wall clock"
    return None


def _rpr002_allowlisted(ctx: RuleContext, path: str,
                        func_name: str) -> bool:
    normalized = path.replace("\\", "/")
    for suffix in sorted(RPR002_ALLOWLIST):
        functions = RPR002_ALLOWLIST[suffix]
        if normalized == suffix or normalized.endswith("/" + suffix):
            if functions is None:
                if ctx.tracker is not None:
                    ctx.tracker.mark_allowlist_used(
                        "RPR002_ALLOWLIST", suffix, None)
                return True
            if func_name in functions:
                if ctx.tracker is not None:
                    ctx.tracker.mark_allowlist_used(
                        "RPR002_ALLOWLIST", suffix, func_name)
                return True
            return False
    return False


def _digest_roots(index: ProjectIndex) -> List[str]:
    roots: List[str] = []
    core = _module(index, "serve.core")
    recovery = _module(index, "serve.recovery")
    if core is not None:
        for qname in sorted(core.functions):
            info = core.functions[qname]
            if info.name == "state_digest" or (info.cls == "SimCore"
                                               and info.name == "digest"):
                roots.append(qname)
    if recovery is not None:
        for qname in sorted(recovery.functions):
            if recovery.functions[qname].name == "apply_tick_record":
                roots.append(qname)
    return roots


def _chain(parents: Dict[str, Optional[str]], qname: str,
           index: ProjectIndex) -> str:
    chain: List[str] = []
    cur: Optional[str] = qname
    while cur is not None and len(chain) < 8:
        prefix = index.package + "."
        chain.append(cur[len(prefix):] if cur.startswith(prefix) else cur)
        cur = parents.get(cur)
    return " <- ".join(chain)


def _reachable_with_parents(index: ProjectIndex, roots: Sequence[str],
                            ) -> Dict[str, Optional[str]]:
    edges = index.call_edges()
    parents: Dict[str, Optional[str]] = {}
    queue: List[str] = []
    for root in sorted(set(roots)):
        parents[root] = None
        queue.append(root)
    while queue:
        cur = queue.pop(0)
        for callee, _site in edges.get(cur, []):
            if callee not in parents:
                parents[callee] = cur
                queue.append(callee)
    return parents


def _check_rpr112_113(ctx: RuleContext) -> List[Finding]:
    index = ctx.index
    roots = _digest_roots(index)
    if not roots:
        return []
    parents = _reachable_with_parents(index, roots)
    findings: List[Finding] = []
    alias_cache: Dict[str, _Aliases] = {}
    for qname in sorted(parents):
        info = index.functions.get(qname)
        if info is None:
            continue
        module = index.modules[info.module]
        if module.tree is None:
            continue
        package = index.package_of(info.module)
        chain = _chain(parents, qname, index)
        if package not in SIM_PACKAGES \
                and not _rpr002_allowlisted(ctx, module.path, info.name):
            if info.module not in alias_cache:
                alias_cache[info.module] = _Aliases(module.tree)
            aliases = alias_cache[info.module]
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    reason = _banned_call(node, aliases)
                    if reason is not None:
                        findings.append(_finding(
                            "RPR112", module.path, node.lineno,
                            node.col_offset,
                            f"{reason} in digest/replay-reachable code "
                            f"({chain})"))
        if package not in DECISION_PACKAGES:
            findings.extend(_scan_unordered(module.path, info.node, chain))
    return findings


def _is_unordered_expr(node: ast.expr) -> bool:
    """Hash-ordered iterables only: ``set``/``frozenset`` literals,
    constructors and combinators.  Dict views are deliberately NOT
    flagged here — dict iteration is insertion-ordered and therefore
    deterministic under replay; the stricter per-file RPR003 still
    polices them inside decision packages."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in ("set", "frozenset")
        if isinstance(func, ast.Attribute):
            if func.attr in _SET_COMBINATORS:
                return _is_unordered_expr(func.value)
    return False


def _scan_unordered(path: str, func: FuncNode, chain: str,
                    ) -> List[Finding]:
    findings: List[Finding] = []
    iters: List[ast.expr] = []
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
    for expr in iters:
        if _is_unordered_expr(expr):
            findings.append(_finding(
                "RPR113", path, expr.lineno, expr.col_offset,
                "unordered iteration in digest/replay-reachable code "
                f"({chain}); mutation order feeds the digest"))
    return findings


def check_replay(ctx: RuleContext) -> List[Finding]:
    index = ctx.index
    findings: List[Finding] = []
    findings.extend(_check_rpr110(index))
    findings.extend(_check_rpr111(index))
    findings.extend(_check_rpr114(index))
    findings.extend(_check_rpr112_113(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
