"""Architecture pack: RPR100–RPR104 over the module import graph.

The authoritative layering DAG lives in ``pyproject.toml``::

    [tool.repro.layers.allowed]
    sim = ["cluster", "obs", "workloads"]
    app = ["*"]                # top-level modules (cli, bench, ...)

    [tool.repro.layers.overrides]
    "checks.sanitizer" = ["cluster", "workloads"]

    [tool.repro.layers]
    forbidden = ["sim -> obs.report", "models -> sim"]

``allowed`` constrains *module-level* imports (lazy imports are the
sanctioned cycle-breaking escape hatch and are exempt); ``forbidden``
edges are denied at any laziness (module-level **and** lazy), which is
what gives "sim must never import serve" real teeth.  Top-level modules
(``repro/cli.py``…) form the pseudo-package ``app``.

Reading the TOML is stdlib-only: ``tomllib`` on Python 3.11+, a small
fallback parser (tables + string arrays, all this section needs) on
3.9/3.10.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checks.graph import ImportEdge, ProjectIndex
from repro.checks.lint import Finding
from repro.checks.rules import GRAPH_RULES, RuleContext

__all__ = ["LayersConfig", "check_architecture", "load_layers"]

#: Pseudo-package for top-level modules of the project package.
APP_LAYER = "app"

#: Entry-point modules (RPR104): leaves of the import DAG.
_ENTRYPOINT_MODULES = frozenset({"cli", "__main__"})


@dataclass
class LayersConfig:
    """Parsed ``[tool.repro.layers]`` section."""

    #: package -> allowed imported packages ("*" = everything).
    allowed: Dict[str, List[str]] = field(default_factory=dict)
    #: module relname -> allowed packages (overrides the package rule).
    overrides: Dict[str, List[str]] = field(default_factory=dict)
    #: "src -> dest" patterns denied at any laziness.
    forbidden: List[Tuple[str, str]] = field(default_factory=list)


# ----------------------------------------------------------------------
# TOML loading (stdlib-only)
# ----------------------------------------------------------------------
_TABLE_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*(?:#.*)?$")
_KEY_RE = re.compile(
    r"^(?P<key>\"[^\"]*\"|'[^']*'|[A-Za-z0-9_.-]+)\s*=\s*(?P<value>.*)$")
_STRING_RE = re.compile(r"\"([^\"]*)\"|'([^']*)'")


def _strip_comment(line: str) -> str:
    out: List[str] = []
    quote: Optional[str] = None
    for ch in line:
        if quote is None and ch == "#":
            break
        if ch in ("'", '"'):
            if quote is None:
                quote = ch
            elif quote == ch:
                quote = None
        out.append(ch)
    return "".join(out).rstrip()


def _mini_toml_tables(text: str) -> Dict[str, Dict[str, List[str]]]:
    """Tiny TOML subset: named tables holding string-array values.

    Handles exactly what ``[tool.repro.layers]`` uses — ``[table]``
    headers, quoted or bare keys, single- or multi-line arrays of
    strings — which keeps Python 3.9/3.10 (no ``tomllib``) working.
    """
    tables: Dict[str, Dict[str, List[str]]] = {}
    current: Optional[str] = None
    pending_key: Optional[str] = None
    pending_buf = ""
    for raw in text.splitlines():
        line = _strip_comment(raw).strip()
        if not line and pending_key is None:
            continue
        if pending_key is not None:
            pending_buf += " " + line
            if pending_buf.count("[") <= pending_buf.count("]"):
                value = [a or b for a, b in
                         _STRING_RE.findall(pending_buf)]
                if current is not None:
                    tables.setdefault(current, {})[pending_key] = value
                pending_key = None
                pending_buf = ""
            continue
        table_match = _TABLE_RE.match(line)
        if table_match is not None:
            current = table_match.group("name").strip()
            tables.setdefault(current, {})
            continue
        key_match = _KEY_RE.match(line)
        if key_match is None or current is None:
            continue
        key = key_match.group("key").strip("\"'")
        value_text = key_match.group("value").strip()
        if not value_text.startswith("["):
            continue  # only string arrays matter to the layers section
        if value_text.count("[") > value_text.count("]"):
            pending_key = key
            pending_buf = value_text
            continue
        tables.setdefault(current, {})[key] = \
            [a or b for a, b in _STRING_RE.findall(value_text)]
    return tables


def _layers_from_mapping(allowed: Dict[str, List[str]],
                         overrides: Dict[str, List[str]],
                         forbidden: List[str]) -> LayersConfig:
    config = LayersConfig(allowed=dict(allowed), overrides=dict(overrides))
    for entry in forbidden:
        parts = [p.strip() for p in entry.split("->")]
        if len(parts) == 2 and parts[0] and parts[1]:
            config.forbidden.append((parts[0], parts[1]))
    return config


def load_layers(pyproject_path: str) -> Optional[LayersConfig]:
    """Parse ``[tool.repro.layers]``; ``None`` when absent/unreadable."""
    try:
        with open(pyproject_path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return None
    allowed: Dict[str, List[str]] = {}
    overrides: Dict[str, List[str]] = {}
    forbidden: List[str] = []
    try:
        import tomllib
    except ModuleNotFoundError:
        tables = _mini_toml_tables(text)
        allowed = tables.get("tool.repro.layers.allowed", {})
        overrides = tables.get("tool.repro.layers.overrides", {})
        raw_forbidden = tables.get("tool.repro.layers", {})
        forbidden = raw_forbidden.get("forbidden", [])
    else:
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError:
            return None
        layers = data.get("tool", {}).get("repro", {}).get("layers", {})
        if not isinstance(layers, dict):
            return None
        raw_allowed = layers.get("allowed", {})
        raw_overrides = layers.get("overrides", {})
        if isinstance(raw_allowed, dict):
            allowed = {str(k): [str(x) for x in v]
                       for k, v in raw_allowed.items()
                       if isinstance(v, list)}
        if isinstance(raw_overrides, dict):
            overrides = {str(k): [str(x) for x in v]
                         for k, v in raw_overrides.items()
                         if isinstance(v, list)}
        raw = layers.get("forbidden", [])
        if isinstance(raw, list):
            forbidden = [str(x) for x in raw]
    if not allowed and not overrides and not forbidden:
        return None
    return _layers_from_mapping(allowed, overrides, forbidden)


# ----------------------------------------------------------------------
# The pack
# ----------------------------------------------------------------------
def _finding(code: str, path: str, line: int, col: int,
             message: str) -> Finding:
    return Finding(code=code, path=path, line=line, col=col,
                   message=message, hint=GRAPH_RULES[code][1])


def _layer_of(index: ProjectIndex, module: str) -> str:
    pkg = index.package_of(module)
    return pkg if pkg else APP_LAYER


def _matches(index: ProjectIndex, pattern: str, module: str) -> bool:
    """Does a forbidden-edge pattern match a module?

    Patterns are ``*``, a package name (``sim``), a dotted module
    relname (``obs.report``) or the pseudo-package ``app``.
    """
    if pattern == "*":
        return True
    if pattern == APP_LAYER:
        return _layer_of(index, module) == APP_LAYER
    rel = index.relname(module)
    return rel == pattern or rel.startswith(pattern + ".")


def check_architecture(ctx: RuleContext) -> List[Finding]:
    index = ctx.index
    findings: List[Finding] = []

    # RPR100: cycles in the module-level import graph.
    for cycle in index.find_cycles():
        head = index.modules[cycle[0]]
        chain = " -> ".join(index.relname(m) or m for m in cycle)
        findings.append(_finding(
            "RPR100", head.path, 1, 0,
            f"import cycle: {chain} (module-level imports only; break "
            "one edge or make it lazy)"))

    layers: Optional[LayersConfig] = None
    if ctx.pyproject_path is not None:
        layers = load_layers(ctx.pyproject_path)

    for mod_name in sorted(index.modules):
        module = index.modules[mod_name]
        src_layer = _layer_of(index, mod_name)
        src_rel = index.relname(mod_name)
        for edge in module.imports:
            if edge.type_checking:
                continue  # typing-only: no runtime dependency
            findings.extend(_check_edge(index, layers, module.path,
                                        src_layer, src_rel, edge))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def _check_edge(index: ProjectIndex, layers: Optional[LayersConfig],
                path: str, src_layer: str, src_rel: str,
                edge: ImportEdge) -> List[Finding]:
    findings: List[Finding] = []
    dest_module = index._edge_dest_module(edge)
    dest_rel = index.relname(dest_module)
    dest_layer = _layer_of(index, dest_module)

    # RPR103: umbrella import from inside a subpackage.
    if edge.dest == index.package and src_layer != APP_LAYER:
        what = (f"from {index.package} import {edge.name}"
                if edge.name is not None else f"import {index.package}")
        findings.append(_finding(
            "RPR103", path, edge.line, edge.col,
            f"{what!r} reaches through the top-level package from "
            f"{src_rel or edge.src}; import the defining module "
            "directly"))

    # RPR104: entry-point modules are import leaves.
    if dest_rel in _ENTRYPOINT_MODULES and src_rel not in \
            _ENTRYPOINT_MODULES:
        findings.append(_finding(
            "RPR104", path, edge.line, edge.col,
            f"{src_rel or edge.src} imports entry-point module "
            f"{dest_rel}; entry points import the library, never the "
            "reverse"))

    # RPR102: cross-package private-name import.
    private = None
    if edge.name is not None and edge.name.startswith("_") \
            and not edge.name.startswith("__"):
        private = edge.name
    elif dest_rel.rsplit(".", 1)[-1].startswith("_") \
            and not dest_rel.rsplit(".", 1)[-1].startswith("__"):
        private = dest_rel.rsplit(".", 1)[-1]
    if private is not None and src_layer != dest_layer:
        findings.append(_finding(
            "RPR102", path, edge.line, edge.col,
            f"{src_rel or edge.src} imports private name {private!r} "
            f"from package {dest_layer!r}; cross-package access must "
            "use the public API"))

    if layers is None:
        return findings

    # Forbidden edges: any laziness.
    for src_pat, dest_pat in layers.forbidden:
        if _matches(index, src_pat, edge.src) \
                and _matches(index, dest_pat, dest_module):
            findings.append(_finding(
                "RPR101", path, edge.line, edge.col,
                f"forbidden dependency: {src_rel or edge.src} -> "
                f"{dest_rel or dest_module} (denied by "
                f"'{src_pat} -> {dest_pat}' in [tool.repro.layers], "
                "even for lazy imports)"))
            break

    # Allowed DAG: module-level edges only; lazy imports are the
    # sanctioned escape hatch for deliberate cycles.
    if edge.lazy:
        return findings
    if dest_module == index.package:
        return findings  # umbrella import: RPR103's domain
    if src_layer == dest_layer:
        return findings
    granted: Optional[List[str]] = layers.overrides.get(src_rel)
    if granted is None:
        granted = layers.allowed.get(src_layer)
    if granted is None:
        return findings  # undeclared package: unconstrained
    if "*" in granted or dest_layer in granted:
        return findings
    findings.append(_finding(
        "RPR101", path, edge.line, edge.col,
        f"layering violation: {src_rel or edge.src} (package "
        f"{src_layer!r}) imports {dest_rel or dest_module} (package "
        f"{dest_layer!r}); allowed for {src_layer!r}: "
        f"{sorted(granted)}"))
    return findings
