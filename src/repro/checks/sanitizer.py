"""Runtime simulation-state sanitizer.

:class:`SimSanitizer` is the dynamic half of :mod:`repro.checks`: where
the linter vets the *source*, the sanitizer vets the *running state*.
Enabled via ``Simulator(sanitize=True)`` (CLI ``--sanitize``), it is
invoked by the engine after every event dispatch and after every
scheduling pass, and asserts the invariants every reported number relies
on:

* **Allocation conservation** — every GPU hosts at most
  :data:`~repro.cluster.gpu.MAX_RESIDENTS` jobs within its memory
  capacity; a running job's GPU set has no double-bound device and every
  device actually hosts it; every resident on the main cluster has
  engine-side run state.
* **Monotone clock** — the engine's event clock never rewinds.
* **Legal lifecycle transitions** — job status changes follow the
  :data:`ALLOWED_TRANSITIONS` state machine (including the faults
  package's CRASHED/FAILED states), and RUNNING/PROFILING statuses agree
  with the engine's run-state table.
* **Queue consistency** — no duplicates in the scheduler queue, no
  finished/failed/running entries.
* **Fault-flag coherence** — an unhealthy GPU hosts nothing, node and
  GPU health flags agree, straggler factors stay in ``(0, 1]``.

The sanitizer is strictly read-only: a sanitized run is bit-identical to
an unsanitized one on the same seed (guarded by tests).  Violations raise
:class:`SanitizerError` with a message precise enough to debug from.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet

from repro.cluster.gpu import MAX_RESIDENTS
from repro.workloads.job import JobStatus

if TYPE_CHECKING:  # pragma: no cover - engine imports the sanitizer lazily
    from repro.sim.engine import Simulator
    from repro.sim.events import Event

__all__ = ["ALLOWED_TRANSITIONS", "SanitizerError", "SimSanitizer"]

#: Tolerance for floating-point accounting (memory sums, clock compares).
_EPS = 1e-6

#: Legal observable status transitions between two sanitizer checks.
#: Checks run after every event dispatch and after every scheduling pass,
#: so a delta spans at most one pass; compound moves inside one pass
#: (e.g. Tiresias' stop+restart) collapse to a self-transition, which is
#: always legal.  PROFILING->RUNNING covers Lucid promoting a job whose
#: profiling run was stopped and restarted on the main cluster within a
#: single pass.
ALLOWED_TRANSITIONS: Dict[JobStatus, FrozenSet[JobStatus]] = {
    JobStatus.SUBMITTED: frozenset({JobStatus.PENDING}),
    JobStatus.PENDING: frozenset({JobStatus.RUNNING, JobStatus.PROFILING}),
    JobStatus.RUNNING: frozenset({
        JobStatus.PENDING, JobStatus.PREEMPTED, JobStatus.FINISHED,
        JobStatus.CRASHED, JobStatus.FAILED}),
    JobStatus.PROFILING: frozenset({
        JobStatus.PENDING, JobStatus.PREEMPTED, JobStatus.RUNNING,
        JobStatus.FINISHED, JobStatus.CRASHED, JobStatus.FAILED}),
    JobStatus.PREEMPTED: frozenset({JobStatus.RUNNING,
                                    JobStatus.PROFILING}),
    JobStatus.CRASHED: frozenset({JobStatus.PENDING}),
    JobStatus.FINISHED: frozenset(),
    JobStatus.FAILED: frozenset(),
}

#: Statuses a job may hold while present in the scheduler's pending queue.
_QUEUEABLE = frozenset({JobStatus.SUBMITTED, JobStatus.PENDING,
                        JobStatus.PREEMPTED, JobStatus.CRASHED})


class SanitizerError(AssertionError):
    """A simulation-state invariant was violated."""


class SimSanitizer:
    """State-invariant checker bound to one :class:`Simulator`.

    Attributes
    ----------
    checks_run:
        Number of full invariant sweeps performed (for tests and the CLI
        summary line).
    """

    def __init__(self, engine: "Simulator") -> None:
        self._engine = engine
        self._last_now = engine.now
        self._last_status: Dict[int, JobStatus] = {
            job_id: job.status for job_id, job in engine.jobs.items()}
        self.checks_run = 0

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def after_dispatch(self, event: "Event") -> None:
        """Sweep all invariants after one event was applied."""
        self._sweep(context=f"after {event.kind.value} event "
                            f"(job {event.job_id})")

    def after_schedule(self) -> None:
        """Sweep all invariants after one scheduling pass."""
        self._sweep(context="after scheduling pass")

    # ------------------------------------------------------------------
    # Invariant sweeps
    # ------------------------------------------------------------------
    def _sweep(self, context: str) -> None:
        self.checks_run += 1
        now = self._engine.now
        self._check_clock(now, context)
        self._check_allocation(context)
        self._check_lifecycle(context)
        self._check_queue(context)
        self._check_fault_flags(context)

    def _fail(self, context: str, message: str) -> None:
        raise SanitizerError(
            f"state invariant violated at t={self._engine.now:.3f}s "
            f"{context}: {message}")

    def _check_clock(self, now: float, context: str) -> None:
        if now < self._last_now - _EPS:
            self._fail(context,
                       f"event clock rewound from {self._last_now:.6f}s "
                       f"to {now:.6f}s")
        self._last_now = max(self._last_now, now)

    def _check_allocation(self, context: str) -> None:
        engine = self._engine
        # Per-device invariants on the main cluster.
        for gpu in engine.cluster.gpus:
            if gpu.n_residents > MAX_RESIDENTS:
                self._fail(context,
                           f"GPU {gpu.gpu_id} hosts {gpu.n_residents} jobs "
                           f"(max {MAX_RESIDENTS}): {sorted(gpu.residents)}")
            if gpu.memory_used_mb > gpu.memory_mb + _EPS:
                self._fail(context,
                           f"GPU {gpu.gpu_id} memory oversubscribed: "
                           f"{gpu.memory_used_mb:.0f} MB reserved > "
                           f"{gpu.memory_mb:.0f} MB capacity")
            for job_id in gpu.residents:
                if job_id not in engine.run_states:
                    self._fail(context,
                               f"GPU {gpu.gpu_id} hosts job {job_id} which "
                               "has no run state (leaked allocation)")
        # Per-run-state invariants (covers profiler-cluster GPUs too).
        for job_id, state in engine.run_states.items():
            seen_devices = set()
            for gpu in state.gpus:
                if gpu.gpu_id in seen_devices:
                    self._fail(context,
                               f"job {job_id} double-binds GPU "
                               f"{gpu.gpu_id}")
                seen_devices.add(gpu.gpu_id)
                if not gpu.hosts(job_id):
                    self._fail(context,
                               f"job {job_id} claims GPU {gpu.gpu_id} but "
                               "is not attached to it")
            job = engine.jobs[job_id]
            if len(state.gpus) != job.gpu_num:
                self._fail(context,
                           f"job {job_id} holds {len(state.gpus)} GPUs but "
                           f"requested {job.gpu_num}")

    def _check_lifecycle(self, context: str) -> None:
        engine = self._engine
        for job_id, job in engine.jobs.items():
            previous = self._last_status[job_id]
            current = job.status
            if current is not previous:
                if current not in ALLOWED_TRANSITIONS[previous]:
                    self._fail(context,
                               f"job {job_id} made an illegal "
                               f"{previous.value.upper()} -> "
                               f"{current.value.upper()} transition")
                self._last_status[job_id] = current
            executing = job_id in engine.run_states
            if executing and current not in (JobStatus.RUNNING,
                                             JobStatus.PROFILING):
                self._fail(context,
                           f"job {job_id} is {current.value} but still "
                           "holds GPUs (run state present)")
            if not executing and current in (JobStatus.RUNNING,
                                             JobStatus.PROFILING):
                self._fail(context,
                           f"job {job_id} is {current.value} but has no "
                           "run state (lost allocation)")

    def _check_queue(self, context: str) -> None:
        queue = getattr(self._engine.scheduler, "queue", None)
        if queue is None:
            return
        seen = set()
        for job in queue:
            if job.job_id in seen:
                self._fail(context,
                           f"job {job.job_id} queued twice (would be "
                           "scheduled twice)")
            seen.add(job.job_id)
            if job.status not in _QUEUEABLE:
                self._fail(context,
                           f"job {job.job_id} is {job.status.value} but "
                           "still sits in the pending queue")
            if job.job_id in self._engine.run_states:
                self._fail(context,
                           f"job {job.job_id} is both queued and executing")

    def _check_fault_flags(self, context: str) -> None:
        for node in self._engine.cluster.nodes:
            gpu_health = [gpu.healthy for gpu in node.gpus]
            if node.healthy and not all(gpu_health):
                self._fail(context,
                           f"node {node.node_id} is healthy but has "
                           "unhealthy GPUs")
            if not node.healthy and any(gpu_health):
                self._fail(context,
                           f"node {node.node_id} is down but has healthy "
                           "GPUs")
            for gpu in node.gpus:
                if not gpu.healthy and gpu.residents:
                    self._fail(context,
                               f"failed GPU {gpu.gpu_id} still hosts jobs "
                               f"{sorted(gpu.residents)}")
                if not 0.0 < gpu.fault_slow <= 1.0:
                    self._fail(context,
                               f"GPU {gpu.gpu_id} has out-of-range "
                               f"straggler factor {gpu.fault_slow!r}")

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line report for the CLI."""
        return f"sanitizer: {self.checks_run} invariant sweeps, all clean"
