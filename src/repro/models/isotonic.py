"""Pool Adjacent Violators (PAV) isotonic regression.

Used by Lucid's System Tuner (§3.6.1) to pose monotonic constraints on
learned GA²M shape functions, following Ayer et al. (1955).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def isotonic_fit(y, weights=None, increasing: bool = True) -> np.ndarray:
    """Weighted isotonic regression of a sequence.

    Parameters
    ----------
    y:
        Values to regress, in their natural (x-sorted) order.
    weights:
        Non-negative sample weights (default: uniform).
    increasing:
        Fit a non-decreasing sequence when ``True``, non-increasing
        otherwise.

    Returns
    -------
    The monotone sequence minimizing the weighted squared error.
    """
    values = np.asarray(y, dtype=float).ravel()
    if values.size == 0:
        return values.copy()
    if weights is None:
        w = np.ones_like(values)
    else:
        w = np.asarray(weights, dtype=float).ravel()
        if w.shape != values.shape:
            raise ValueError("weights must match y in length")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
    if not increasing:
        return -isotonic_fit(-values, weights=w, increasing=True)

    # Pool adjacent violators with a block stack.
    means = []   # block means
    wsums = []   # block weights
    sizes = []   # block lengths
    for value, weight in zip(values, w):
        means.append(value)
        wsums.append(weight)
        sizes.append(1)
        # Merge while the monotonicity constraint is violated.
        while len(means) > 1 and means[-2] > means[-1]:
            m2, w2, s2 = means.pop(), wsums.pop(), sizes.pop()
            m1, w1, s1 = means.pop(), wsums.pop(), sizes.pop()
            total_w = w1 + w2
            merged = (m1 * w1 + m2 * w2) / total_w if total_w > 0 else (m1 + m2) / 2
            means.append(merged)
            wsums.append(total_w)
            sizes.append(s1 + s2)
    out = np.empty_like(values)
    pos = 0
    for mean, size in zip(means, sizes):
        out[pos:pos + size] = mean
        pos += size
    return out


class IsotonicRegressor:
    """Monotone piecewise-constant regression of ``y`` on a scalar ``x``.

    A thin estimator wrapper over :func:`isotonic_fit` so the isotonic
    family plugs into the shared attribution machinery
    (:mod:`repro.models.attrib`): ``fit`` sorts by ``x`` and pools, and
    ``predict`` steps through the fitted knots (clamping outside the
    training range).
    """

    def __init__(self, increasing: bool = True) -> None:
        self.increasing = increasing
        self.x_: Optional[np.ndarray] = None
        self.y_: Optional[np.ndarray] = None
        #: Weighted mean of the fitted values — the attribution bias.
        self.mean_: float = 0.0

    def fit(self, x, y, weights=None) -> "IsotonicRegressor":
        xs = np.asarray(x, dtype=float).ravel()
        ys = np.asarray(y, dtype=float).ravel()
        if xs.shape != ys.shape:
            raise ValueError("x and y must have the same length")
        if xs.size == 0:
            raise ValueError("cannot fit on empty data")
        if weights is None:
            w = np.ones_like(xs)
        else:
            w = np.asarray(weights, dtype=float).ravel()
            if w.shape != xs.shape:
                raise ValueError("weights must match x in length")
        order = np.argsort(xs, kind="stable")
        self.x_ = xs[order]
        self.y_ = isotonic_fit(ys[order], weights=w[order],
                               increasing=self.increasing)
        self.mean_ = float(np.average(self.y_, weights=w[order]))
        return self

    def predict(self, x) -> np.ndarray:
        if self.x_ is None or self.y_ is None:
            raise RuntimeError("model is not fitted")
        xs = np.asarray(x, dtype=float).ravel()
        idx = np.clip(np.searchsorted(self.x_, xs, side="right") - 1,
                      0, len(self.x_) - 1)
        return self.y_[idx]

    def attribute(self, x, feature_name: str = "x"):
        """Single-term :class:`~repro.models.attrib.Attribution`."""
        from repro.models.attrib import attribute_isotonic

        return attribute_isotonic(self, x, feature_name=feature_name)


def is_monotonic(y, increasing: bool = True, atol: float = 1e-12) -> bool:
    """Check whether a sequence is monotone in the given direction."""
    values = np.asarray(y, dtype=float).ravel()
    if values.size <= 1:
        return True
    diffs = np.diff(values)
    if increasing:
        return bool(np.all(diffs >= -atol))
    return bool(np.all(diffs <= atol))
