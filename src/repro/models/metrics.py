"""Evaluation metrics for the model substrate (Table 7 reports MAE and R²)."""

from __future__ import annotations

import numpy as np


def _as_1d(a) -> np.ndarray:
    arr = np.asarray(a, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("metric input must be non-empty")
    return arr


def mae(y_true, y_pred) -> float:
    """Mean absolute error (lower is better)."""
    yt, yp = _as_1d(y_true), _as_1d(y_pred)
    if yt.shape != yp.shape:
        raise ValueError(f"shape mismatch: {yt.shape} vs {yp.shape}")
    return float(np.mean(np.abs(yt - yp)))


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    yt, yp = _as_1d(y_true), _as_1d(y_pred)
    if yt.shape != yp.shape:
        raise ValueError(f"shape mismatch: {yt.shape} vs {yp.shape}")
    return float(np.sqrt(np.mean((yt - yp) ** 2)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination (higher is better).

    Matches the standard definition: ``1 - SS_res / SS_tot``; a constant
    predictor scores 0, worse-than-constant predictors score negative.
    """
    yt, yp = _as_1d(y_true), _as_1d(y_pred)
    if yt.shape != yp.shape:
        raise ValueError(f"shape mismatch: {yt.shape} vs {yp.shape}")
    ss_res = float(np.sum((yt - yp) ** 2))
    ss_tot = float(np.sum((yt - yt.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def accuracy(y_true, y_pred) -> float:
    """Classification accuracy."""
    yt = np.asarray(y_true).ravel()
    yp = np.asarray(y_pred).ravel()
    if yt.shape != yp.shape:
        raise ValueError(f"shape mismatch: {yt.shape} vs {yp.shape}")
    if yt.size == 0:
        raise ValueError("metric input must be non-empty")
    return float(np.mean(yt == yp))


def confusion_matrix(y_true, y_pred, n_classes: int = None) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true class i predicted as j."""
    yt = np.asarray(y_true, dtype=int).ravel()
    yp = np.asarray(y_pred, dtype=int).ravel()
    if yt.shape != yp.shape:
        raise ValueError(f"shape mismatch: {yt.shape} vs {yp.shape}")
    k = n_classes if n_classes is not None else int(max(yt.max(), yp.max())) + 1
    out = np.zeros((k, k), dtype=int)
    np.add.at(out, (yt, yp), 1)
    return out
