"""Interpretable-model substrate (mini-Primo).

From-scratch implementations of every learner the paper uses or compares
against: CART decision trees with minimal cost-complexity pruning, random
forests, gradient boosting (LightGBM/XGBoost stand-ins), GA²M additive
models, a numpy MLP, PAV isotonic regression, Levenshtein distance and
affinity propagation.
"""

from repro.models.attrib import (
    Attribution,
    attribute_boosting,
    attribute_forest,
    attribute_gam,
    attribute_isotonic,
    attribute_model,
    attribute_tree,
)
from repro.models.boosting import (
    GradientBoostingRegressor,
    lightgbm_like,
    xgboost_like,
)
from repro.models.encoding import (
    LabelEncoder,
    hourly_series,
    rolling_mean,
    rolling_median,
    shift,
    soft_sum,
    throughput_feature_table,
    time_features,
)
from repro.models.forest import RandomForestClassifier, RandomForestRegressor
from repro.models.gam import (
    GA2MRegressor,
    GlobalExplanation,
    InteractionFunction,
    LocalExplanation,
    ShapeFunction,
)
from repro.models.isotonic import IsotonicRegressor, is_monotonic, isotonic_fit
from repro.models.metrics import accuracy, confusion_matrix, mae, r2_score, rmse
from repro.models.nn import MLPRegressor
from repro.models.text import (
    AffinityPropagation,
    cluster_job_names,
    levenshtein,
    levenshtein_similarity_matrix,
)
from repro.models.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    TreeNode,
)

__all__ = [
    "Attribution",
    "attribute_boosting",
    "attribute_forest",
    "attribute_gam",
    "attribute_isotonic",
    "attribute_model",
    "attribute_tree",
    "IsotonicRegressor",
    "GradientBoostingRegressor",
    "lightgbm_like",
    "xgboost_like",
    "LabelEncoder",
    "hourly_series",
    "rolling_mean",
    "rolling_median",
    "shift",
    "soft_sum",
    "throughput_feature_table",
    "time_features",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "GA2MRegressor",
    "GlobalExplanation",
    "InteractionFunction",
    "LocalExplanation",
    "ShapeFunction",
    "is_monotonic",
    "isotonic_fit",
    "accuracy",
    "confusion_matrix",
    "mae",
    "r2_score",
    "rmse",
    "MLPRegressor",
    "AffinityPropagation",
    "cluster_job_names",
    "levenshtein",
    "levenshtein_similarity_matrix",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "TreeNode",
]
