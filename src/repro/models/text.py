"""Job-name featurization: Levenshtein distance and affinity propagation.

The Workload Estimate Model handles "extremely sparse and high-dimensional
features like job names" by converting them with Levenshtein distance and
bucketizing similar names with affinity propagation (§3.5.3, citing
Frey & Dueck 2007).  Recurring hyper-parameter-search jobs differ only in
run suffixes, so edit-distance clustering recovers the template structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np


def levenshtein(a: str, b: str) -> int:
    """Edit distance between two strings (insert/delete/substitute = 1).

    Row-vectorized DP: substitutions and deletions are elementwise minima
    over the previous row; the sequential insertion dependency
    ``c[j] = min(c[j], c[j-1] + 1)`` is resolved in closed form as
    ``min_k<=j (base[k] + (j - k))`` via a running minimum of
    ``base - index``.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    a_codes = np.frombuffer(a.encode("utf-8", "replace"), dtype=np.uint8)
    b_codes = np.frombuffer(b.encode("utf-8", "replace"), dtype=np.uint8)
    n = len(b_codes)
    idx = np.arange(n + 1)
    row = idx.astype(np.int64)
    base = np.empty(n + 1, dtype=np.int64)
    for i, ca in enumerate(a_codes, start=1):
        base[0] = i
        np.minimum(row[:-1] + (b_codes != ca), row[1:] + 1, out=base[1:])
        row = np.minimum.accumulate(base - idx) + idx
    return int(row[-1])


def levenshtein_distance_matrix(names: Sequence[str]) -> np.ndarray:
    """All-pairs edit distances, batch-vectorized.

    For each reference string the DP advances one reference character per
    step against *all* other strings at once (a padded uint8 matrix), so
    the inner work is numpy row operations instead of per-pair Python
    loops — the difference between seconds and minutes at a few hundred
    unique job names.
    """
    n = len(names)
    encoded = [np.frombuffer(s.encode("utf-8", "replace"), dtype=np.uint8)
               for s in names]
    lens = np.array([len(e) for e in encoded], dtype=np.int64)
    max_len = int(lens.max()) if n else 0
    padded = np.zeros((n, max_len), dtype=np.uint8)  # 0 never matches text
    for i, enc in enumerate(encoded):
        padded[i, : len(enc)] = enc
    idx = np.arange(max_len + 1, dtype=np.int64)
    out = np.zeros((n, n), dtype=np.int64)
    rows = np.arange(n)
    for i in range(n):
        ref = encoded[i]
        if ref.size == 0:
            out[i] = lens
            continue
        row = np.tile(idx, (n, 1))
        base = np.empty_like(row)
        for step, ch in enumerate(ref, start=1):
            base[:, 0] = step
            np.minimum(row[:, :-1] + (padded != ch), row[:, 1:] + 1,
                       out=base[:, 1:])
            row = np.minimum.accumulate(base - idx, axis=1) + idx
        out[i] = row[rows, lens]
    return out


def levenshtein_similarity_matrix(names: Sequence[str]) -> np.ndarray:
    """Negative normalized edit distance between all name pairs.

    Affinity propagation maximizes similarity, so distances are negated;
    normalizing by the longer string keeps scales comparable across short
    and long names.
    """
    n = len(names)
    if n == 0:
        return np.zeros((0, 0))
    distances = levenshtein_distance_matrix(names).astype(float)
    lens = np.array([max(len(s), 1) for s in names], dtype=float)
    longer = np.maximum(lens[:, None], lens[None, :])
    sim = -distances / longer
    np.fill_diagonal(sim, 0.0)
    return sim


class AffinityPropagation:
    """Affinity propagation clustering (Frey & Dueck, Science 2007).

    Parameters
    ----------
    damping:
        Message damping factor in [0.5, 1).
    max_iter, convergence_iter:
        Iteration budget and stability window.
    preference:
        Self-similarity; lower values yield fewer exemplars.  Defaults to
        the median of the off-diagonal similarities.
    """

    def __init__(self, damping: float = 0.7, max_iter: int = 200,
                 convergence_iter: int = 15,
                 preference: Optional[float] = None) -> None:
        if not 0.5 <= damping < 1.0:
            raise ValueError("damping must be in [0.5, 1)")
        self.damping = damping
        self.max_iter = max_iter
        self.convergence_iter = convergence_iter
        self.preference = preference
        self.labels_: Optional[np.ndarray] = None
        self.exemplars_: Optional[np.ndarray] = None

    def fit(self, similarity: np.ndarray) -> "AffinityPropagation":
        S = np.array(similarity, dtype=float)
        if S.ndim != 2 or S.shape[0] != S.shape[1]:
            raise ValueError("similarity must be a square matrix")
        n = S.shape[0]
        if n == 0:
            raise ValueError("empty similarity matrix")
        if n == 1:
            self.labels_ = np.zeros(1, dtype=int)
            self.exemplars_ = np.zeros(1, dtype=int)
            return self
        pref = self.preference
        if pref is None:
            off_diag = S[~np.eye(n, dtype=bool)]
            pref = float(np.median(off_diag))
        np.fill_diagonal(S, pref)
        # Tiny deterministic jitter breaks ties (as in the reference impl).
        rng = np.random.default_rng(0)
        S = S + 1e-12 * rng.standard_normal((n, n)) * (np.abs(S).max() + 1e-12)

        A = np.zeros((n, n))  # availabilities
        R = np.zeros((n, n))  # responsibilities
        stable_rounds = 0
        last_exemplars: Optional[np.ndarray] = None
        for _ in range(self.max_iter):
            # Responsibilities.
            AS = A + S
            idx_max = np.argmax(AS, axis=1)
            first_max = AS[np.arange(n), idx_max]
            AS[np.arange(n), idx_max] = -np.inf
            second_max = AS.max(axis=1)
            R_new = S - first_max[:, None]
            R_new[np.arange(n), idx_max] = S[np.arange(n), idx_max] - second_max
            R = self.damping * R + (1 - self.damping) * R_new
            # Availabilities.
            Rp = np.maximum(R, 0.0)
            np.fill_diagonal(Rp, R.diagonal())
            col_sums = Rp.sum(axis=0)
            A_new = np.minimum(0.0, col_sums[None, :] - Rp)
            np.fill_diagonal(A_new, col_sums - Rp.diagonal())
            A = self.damping * A + (1 - self.damping) * A_new

            exemplars = np.flatnonzero(np.diag(A + R) > 0)
            if last_exemplars is not None and np.array_equal(exemplars,
                                                             last_exemplars):
                stable_rounds += 1
                if stable_rounds >= self.convergence_iter and exemplars.size:
                    break
            else:
                stable_rounds = 0
            last_exemplars = exemplars

        if last_exemplars is None or last_exemplars.size == 0:
            # Degenerate case: everything in one cluster around the best row.
            exemplar = int(np.argmax(S.sum(axis=1)))
            self.exemplars_ = np.array([exemplar])
            self.labels_ = np.zeros(n, dtype=int)
            return self
        exemplars = last_exemplars
        labels = np.argmax(S[:, exemplars], axis=1)
        labels[exemplars] = np.arange(exemplars.size)
        self.labels_ = labels.astype(int)
        self.exemplars_ = exemplars
        return self


def cluster_job_names(names: Sequence[str],
                      max_unique: int = 400) -> Dict[str, int]:
    """Bucketize job names into dense integer cluster ids.

    Unique names are clustered by affinity propagation over Levenshtein
    similarity; the mapping covers every input name.  When the unique-name
    population exceeds ``max_unique``, clustering runs on the most frequent
    names and the remainder is assigned to its nearest exemplar, keeping
    the O(n²) similarity computation bounded.
    """
    unique: List[str] = []
    counts: Dict[str, int] = {}
    for name in names:
        if name not in counts:
            unique.append(name)
        counts[name] = counts.get(name, 0) + 1
    if not unique:
        return {}
    if len(unique) == 1:
        return {unique[0]: 0}

    core = sorted(unique, key=lambda n: -counts[n])[:max_unique]
    sim = levenshtein_similarity_matrix(core)
    ap = AffinityPropagation().fit(sim)
    mapping = {name: int(label) for name, label in zip(core, ap.labels_)}
    exemplars = [core[i] for i in ap.exemplars_]
    ex_lens = [len(e) for e in exemplars]
    for name in unique:
        if name in mapping:
            continue
        best, best_dist = 0, float("inf")
        for pos, (exemplar, ex_len) in enumerate(zip(exemplars, ex_lens)):
            dist = levenshtein(name, exemplar) \
                / max(len(name), ex_len, 1)
            if dist < best_dist:
                best, best_dist = pos, dist
        mapping[name] = best
    return mapping
