"""Feature attribution for the interpretable model family.

Lucid's pitch (§3.5, Figure 7) is that every scheduling decision flows
through *transparent* models, so an operator can always ask "why did the
model say that?".  This module gives that question a uniform answer: a
single :class:`Attribution` record — per-feature contributions plus a bias
and the predicted value — computable for every learner in
:mod:`repro.models`:

* **Decision-path contributions** for CART trees, random forests and
  gradient boosting (Saabas-style): walking root→leaf, the change in the
  node value across each split is credited to the split feature, so
  ``bias + sum(contributions) == prediction`` *exactly* (up to float
  round-off).  Forest attributions average per-tree attributions;
  boosting attributions telescope across stages with the learning rate
  folded in.  For classifiers the attributed quantity is the *expected
  class value* ``sum_c class_c * P(class_c)`` (linear in the leaf
  distribution, so ensemble averaging stays exact), or ``P(class_k)``
  when ``class_index`` is given.
* **Per-term contributions** for GA²M (each shape/interaction function's
  score is already an additive term — Figure 7c) and isotonic regression
  (a single-feature model: the one term is the deviation of the fitted
  step function from its training mean).

Everything here is duck-typed on the model objects' public attributes, so
this module imports **no** model modules (the model classes lazily import
this one from their ``attribute()`` convenience methods).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Attribution",
    "attribute_tree",
    "attribute_forest",
    "attribute_boosting",
    "attribute_gam",
    "attribute_isotonic",
    "attribute_model",
]


@dataclass(frozen=True)
class Attribution:
    """One explained prediction: ``predicted = bias + sum(terms)``.

    Attributes
    ----------
    model:
        Short model-family tag (``"tree"``, ``"forest"``, ``"boosting"``,
        ``"gam"``, ``"isotonic"``) for rendering and serialization.
    predicted:
        The model's prediction for this input.
    bias:
        The input-independent baseline (root value, intercept, training
        mean — family-specific, see the module docstring).
    features:
        Names of the raw input features, in input order.
    values:
        The raw input vector, aligned with ``features``.
    terms:
        ``(term name, contribution)`` pairs.  Term names are usually
        feature names; GA²M interaction terms use the pseudo-name
        ``"a x b"``.  A feature can appear at most once — path
        attributions fold repeated splits on one feature together.
    note:
        Free-form caveat attached by the producer (e.g. which branch of a
        prediction ladder actually served the estimate).
    """

    model: str
    predicted: float
    bias: float
    features: Tuple[str, ...] = ()
    values: Tuple[float, ...] = ()
    terms: Tuple[Tuple[str, float], ...] = ()
    note: str = ""

    # ------------------------------------------------------------------
    # Invariant
    # ------------------------------------------------------------------
    def contribution_sum(self) -> float:
        return float(sum(score for _, score in self.terms))

    def residual(self) -> float:
        """``predicted - bias - sum(terms)`` — zero for exact methods."""
        return self.predicted - self.bias - self.contribution_sum()

    def check(self, tol: float = 1e-9) -> bool:
        """Whether contributions sum to the prediction within ``tol``."""
        return abs(self.residual()) <= tol

    # ------------------------------------------------------------------
    # Queries & rendering
    # ------------------------------------------------------------------
    def value_of(self, feature: str) -> float:
        """The raw input value of one named feature."""
        try:
            return self.values[self.features.index(feature)]
        except ValueError:
            raise KeyError(f"unknown feature {feature!r}; "
                           f"known: {list(self.features)}") from None

    def top(self, k: Optional[int] = None) -> List[Tuple[str, float]]:
        """Terms sorted by contribution magnitude, largest first."""
        ordered = sorted(self.terms, key=lambda t: (-abs(t[1]), t[0]))
        return list(ordered if k is None else ordered[:k])

    def render(self, k: Optional[int] = 4) -> str:
        """One-line human rendering, largest contributions first.

        E.g. ``"0.83 <- +0.31 gpu_util, -0.12 hour (bias 0.64)"``.
        """
        shown = self.top(k)
        parts = ", ".join(f"{score:+.3g} {name}" for name, score in shown)
        omitted = len(self.terms) - len(shown)
        if omitted > 0:
            parts += f", ... {omitted} more"
        if not parts:
            parts = "no contributing terms"
        return f"{self.predicted:.3g} <- {parts} (bias {self.bias:.3g})"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "model": self.model,
            "predicted": self.predicted,
            "bias": self.bias,
            "features": list(self.features),
            "values": [_jsonable(v) for v in self.values],
            "terms": [[name, score] for name, score in self.terms],
        }
        if self.note:
            out["note"] = self.note
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Attribution":
        return cls(
            model=str(data["model"]),
            predicted=float(data["predicted"]),
            bias=float(data["bias"]),
            features=tuple(str(f) for f in data.get("features", ())),
            values=tuple(float("nan") if v is None else float(v)
                         for v in data.get("values", ())),
            terms=tuple((str(name), float(score))
                        for name, score in data.get("terms", ())),
            note=str(data.get("note", "")),
        )


def _jsonable(value: float) -> Optional[float]:
    """NaN is not valid JSON; GA²M interaction values use it as "n/a"."""
    return None if math.isnan(value) else value


def _names(feature_names: Optional[Sequence[str]], n: int) -> List[str]:
    if feature_names is None:
        return [f"x{i}" for i in range(n)]
    names = [str(name) for name in feature_names]
    if len(names) != n:
        raise ValueError(f"expected {n} feature names, got {len(names)}")
    return names


def _as_vector(x: Any) -> "np.ndarray[Any, Any]":
    vec = np.asarray(x, dtype=float).ravel()
    return vec


# ----------------------------------------------------------------------
# Decision-path attribution (trees, forests, boosting)
# ----------------------------------------------------------------------
def _node_scalar(node: Any, classes: Optional["np.ndarray[Any, Any]"],
                 class_index: Optional[int]) -> float:
    """Collapse one tree node's value vector to the attributed scalar."""
    value = np.asarray(node.value, dtype=float)
    if classes is None:
        return float(value[0])
    probs = value / value.sum()
    if class_index is not None:
        return float(probs[class_index])
    return float(np.dot(np.asarray(classes, dtype=float), probs))


def attribute_tree(model: Any, x: Any,
                   feature_names: Optional[Sequence[str]] = None,
                   class_index: Optional[int] = None) -> Attribution:
    """Saabas decision-path attribution of one CART prediction.

    Walking root→leaf, each split's change in node value is credited to
    the split feature; the bias is the root value.  For classifiers
    (detected via ``classes_``) the node value is the expected class
    value, or ``P(classes_[class_index])`` when ``class_index`` is set.
    """
    root = model.root_
    if root is None:
        raise RuntimeError("model is not fitted")
    vec = _as_vector(x)
    names = _names(feature_names, int(model.n_features_))
    classes = getattr(model, "classes_", None)
    if class_index is not None:
        if classes is None:
            raise ValueError("class_index is only valid for classifiers")
        if not 0 <= class_index < len(classes):
            raise ValueError(f"class_index {class_index} out of range")

    contributions: Dict[int, float] = {}
    node = root
    bias = _node_scalar(node, classes, class_index)
    current = bias
    while not node.is_leaf:
        child = (node.left if vec[node.feature] <= node.threshold
                 else node.right)
        child_value = _node_scalar(child, classes, class_index)
        contributions[node.feature] = (contributions.get(node.feature, 0.0)
                                       + child_value - current)
        current = child_value
        node = child

    terms = tuple((names[f], contributions[f])
                  for f in sorted(contributions))
    return Attribution(model="tree", predicted=current, bias=bias,
                       features=tuple(names), values=tuple(vec.tolist()),
                       terms=terms)


def _zero_attribution(tag: str, names: Sequence[str],
                      vec: "np.ndarray[Any, Any]") -> Attribution:
    return Attribution(model=tag, predicted=0.0, bias=0.0,
                       features=tuple(names), values=tuple(vec.tolist()),
                       terms=())


def attribute_forest(model: Any, x: Any,
                     feature_names: Optional[Sequence[str]] = None,
                     class_index: Optional[int] = None) -> Attribution:
    """Mean of per-tree path attributions — exact for bagged averaging.

    Classifier forests average per-tree probabilities, and both the
    expected class value and ``P(class)`` are linear in those
    probabilities, so averaging per-tree attributions reproduces the
    ensemble prediction exactly.  A tree whose bootstrap sample never
    contained the requested class predicts ``P = 0`` constantly and
    contributes an all-zero attribution.
    """
    trees = model.estimators_
    if not trees:
        raise RuntimeError("model is not fitted")
    vec = _as_vector(x)
    names = _names(feature_names, int(trees[0].n_features_))
    classes = getattr(model, "classes_", None)
    if class_index is not None and classes is None:
        raise ValueError("class_index is only valid for classifiers")

    parts: List[Attribution] = []
    for tree in trees:
        local_index: Optional[int] = None
        if class_index is not None:
            assert classes is not None
            wanted = classes[class_index]
            matches = np.nonzero(tree.classes_ == wanted)[0]
            if len(matches) == 0:
                parts.append(_zero_attribution("tree", names, vec))
                continue
            local_index = int(matches[0])
        parts.append(attribute_tree(tree, vec, feature_names=names,
                                    class_index=local_index))

    k = float(len(parts))
    totals: Dict[str, float] = {}
    for part in parts:
        for name, score in part.terms:
            totals[name] = totals.get(name, 0.0) + score / k
    terms = tuple((name, totals[name])
                  for name in names if name in totals)
    return Attribution(
        model="forest",
        predicted=float(sum(p.predicted for p in parts)) / k,
        bias=float(sum(p.bias for p in parts)) / k,
        features=tuple(names), values=tuple(vec.tolist()), terms=terms)


def attribute_boosting(model: Any, x: Any,
                       feature_names: Optional[Sequence[str]] = None
                       ) -> Attribution:
    """Telescoped path attribution across gradient-boosting stages.

    ``bias = init_ + sum_t lr * root_t`` (input-independent) and each
    stage's path deltas are scaled by the learning rate, so the terms sum
    exactly to ``model.predict(x) - bias``.
    """
    trees = model.estimators_
    if not trees:
        raise RuntimeError("model is not fitted")
    vec = _as_vector(x)
    names = _names(feature_names, int(trees[0].n_features_))
    lr = float(model.learning_rate)

    bias = float(model.init_)
    predicted = float(model.init_)
    totals: Dict[str, float] = {}
    for tree in trees:
        part = attribute_tree(tree, vec, feature_names=names)
        bias += lr * part.bias
        predicted += lr * part.predicted
        for name, score in part.terms:
            totals[name] = totals.get(name, 0.0) + lr * score
    terms = tuple((name, totals[name])
                  for name in names if name in totals)
    return Attribution(model="boosting", predicted=predicted, bias=bias,
                       features=tuple(names), values=tuple(vec.tolist()),
                       terms=terms)


# ----------------------------------------------------------------------
# Per-term attribution (GA²M, isotonic)
# ----------------------------------------------------------------------
def attribute_gam(model: Any, x: Any,
                  feature_names: Optional[Sequence[str]] = None
                  ) -> Attribution:
    """GA²M per-term attribution (the model is already additive).

    Wraps ``explain_local``: every shape function's score is one term,
    interaction terms get the pseudo-name ``"a x b"``.  Exact by
    construction.
    """
    local = model.explain_local(x)
    vec = _as_vector(x)
    names = _names(feature_names if feature_names is not None
                   else model.feature_names, int(model.n_features_))
    terms = tuple((str(name), float(score))
                  for name, _value, score in local.contributions)
    return Attribution(model="gam", predicted=float(local.prediction),
                       bias=float(local.intercept),
                       features=tuple(names), values=tuple(vec.tolist()),
                       terms=terms)


def attribute_isotonic(model: Any, x: Any,
                       feature_name: str = "x") -> Attribution:
    """Single-term attribution of an isotonic (one-feature) regressor.

    The bias is the weighted training mean of the fitted step function;
    the lone term is the prediction's deviation from that mean.
    """
    vec = _as_vector(x)
    if vec.shape[0] != 1:
        raise ValueError("isotonic regression is a one-feature model")
    predicted = float(np.asarray(model.predict(vec)).ravel()[0])
    bias = float(model.mean_)
    return Attribution(model="isotonic", predicted=predicted, bias=bias,
                       features=(feature_name,), values=(float(vec[0]),),
                       terms=((feature_name, predicted - bias),))


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------
def attribute_model(model: Any, x: Any,
                    feature_names: Optional[Sequence[str]] = None,
                    class_index: Optional[int] = None) -> Attribution:
    """Attribute one prediction of any model in the family (duck-typed).

    Dispatches on public fitted attributes: ``shapes_`` → GA²M,
    ``init_`` + ``estimators_`` → boosting, ``estimators_`` → forest,
    ``root_`` → single tree, ``mean_`` + ``x_`` → isotonic.
    """
    if hasattr(model, "shapes_"):
        if class_index is not None:
            raise ValueError("class_index is only valid for classifiers")
        return attribute_gam(model, x, feature_names=feature_names)
    if hasattr(model, "estimators_") and hasattr(model, "init_"):
        if class_index is not None:
            raise ValueError("class_index is only valid for classifiers")
        return attribute_boosting(model, x, feature_names=feature_names)
    if hasattr(model, "estimators_"):
        return attribute_forest(model, x, feature_names=feature_names,
                                class_index=class_index)
    if hasattr(model, "root_"):
        return attribute_tree(model, x, feature_names=feature_names,
                              class_index=class_index)
    if hasattr(model, "mean_") and hasattr(model, "x_"):
        name = "x" if not feature_names else str(feature_names[0])
        if class_index is not None:
            raise ValueError("class_index is only valid for classifiers")
        return attribute_isotonic(model, x, feature_name=name)
    raise TypeError(f"do not know how to attribute {type(model).__name__}")
