"""Gradient-boosted decision trees — the LightGBM/XGBoost stand-ins.

Two presets are provided to mirror the Table-7 baseline lineup:

* ``lightgbm_like()`` — shallow trees, higher learning rate, feature
  subsampling (LightGBM's leaf-wise bias approximated by small depth with
  many estimators).
* ``xgboost_like()`` — deeper trees with L2 shrinkage on leaf values.

Both are plain least-squares gradient boosting: each stage fits a CART
regressor to the current residuals.  A squared-error GBDT is exactly the
black-box model family the paper contrasts with its interpretable GA²M.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.tree import DecisionTreeRegressor


class GradientBoostingRegressor:
    """Least-squares gradient boosting on CART trees.

    Parameters
    ----------
    n_estimators, learning_rate, max_depth, min_samples_leaf:
        Usual boosting knobs.
    subsample:
        Row-subsampling fraction per stage (stochastic gradient boosting).
    reg_lambda:
        L2 shrinkage applied to every leaf prediction (XGBoost-style:
        leaf value = sum(residual) / (n + lambda)).
    """

    def __init__(self, n_estimators: int = 100, learning_rate: float = 0.1,
                 max_depth: int = 3, min_samples_leaf: int = 5,
                 subsample: float = 1.0, reg_lambda: float = 0.0,
                 max_features: Optional[int] = None,
                 random_state: int = 0) -> None:
        if not 0 < subsample <= 1:
            raise ValueError("subsample must be in (0, 1]")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.reg_lambda = reg_lambda
        self.max_features = max_features
        self.random_state = random_state
        self.init_: float = 0.0
        self.estimators_: List[DecisionTreeRegressor] = []

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y length mismatch")
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        self.init_ = float(np.mean(y))
        prediction = np.full(n, self.init_)
        self.estimators_ = []
        for _ in range(self.n_estimators):
            residual = y - prediction
            if self.subsample < 1.0:
                idx = rng.choice(n, size=max(1, int(n * self.subsample)),
                                 replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=rng,
            )
            tree.fit(X[idx], residual[idx])
            if self.reg_lambda > 0:
                self._shrink_leaves(tree)
            prediction += self.learning_rate * tree.predict(X)
            self.estimators_.append(tree)
        return self

    def _shrink_leaves(self, tree: DecisionTreeRegressor) -> None:
        for leaf in tree.root_.leaves():
            shrink = leaf.n / (leaf.n + self.reg_lambda)
            leaf.value = leaf.value * shrink

    def predict(self, X) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            out += self.learning_rate * tree.predict(X)
        return out

    def staged_predict(self, X):
        """Yield predictions after each boosting stage (for diagnostics)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            out = out + self.learning_rate * tree.predict(X)
            yield out.copy()

    def feature_importances(self) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("model is not fitted")
        return np.mean([t.feature_importances() for t in self.estimators_],
                       axis=0)

    def attribute(self, x, feature_names: Optional[List[str]] = None):
        """Telescoped path :class:`~repro.models.attrib.Attribution`."""
        from repro.models.attrib import attribute_boosting

        return attribute_boosting(self, x, feature_names=feature_names)


def lightgbm_like(random_state: int = 0, **overrides) -> GradientBoostingRegressor:
    """A LightGBM-flavoured configuration (shallow, subsampled, fast)."""
    params = dict(n_estimators=120, learning_rate=0.1, max_depth=4,
                  min_samples_leaf=10, subsample=0.8,
                  random_state=random_state)
    params.update(overrides)
    return GradientBoostingRegressor(**params)


def xgboost_like(random_state: int = 0, **overrides) -> GradientBoostingRegressor:
    """An XGBoost-flavoured configuration (deeper, L2-regularized)."""
    params = dict(n_estimators=100, learning_rate=0.15, max_depth=6,
                  min_samples_leaf=3, reg_lambda=1.0,
                  random_state=random_state)
    params.update(overrides)
    return GradientBoostingRegressor(**params)
