"""CART decision trees with minimal cost-complexity pruning.

The Packing Analyze Model (§3.5.1) is a pruned decision-tree classifier:
it "can provide a transparent decision process and excellent prediction
accuracy" and is pruned with minimal cost-complexity pruning [Breiman et
al. 1984] "to obtain a compact and accurate model".  This module implements
exactly that, from scratch on numpy: binary CART trees (Gini impurity for
classification, variance for regression), Breiman's weakest-link pruning,
Gini feature importances, and text/path export for interpretation
(Figure 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class TreeNode:
    """One node of a fitted tree.  Leaves have ``feature is None``."""

    n: int
    impurity: float
    value: np.ndarray  # class counts (classifier) or [mean] (regressor)
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def make_leaf(self) -> None:
        self.feature = None
        self.left = None
        self.right = None

    def leaves(self) -> List["TreeNode"]:
        if self.is_leaf:
            return [self]
        return self.left.leaves() + self.right.leaves()

    def n_leaves(self) -> int:
        return len(self.leaves())

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def internal_nodes(self) -> List["TreeNode"]:
        if self.is_leaf:
            return []
        return [self] + self.left.internal_nodes() + self.right.internal_nodes()


class _BaseDecisionTree:
    """Shared CART machinery; subclasses define the impurity criterion."""

    def __init__(self, max_depth: Optional[int] = None,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 max_features: Optional[int] = None,
                 random_state: Optional[np.random.Generator] = None) -> None:
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("invalid min_samples parameters")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: Optional[TreeNode] = None
        self.n_features_: int = 0
        self._n_train: int = 0

    # -- subclass hooks -------------------------------------------------
    def _node_stats(self, y: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return (impurity, value) of a node containing targets ``y``."""
        raise NotImplementedError

    def _split_scores(self, y_sorted: np.ndarray) -> np.ndarray:
        """Weighted child impurity for every split position 1..n-1."""
        raise NotImplementedError

    # -- fitting ---------------------------------------------------------
    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y length mismatch")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        self.n_features_ = X.shape[1]
        self._n_train = X.shape[0]
        self.root_ = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        impurity, value = self._node_stats(y)
        node = TreeNode(n=len(y), impurity=impurity, value=value)
        if (len(y) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or impurity <= 1e-12):
            return node
        split = self._find_best_split(X, y, impurity)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _candidate_features(self) -> np.ndarray:
        if self.max_features is None or self.max_features >= self.n_features_:
            return np.arange(self.n_features_)
        rng = self.random_state or np.random.default_rng()
        return rng.choice(self.n_features_, size=self.max_features,
                          replace=False)

    def _find_best_split(self, X: np.ndarray, y: np.ndarray,
                         parent_impurity: float
                         ) -> Optional[Tuple[int, float]]:
        n = len(y)
        best_score = parent_impurity - 1e-9  # require strict improvement
        best: Optional[Tuple[int, float]] = None
        leaf = self.min_samples_leaf
        for feature in self._candidate_features():
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            scores = self._split_scores(ys)  # index i => left size i+1... see below
            # Position i means the left child holds the first i samples.
            positions = np.arange(1, n)
            valid = (positions >= leaf) & (positions <= n - leaf)
            valid &= xs[positions] > xs[positions - 1]
            if not np.any(valid):
                continue
            masked = np.where(valid, scores, np.inf)
            idx = int(np.argmin(masked))
            if masked[idx] < best_score:
                best_score = masked[idx]
                threshold = (xs[idx] + xs[idx + 1]) / 2.0
                best = (int(feature), float(threshold))
        return best

    # -- prediction -------------------------------------------------------
    def _leaf_for(self, x: np.ndarray) -> TreeNode:
        node = self.root_
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def decision_path(self, x) -> List[Tuple[int, float, bool]]:
        """The (feature, threshold, went_left) comparisons for one sample.

        This powers the transparent per-prediction explanations of Figure 6.
        """
        self._check_fitted()
        x = np.asarray(x, dtype=float).ravel()
        path: List[Tuple[int, float, bool]] = []
        node = self.root_
        while not node.is_leaf:
            went_left = bool(x[node.feature] <= node.threshold)
            path.append((node.feature, node.threshold, went_left))
            node = node.left if went_left else node.right
        return path

    def _check_fitted(self) -> None:
        if self.root_ is None:
            raise RuntimeError("model is not fitted")

    # -- interpretation ----------------------------------------------------
    @property
    def n_leaves_(self) -> int:
        self._check_fitted()
        return self.root_.n_leaves()

    @property
    def depth_(self) -> int:
        self._check_fitted()
        return self.root_.depth()

    def feature_importances(self) -> np.ndarray:
        """Normalized Gini/variance importance (Figure 6, right panel)."""
        self._check_fitted()
        importances = np.zeros(self.n_features_)
        total = self.root_.n
        for node in self.root_.internal_nodes():
            gain = (node.n * node.impurity
                    - node.left.n * node.left.impurity
                    - node.right.n * node.right.impurity)
            importances[node.feature] += gain / total
        s = importances.sum()
        return importances / s if s > 0 else importances

    def to_text(self, feature_names: Optional[Sequence[str]] = None,
                class_names: Optional[Sequence[str]] = None) -> str:
        """Human-readable rendering of the learned tree (Figure 6, left)."""
        self._check_fitted()
        names = (list(feature_names) if feature_names is not None
                 else [f"x{i}" for i in range(self.n_features_)])
        lines: List[str] = []

        def render(node: TreeNode, indent: str) -> None:
            if node.is_leaf:
                lines.append(f"{indent}-> {self._leaf_label(node, class_names)}"
                             f"  (n={node.n})")
                return
            lines.append(f"{indent}if {names[node.feature]} <= "
                         f"{node.threshold:.2f}:")
            render(node.left, indent + "  ")
            lines.append(f"{indent}else:")
            render(node.right, indent + "  ")

        render(self.root_, "")
        return "\n".join(lines)

    def _leaf_label(self, node: TreeNode, class_names) -> str:
        raise NotImplementedError

    # -- minimal cost-complexity pruning ------------------------------------
    def cost_complexity_pruning_path(self) -> List[float]:
        """Effective alphas of the weakest-link pruning sequence."""
        self._check_fitted()
        alphas = [0.0]
        work = _clone_tree(self.root_)
        while not work.is_leaf:
            alpha, node = _weakest_link(work, self._n_train)
            node.make_leaf()
            alphas.append(alpha)
        return alphas

    def prune(self, ccp_alpha: float) -> "_BaseDecisionTree":
        """Collapse every subtree whose effective alpha is <= ``ccp_alpha``.

        Returns ``self`` (pruned in place), matching the paper's use of
        minimal cost-complexity pruning to compact the packing model.
        """
        self._check_fitted()
        if ccp_alpha < 0:
            raise ValueError("ccp_alpha must be >= 0")
        while not self.root_.is_leaf:
            alpha, node = _weakest_link(self.root_, self._n_train)
            if alpha > ccp_alpha:
                break
            node.make_leaf()
        return self


def _clone_tree(node: TreeNode) -> TreeNode:
    clone = TreeNode(n=node.n, impurity=node.impurity,
                     value=node.value.copy(), feature=node.feature,
                     threshold=node.threshold)
    if not node.is_leaf:
        clone.left = _clone_tree(node.left)
        clone.right = _clone_tree(node.right)
    return clone


def _weakest_link(root: TreeNode, n_total: int) -> Tuple[float, TreeNode]:
    """Find the internal node with the smallest effective alpha."""
    best_alpha = math.inf
    best_node: Optional[TreeNode] = None
    for node in root.internal_nodes():
        r_leaf = node.n / n_total * node.impurity
        r_subtree = sum(leaf.n / n_total * leaf.impurity
                        for leaf in node.leaves())
        n_leaves = node.n_leaves()
        alpha = (r_leaf - r_subtree) / max(n_leaves - 1, 1)
        if alpha < best_alpha:
            best_alpha = alpha
            best_node = node
    return best_alpha, best_node


class DecisionTreeClassifier(_BaseDecisionTree):
    """Gini-impurity CART classifier."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X, y):
        y = np.asarray(y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self._n_classes = len(self.classes_)
        return super().fit(X, encoded)

    def _node_stats(self, y: np.ndarray) -> Tuple[float, np.ndarray]:
        counts = np.bincount(y, minlength=self._n_classes).astype(float)
        probs = counts / counts.sum()
        return float(1.0 - np.sum(probs ** 2)), counts

    def _split_scores(self, y_sorted: np.ndarray) -> np.ndarray:
        n = len(y_sorted)
        onehot = np.zeros((n, self._n_classes))
        onehot[np.arange(n), y_sorted] = 1.0
        left_counts = np.cumsum(onehot, axis=0)[:-1]  # (n-1, k)
        total = left_counts[-1] + onehot[-1]
        right_counts = total - left_counts
        nl = np.arange(1, n, dtype=float)
        nr = n - nl
        gini_l = 1.0 - np.sum((left_counts / nl[:, None]) ** 2, axis=1)
        gini_r = 1.0 - np.sum((right_counts / nr[:, None]) ** 2, axis=1)
        return (nl * gini_l + nr * gini_r) / n

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.empty((X.shape[0], self._n_classes))
        for i, x in enumerate(X):
            counts = self._leaf_for(x).value
            out[i] = counts / counts.sum()
        return out

    def predict(self, X) -> np.ndarray:
        probs = self.predict_proba(X)
        return self.classes_[np.argmax(probs, axis=1)]

    def attribute(self, x, feature_names: Optional[Sequence[str]] = None,
                  class_index: Optional[int] = None):
        """Decision-path :class:`~repro.models.attrib.Attribution`.

        Attributes the expected class value by default, or
        ``P(classes_[class_index])`` when ``class_index`` is given.
        """
        from repro.models.attrib import attribute_tree

        return attribute_tree(self, x, feature_names=feature_names,
                              class_index=class_index)

    def _leaf_label(self, node: TreeNode, class_names) -> str:
        idx = int(np.argmax(node.value))
        label = (class_names[idx] if class_names is not None
                 else str(self.classes_[idx]))
        return f"class {label}"


class DecisionTreeRegressor(_BaseDecisionTree):
    """Variance-reduction CART regressor."""

    def fit(self, X, y):
        return super().fit(X, np.asarray(y, dtype=float))

    def _node_stats(self, y: np.ndarray) -> Tuple[float, np.ndarray]:
        return float(np.var(y)), np.array([float(np.mean(y))])

    def _split_scores(self, y_sorted: np.ndarray) -> np.ndarray:
        n = len(y_sorted)
        csum = np.cumsum(y_sorted)[:-1]
        csq = np.cumsum(y_sorted ** 2)[:-1]
        total_sum = csum[-1] + y_sorted[-1]
        total_sq = csq[-1] + y_sorted[-1] ** 2
        nl = np.arange(1, n, dtype=float)
        nr = n - nl
        var_l = csq / nl - (csum / nl) ** 2
        var_r = (total_sq - csq) / nr - ((total_sum - csum) / nr) ** 2
        # Guard against tiny negative values from floating-point error.
        var_l = np.maximum(var_l, 0.0)
        var_r = np.maximum(var_r, 0.0)
        return (nl * var_l + nr * var_r) / n

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.array([self._leaf_for(x).value[0] for x in X])

    def attribute(self, x, feature_names: Optional[Sequence[str]] = None):
        """Decision-path :class:`~repro.models.attrib.Attribution`."""
        from repro.models.attrib import attribute_tree

        return attribute_tree(self, x, feature_names=feature_names)

    def _leaf_label(self, node: TreeNode, class_names) -> str:
        return f"value {node.value[0]:.3f}"
