"""Feature encoders and time-series feature engineering.

Provides the categorical/temporal encodings the paper's models consume:
label encoding for users and clustered job names, calendar decomposition of
submission timestamps (§3.5.3), and the rolling/shift/soft-sum throughput
features of §3.5.2 (``roll_mean_1h``, ``shift_1d``, ``soft_3h``, ...).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86_400.0


class LabelEncoder:
    """Map hashable categories to dense integer codes.

    Unseen categories at transform time map to a dedicated ``unknown``
    code, so models keep working as new users/templates appear (the drift
    the Update Engine exists to absorb).
    """

    def __init__(self) -> None:
        self._codes: Dict[object, int] = {}

    def fit(self, values: Sequence) -> "LabelEncoder":
        for value in values:
            if value not in self._codes:
                self._codes[value] = len(self._codes)
        return self

    @property
    def unknown_code(self) -> int:
        return len(self._codes)

    def transform(self, values: Sequence) -> np.ndarray:
        unknown = self.unknown_code
        return np.array([self._codes.get(v, unknown) for v in values],
                        dtype=float)

    def fit_transform(self, values: Sequence) -> np.ndarray:
        return self.fit(values).transform(values)

    def __len__(self) -> int:
        return len(self._codes)


def time_features(timestamps: Sequence[float],
                  epoch_day_of_week: int = 2) -> Dict[str, np.ndarray]:
    """Decompose trace timestamps into calendar attributes.

    Trace time is seconds since the trace epoch; ``epoch_day_of_week``
    anchors weekday computation (default Wednesday, arbitrary but fixed).
    Returns hour-of-day, day-of-week, day index ("dayofyear" analogue) and
    a month index.
    """
    ts = np.asarray(timestamps, dtype=float)
    days = np.floor(ts / SECONDS_PER_DAY)
    return {
        "hour": np.floor((ts % SECONDS_PER_DAY) / SECONDS_PER_HOUR),
        "dayofweek": (days + epoch_day_of_week) % 7,
        "day": days,
        "month": np.floor(days / 30.0),
    }


def rolling_mean(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing mean over the previous ``window`` points (causal, excludes t)."""
    return _rolling(values, window, np.mean)


def rolling_median(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing median over the previous ``window`` points."""
    return _rolling(values, window, np.median)


def _rolling(values: np.ndarray, window: int, fn) -> np.ndarray:
    if window < 1:
        raise ValueError("window must be >= 1")
    values = np.asarray(values, dtype=float)
    out = np.empty_like(values)
    for i in range(len(values)):
        lo = max(0, i - window)
        out[i] = fn(values[lo:i]) if i > lo else (values[0] if i == 0 else values[i - 1])
    return out


def shift(values: np.ndarray, lag: int, fill: Optional[float] = None) -> np.ndarray:
    """Lag a series by ``lag`` steps, back-filling the head."""
    if lag < 0:
        raise ValueError("lag must be >= 0")
    values = np.asarray(values, dtype=float)
    if lag == 0:
        return values.copy()
    head_value = values[0] if fill is None else fill
    out = np.empty_like(values)
    out[:lag] = head_value
    out[lag:] = values[:-lag]
    return out


def soft_sum(values: np.ndarray, window: int, decay: float = 0.7) -> np.ndarray:
    """Exponentially weighted trailing sum ("weighted soft summation", §3.5.2).

    ``out[t] = sum_{k=1..window} decay^(k-1) * values[t-k]``; more recent
    history weighs more.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if not 0 < decay <= 1:
        raise ValueError("decay must be in (0, 1]")
    values = np.asarray(values, dtype=float)
    out = np.zeros_like(values)
    weights = decay ** np.arange(window)
    for i in range(len(values)):
        lo = max(0, i - window)
        past = values[lo:i][::-1]  # most recent first
        if past.size:
            out[i] = float(np.dot(past, weights[:past.size]))
        elif i == 0:
            out[i] = values[0] * weights.sum()
    return out


def throughput_feature_table(series: np.ndarray,
                             start_time: float = 0.0,
                             step_seconds: float = SECONDS_PER_HOUR
                             ) -> Tuple[np.ndarray, List[str]]:
    """Build the Figure-7a feature matrix for an hourly throughput series.

    Features mirror the paper's list: calendar encodings (``hour``, ``day``
    ...), lags (``shift_1h``, ``shift_1d``), rolling statistics
    (``roll_mean_1h``, ``roll_median_1h``) and weighted soft sums
    (``soft_1h``, ``soft_3h``, ``soft_1d``, ``soft_1d_njob``).

    Returns ``(X, feature_names)`` aligned with the input series, suitable
    for one-step-ahead forecasting (every feature is causal).
    """
    series = np.asarray(series, dtype=float)
    n = len(series)
    times = start_time + np.arange(n) * step_seconds
    cal = time_features(times)
    steps_per_day = max(1, int(round(SECONDS_PER_DAY / step_seconds)))
    # NOTE: absolute calendar indices ("day", "month") are deliberately
    # excluded: a forecaster trained on one window and applied to the next
    # would see them out of distribution and memorize per-day offsets.
    # Periodic encodings (hour, dayofweek) carry the generalizable signal.
    columns = {
        "hour": cal["hour"],
        "dayofweek": cal["dayofweek"],
        "shift_1h": shift(series, 1),
        "shift_1d": shift(series, steps_per_day),
        "roll_mean_1h": rolling_mean(series, 1),
        "roll_mean_3h": rolling_mean(series, 3),
        "roll_median_1h": rolling_median(series, 1),
        "roll_median_6h": rolling_median(series, 6),
        "soft_1h": soft_sum(series, 1),
        "soft_3h": soft_sum(series, 3),
        "soft_1d": soft_sum(series, steps_per_day),
    }
    names = list(columns)
    X = np.column_stack([columns[name] for name in names])
    return X, names


def hourly_series(event_times: Sequence[float],
                  weights: Optional[Sequence[float]] = None,
                  start_time: Optional[float] = None,
                  end_time: Optional[float] = None
                  ) -> Tuple[np.ndarray, float]:
    """Aggregate event timestamps into an hourly count/weight series.

    Returns ``(series, series_start_time)``.  ``weights`` turns the series
    into e.g. GPU-demand throughput instead of job counts.
    """
    times = np.asarray(event_times, dtype=float)
    if times.size == 0:
        return np.zeros(1), 0.0
    w = (np.ones_like(times) if weights is None
         else np.asarray(weights, dtype=float))
    if w.shape != times.shape:
        raise ValueError("weights must align with event_times")
    t0 = float(np.floor((start_time if start_time is not None else times.min())
                        / SECONDS_PER_HOUR) * SECONDS_PER_HOUR)
    t1 = float(end_time if end_time is not None else times.max())
    n_bins = max(1, int(np.ceil((t1 - t0) / SECONDS_PER_HOUR)) + 1)
    idx = np.clip(((times - t0) / SECONDS_PER_HOUR).astype(int), 0, n_bins - 1)
    series = np.bincount(idx, weights=w, minlength=n_bins)
    return series, t0
