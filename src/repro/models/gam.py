"""GA²M — generalized additive model with pairwise interactions.

Lucid's Throughput Predict Model and Workload Estimate Model are GA²M
models (§3.5.2): ``y = mu + sum_i f_i(x_i) + sum_ij f_ij(x_i, x_j)`` where
every shape function is unary or binary, so the prediction decomposes into
per-feature scores that humans can inspect (Figure 7).

This implementation follows the Explainable Boosting Machine recipe
(Lou et al., KDD'13; Nori et al., ICML'21): features are quantile-binned,
main-effect shape functions are learned by cyclic gradient boosting of
per-bin residual means, and the strongest pairwise interactions (FAST-style
residual screening) get 2-D shape functions boosted on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.isotonic import isotonic_fit


@dataclass
class ShapeFunction:
    """A learned unary shape function over binned feature values."""

    feature: int
    bin_edges: np.ndarray   # (n_bins - 1,) interior edges
    values: np.ndarray      # (n_bins,) additive score per bin
    bin_counts: np.ndarray  # training sample count per bin

    def bin_of(self, x: np.ndarray) -> np.ndarray:
        return np.digitize(x, self.bin_edges)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.values[self.bin_of(np.asarray(x, dtype=float))]


@dataclass
class InteractionFunction:
    """A learned binary (pairwise) shape function."""

    features: Tuple[int, int]
    bin_edges: Tuple[np.ndarray, np.ndarray]
    values: np.ndarray  # (n_bins_i, n_bins_j)

    def bins_of(self, xi: np.ndarray, xj: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        return (np.digitize(xi, self.bin_edges[0]),
                np.digitize(xj, self.bin_edges[1]))

    def __call__(self, xi: np.ndarray, xj: np.ndarray) -> np.ndarray:
        bi, bj = self.bins_of(np.asarray(xi, dtype=float),
                              np.asarray(xj, dtype=float))
        return self.values[bi, bj]


@dataclass
class GlobalExplanation:
    """Overall feature importances and shape functions (Figure 7a/b)."""

    feature_names: List[str]
    importances: np.ndarray
    shapes: List[ShapeFunction]

    def top_features(self, k: int = 10) -> List[Tuple[str, float]]:
        order = np.argsort(self.importances)[::-1][:k]
        return [(self.feature_names[i], float(self.importances[i]))
                for i in order]


@dataclass
class LocalExplanation:
    """Per-prediction additive score breakdown (Figure 7c)."""

    intercept: float
    contributions: List[Tuple[str, float, float]]  # (name, feature value, score)

    @property
    def prediction(self) -> float:
        return self.intercept + sum(score for _, _, score in self.contributions)

    def sorted_by_magnitude(self) -> List[Tuple[str, float, float]]:
        return sorted(self.contributions, key=lambda c: -abs(c[2]))


class GA2MRegressor:
    """Cyclically boosted additive model with optional pairwise terms.

    Parameters
    ----------
    n_rounds:
        Boosting passes over the feature set.
    learning_rate:
        Shrinkage per boosting update.
    max_bins:
        Quantile bins per feature.
    n_interactions:
        Number of pairwise interaction terms to learn (0 = pure GAM).
    interaction_bins:
        Bins per axis for pairwise terms.
    smoothing:
        Additive count regularization of per-bin residual means.
    feature_names:
        Names used in explanations.
    """

    def __init__(self, n_rounds: int = 150, learning_rate: float = 0.1,
                 max_bins: int = 32, n_interactions: int = 0,
                 interaction_bins: int = 8, smoothing: float = 2.0,
                 feature_names: Optional[Sequence[str]] = None,
                 random_state: int = 0) -> None:
        if n_rounds < 1 or max_bins < 2:
            raise ValueError("n_rounds >= 1 and max_bins >= 2 required")
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.max_bins = max_bins
        self.n_interactions = n_interactions
        self.interaction_bins = interaction_bins
        self.smoothing = smoothing
        self.feature_names = list(feature_names) if feature_names else None
        self.random_state = random_state
        self.intercept_: float = 0.0
        self.shapes_: List[ShapeFunction] = []
        self.interactions_: List[InteractionFunction] = []
        self.n_features_: int = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2-D and aligned with y")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        n, d = X.shape
        self.n_features_ = d
        if self.feature_names is None:
            self.feature_names = [f"x{i}" for i in range(d)]
        elif len(self.feature_names) != d:
            raise ValueError("feature_names length mismatch")

        self.intercept_ = float(np.mean(y))
        self.shapes_ = [self._init_shape(i, X[:, i]) for i in range(d)]
        bins = np.column_stack(
            [self.shapes_[i].bin_of(X[:, i]) for i in range(d)])

        prediction = np.full(n, self.intercept_)
        for _ in range(self.n_rounds):
            for i in range(d):
                residual = y - prediction
                update = self._bin_means(bins[:, i],
                                         len(self.shapes_[i].values),
                                         residual)
                update *= self.learning_rate
                self.shapes_[i].values += update
                prediction += update[bins[:, i]]
        self._center_shapes()

        if self.n_interactions > 0:
            self._fit_interactions(X, y, bins, prediction)
        return self

    def _init_shape(self, feature: int, column: np.ndarray) -> ShapeFunction:
        edges = _quantile_edges(column, self.max_bins)
        n_bins = len(edges) + 1
        counts = np.bincount(np.digitize(column, edges), minlength=n_bins)
        return ShapeFunction(feature=feature, bin_edges=edges,
                             values=np.zeros(n_bins),
                             bin_counts=counts.astype(float))

    def _bin_means(self, bin_idx: np.ndarray, n_bins: int,
                   residual: np.ndarray) -> np.ndarray:
        sums = np.bincount(bin_idx, weights=residual, minlength=n_bins)
        counts = np.bincount(bin_idx, minlength=n_bins).astype(float)
        return sums / (counts + self.smoothing)

    def _center_shapes(self) -> None:
        """Shift each shape to zero weighted mean, folding into intercept."""
        for shape in self.shapes_:
            total = shape.bin_counts.sum()
            if total == 0:
                continue
            mean = float(np.average(shape.values, weights=shape.bin_counts))
            shape.values -= mean
            self.intercept_ += mean

    # ------------------------------------------------------------------
    # Pairwise interactions
    # ------------------------------------------------------------------
    def _fit_interactions(self, X: np.ndarray, y: np.ndarray,
                          bins: np.ndarray, prediction: np.ndarray) -> None:
        residual = y - prediction
        candidates = self._rank_interaction_candidates(X, residual)
        chosen = candidates[: self.n_interactions]
        self.interactions_ = []
        pair_bins: List[Tuple[np.ndarray, np.ndarray]] = []
        for i, j in chosen:
            edges_i = _quantile_edges(X[:, i], self.interaction_bins)
            edges_j = _quantile_edges(X[:, j], self.interaction_bins)
            fn = InteractionFunction(
                features=(i, j), bin_edges=(edges_i, edges_j),
                values=np.zeros((len(edges_i) + 1, len(edges_j) + 1)))
            self.interactions_.append(fn)
            pair_bins.append(fn.bins_of(X[:, i], X[:, j]))
        rounds = max(1, self.n_rounds // 3)
        for _ in range(rounds):
            for fn, (bi, bj) in zip(self.interactions_, pair_bins):
                residual = y - prediction
                ni, nj = fn.values.shape
                flat = bi * nj + bj
                sums = np.bincount(flat, weights=residual, minlength=ni * nj)
                counts = np.bincount(flat, minlength=ni * nj).astype(float)
                update = (sums / (counts + self.smoothing)).reshape(ni, nj)
                update *= self.learning_rate
                fn.values += update
                prediction += update[bi, bj]

    def _rank_interaction_candidates(self, X: np.ndarray,
                                     residual: np.ndarray
                                     ) -> List[Tuple[int, int]]:
        """FAST-style screen: rank pairs by residual variance explained."""
        importances = self._importances()
        top = list(np.argsort(importances)[::-1][:8])
        scored: List[Tuple[float, Tuple[int, int]]] = []
        for a in range(len(top)):
            for b in range(a + 1, len(top)):
                i, j = int(top[a]), int(top[b])
                gain = self._pair_gain(X[:, i], X[:, j], residual)
                scored.append((gain, (i, j)))
        scored.sort(key=lambda t: -t[0])
        return [pair for _, pair in scored]

    def _pair_gain(self, xi: np.ndarray, xj: np.ndarray,
                   residual: np.ndarray) -> float:
        edges_i = _quantile_edges(xi, 8)
        edges_j = _quantile_edges(xj, 8)
        bi = np.digitize(xi, edges_i)
        bj = np.digitize(xj, edges_j)
        nj = len(edges_j) + 1
        flat = bi * nj + bj
        n_cells = (len(edges_i) + 1) * nj
        sums = np.bincount(flat, weights=residual, minlength=n_cells)
        counts = np.bincount(flat, minlength=n_cells).astype(float)
        means = sums / np.maximum(counts, 1.0)
        return float(np.sum(counts * means ** 2))

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features_:
            raise ValueError(f"expected {self.n_features_} features")
        out = np.full(X.shape[0], self.intercept_)
        for shape in self.shapes_:
            out += shape(X[:, shape.feature])
        for fn in self.interactions_:
            i, j = fn.features
            out += fn(X[:, i], X[:, j])
        return out

    def _check_fitted(self) -> None:
        if not self.shapes_:
            raise RuntimeError("model is not fitted")

    # ------------------------------------------------------------------
    # Interpretation
    # ------------------------------------------------------------------
    def _importances(self) -> np.ndarray:
        imps = np.zeros(self.n_features_)
        for shape in self.shapes_:
            weights = shape.bin_counts
            total = weights.sum()
            if total > 0:
                imps[shape.feature] = float(
                    np.average(np.abs(shape.values), weights=weights))
        return imps

    def explain_global(self) -> GlobalExplanation:
        """Average absolute score per feature plus the shape functions."""
        self._check_fitted()
        return GlobalExplanation(
            feature_names=list(self.feature_names),
            importances=self._importances(),
            shapes=list(self.shapes_),
        )

    def explain_local(self, x) -> LocalExplanation:
        """Additive decomposition of one prediction (Figure 7c)."""
        self._check_fitted()
        x = np.asarray(x, dtype=float).ravel()
        if x.shape[0] != self.n_features_:
            raise ValueError(f"expected {self.n_features_} features")
        contributions: List[Tuple[str, float, float]] = []
        for shape in self.shapes_:
            score = float(shape(np.array([x[shape.feature]]))[0])
            contributions.append((self.feature_names[shape.feature],
                                  float(x[shape.feature]), score))
        for fn in self.interactions_:
            i, j = fn.features
            score = float(fn(np.array([x[i]]), np.array([x[j]]))[0])
            name = f"{self.feature_names[i]} x {self.feature_names[j]}"
            contributions.append((name, float("nan"), score))
        return LocalExplanation(intercept=self.intercept_,
                                contributions=contributions)

    def attribute(self, x):
        """Per-term :class:`~repro.models.attrib.Attribution` (exact)."""
        from repro.models.attrib import attribute_gam

        return attribute_gam(self, x)

    def shape_function(self, feature: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(interior bin edges, per-bin scores)`` of one feature."""
        self._check_fitted()
        shape = self.shapes_[feature]
        return shape.bin_edges.copy(), shape.values.copy()

    def constrain_monotonic(self, feature: int, increasing: bool = True) -> None:
        """Impose a monotonic constraint on one shape function via PAV.

        This is the System Tuner's model-troubleshooting operation (§3.6.1):
        the learned shape is replaced by its isotonic regression, weighted
        by training bin counts, so the constraint costs the least possible
        weighted squared error.
        """
        self._check_fitted()
        shape = self.shapes_[feature]
        weights = np.maximum(shape.bin_counts, 1e-9)
        fitted = isotonic_fit(shape.values, weights=weights,
                              increasing=increasing)
        shape.values = fitted
        self._center_shapes()


def _quantile_edges(column: np.ndarray, max_bins: int) -> np.ndarray:
    """Interior bin edges from quantiles, deduplicated."""
    qs = np.linspace(0, 1, max_bins + 1)[1:-1]
    edges = np.unique(np.quantile(column, qs))
    return edges
