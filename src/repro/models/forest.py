"""Random forests (Breiman 2001) — black-box baseline for Table 7."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.tree import DecisionTreeClassifier, DecisionTreeRegressor


class _BaseForest:
    """Bagged ensemble of CART trees with feature subsampling."""

    def __init__(self, n_estimators: int = 50,
                 max_depth: Optional[int] = None,
                 min_samples_leaf: int = 1,
                 max_features: Optional[str] = "sqrt",
                 random_state: int = 0) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.estimators_: List = []

    def _resolve_max_features(self, n_features: int) -> Optional[int]:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "third":
            return max(1, n_features // 3)
        if isinstance(self.max_features, int):
            return min(self.max_features, n_features)
        raise ValueError(f"bad max_features: {self.max_features!r}")

    def _make_tree(self, rng: np.random.Generator, n_features: int):
        raise NotImplementedError

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y length mismatch")
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        self.estimators_ = []
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = self._make_tree(rng, X.shape[1])
            tree.fit(X[idx], y[idx])
            self.estimators_.append(tree)
        return self

    def feature_importances(self) -> np.ndarray:
        """Mean per-tree impurity importance."""
        if not self.estimators_:
            raise RuntimeError("model is not fitted")
        return np.mean([t.feature_importances() for t in self.estimators_],
                       axis=0)


class RandomForestRegressor(_BaseForest):
    """Averaged bagged regression trees."""

    def _make_tree(self, rng: np.random.Generator, n_features: int):
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self._resolve_max_features(n_features),
            random_state=rng,
        )

    def predict(self, X) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("model is not fitted")
        preds = np.stack([t.predict(X) for t in self.estimators_])
        return preds.mean(axis=0)

    def attribute(self, x, feature_names: Optional[List[str]] = None):
        """Mean per-tree :class:`~repro.models.attrib.Attribution`."""
        from repro.models.attrib import attribute_forest

        return attribute_forest(self, x, feature_names=feature_names)


class RandomForestClassifier(_BaseForest):
    """Majority-vote bagged classification trees."""

    def _make_tree(self, rng: np.random.Generator, n_features: int):
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self._resolve_max_features(n_features),
            random_state=rng,
        )

    def fit(self, X, y):
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        return super().fit(X, y)

    def predict_proba(self, X) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.zeros((X.shape[0], len(self.classes_)))
        class_index = {c: i for i, c in enumerate(self.classes_)}
        for tree in self.estimators_:
            probs = tree.predict_proba(X)
            for local_idx, cls in enumerate(tree.classes_):
                out[:, class_index[cls]] += probs[:, local_idx]
        return out / len(self.estimators_)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    def attribute(self, x, feature_names: Optional[List[str]] = None,
                  class_index: Optional[int] = None):
        """Mean per-tree :class:`~repro.models.attrib.Attribution`.

        Attributes the expected class value by default, or
        ``P(classes_[class_index])`` when ``class_index`` is given.
        """
        from repro.models.attrib import attribute_forest

        return attribute_forest(self, x, feature_names=feature_names,
                                class_index=class_index)
