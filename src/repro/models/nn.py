"""A small numpy MLP regressor — the "DNN" black-box baseline of Table 7."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


class MLPRegressor:
    """Fully connected ReLU network trained with Adam on squared error.

    Inputs and targets are standardized internally, so the model can be
    used directly on raw scheduler features.
    """

    def __init__(self, hidden: Sequence[int] = (64, 32), epochs: int = 100,
                 batch_size: int = 128, learning_rate: float = 3e-3,
                 l2: float = 1e-5, random_state: int = 0) -> None:
        if not hidden:
            raise ValueError("need at least one hidden layer")
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.l2 = l2
        self.random_state = random_state
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._x_mean = self._x_std = None
        self._y_mean = self._y_std = None

    # ------------------------------------------------------------------
    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y length mismatch")
        rng = np.random.default_rng(self.random_state)
        self._x_mean = X.mean(axis=0)
        self._x_std = X.std(axis=0) + 1e-9
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) + 1e-9
        Xn = (X - self._x_mean) / self._x_std
        yn = (y - self._y_mean) / self._y_std

        sizes = [X.shape[1], *self.hidden, 1]
        self._weights = [
            rng.normal(0, np.sqrt(2.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self._biases = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]

        m = [np.zeros_like(w) for w in self._weights]
        v = [np.zeros_like(w) for w in self._weights]
        mb = [np.zeros_like(b) for b in self._biases]
        vb = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        n = X.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                grads_w, grads_b = self._gradients(Xn[idx], yn[idx])
                step += 1
                lr = self.learning_rate * (
                    np.sqrt(1 - beta2 ** step) / (1 - beta1 ** step))
                for i in range(len(self._weights)):
                    grads_w[i] += self.l2 * self._weights[i]
                    m[i] = beta1 * m[i] + (1 - beta1) * grads_w[i]
                    v[i] = beta2 * v[i] + (1 - beta2) * grads_w[i] ** 2
                    self._weights[i] -= lr * m[i] / (np.sqrt(v[i]) + eps)
                    mb[i] = beta1 * mb[i] + (1 - beta1) * grads_b[i]
                    vb[i] = beta2 * vb[i] + (1 - beta2) * grads_b[i] ** 2
                    self._biases[i] -= lr * mb[i] / (np.sqrt(vb[i]) + eps)
        return self

    def _forward(self, X: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        activations = [X]
        h = X
        for i, (w, b) in enumerate(zip(self._weights, self._biases)):
            z = h @ w + b
            h = z if i == len(self._weights) - 1 else np.maximum(z, 0.0)
            activations.append(h)
        return h.ravel(), activations

    def _gradients(self, X: np.ndarray, y: np.ndarray):
        pred, acts = self._forward(X)
        n = X.shape[0]
        delta = ((pred - y) / n)[:, None]  # d(MSE/2)/d output
        grads_w: List[np.ndarray] = [None] * len(self._weights)
        grads_b: List[np.ndarray] = [None] * len(self._biases)
        for i in range(len(self._weights) - 1, -1, -1):
            grads_w[i] = acts[i].T @ delta
            grads_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self._weights[i].T) * (acts[i] > 0)
        return grads_w, grads_b

    def predict(self, X) -> np.ndarray:
        if not self._weights:
            raise RuntimeError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Xn = (X - self._x_mean) / self._x_std
        pred, _ = self._forward(Xn)
        return pred * self._y_std + self._y_mean
