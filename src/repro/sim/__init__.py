"""Discrete-event simulation substrate."""

from repro.sim.engine import RunState, SimulationError, Simulator
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.metrics import (
    LARGE_JOB_GPUS,
    FaultStats,
    ScaleStats,
    SimulationResult,
    UtilizationSummary,
    UtilizationTracker,
    speedup,
)

__all__ = [
    "RunState",
    "SimulationError",
    "Simulator",
    "Event",
    "EventKind",
    "EventQueue",
    "LARGE_JOB_GPUS",
    "FaultStats",
    "ScaleStats",
    "SimulationResult",
    "UtilizationSummary",
    "UtilizationTracker",
    "speedup",
]
