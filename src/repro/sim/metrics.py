"""Simulation metrics: JCT, queuing delay, utilization, CDFs.

Definitions follow the paper:

* **JCT** — finish time minus submission time.
* **Queuing delay** — JCT minus the wall time the job actually spent
  executing (profiling runs count as executing; preemption/restore overhead
  does not, so Tiresias' checkpoint costs surface as queuing, matching the
  paper's "preemption causes an additional 13% queuing overhead").
* **Makespan** — completion time of the last job.
* **GPU utilization** — time-weighted fraction of GPUs hosting >= 1 job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import Telemetry
from repro.workloads.job import JobRecord

#: Job-scale boundary used by Table 5 (large = more than one 8-GPU node).
LARGE_JOB_GPUS = 8
#: "Short-term" boundary for the debugging-feedback metric (§4.3).
SHORT_JOB_SECONDS = 60.0


class UtilizationTracker:
    """Time-weighted integration of cluster occupancy.

    The engine calls :meth:`update` on every occupancy-changing event; the
    tracker accumulates GPU-busy, GPU-shared and memory-used integrals and
    reports time-averaged values, mirroring the paper's per-minute sampling
    of active GPUs.
    """

    def __init__(self, cluster) -> None:
        self._cluster = cluster
        self._last_time = 0.0
        self._busy_integral = 0.0
        self._shared_integral = 0.0
        self._memory_integral = 0.0
        self._elapsed = 0.0
        self._last_busy = 0.0
        self._last_shared = 0.0
        self._last_memory = 0.0

    def update(self, now: float) -> None:
        dt = now - self._last_time
        if dt > 0:
            self._busy_integral += self._last_busy * dt
            self._shared_integral += self._last_shared * dt
            self._memory_integral += self._last_memory * dt
            self._elapsed += dt
            self._last_time = now
        self._last_busy = self._cluster.active_gpu_fraction()
        self._last_shared = self._cluster.shared_gpu_fraction()
        self._last_memory = self._cluster.memory_used_fraction()

    def summary(self) -> "UtilizationSummary":
        if self._elapsed <= 0:
            return UtilizationSummary(0.0, 0.0, 0.0)
        return UtilizationSummary(
            gpu_busy=self._busy_integral / self._elapsed,
            gpu_shared=self._shared_integral / self._elapsed,
            memory_used=self._memory_integral / self._elapsed,
        )


@dataclass(frozen=True)
class UtilizationSummary:
    """Time-averaged cluster occupancy over a simulation."""

    gpu_busy: float
    gpu_shared: float
    memory_used: float


@dataclass(frozen=True)
class FaultStats:
    """Failure-aware accounting of one fault-injected run.

    Work is measured in exclusive-execution GPU units (the engine's
    progress model): ``goodput`` is the fraction of executed GPU-work
    that landed in finished jobs, the complement being checkpoint
    rollback losses plus the progress of permanently failed jobs.
    """

    node_failures: int = 0
    node_recoveries: int = 0
    slowdowns: int = 0
    #: Fault kills of running jobs (node failures + targeted crashes).
    job_crashes: int = 0
    #: Requeues granted by the retry policy.
    restarts: int = 0
    #: Jobs that exhausted their retry budget (terminal FAILED).
    jobs_failed: int = 0
    lost_gpu_hours: float = 0.0
    goodput: float = 1.0
    #: Mean time to repair across *completed* node recoveries (seconds).
    #: Repairs still in flight when the simulation ends are censored
    #: observations: folding their (truncated) durations into the mean
    #: would bias MTTR low, so they are excluded here and reported via
    #: ``censored_repairs`` / ``censored_repair_hours`` instead.
    mttr: float = 0.0
    #: Node-repair windows still open at simulation end.
    censored_repairs: int = 0
    #: Downtime those open windows had accumulated by simulation end
    #: (hours) — a lower bound on their eventual repair time.
    censored_repair_hours: float = 0.0


@dataclass
class SimulationResult:
    """All measurements from one simulation run."""

    records: List[JobRecord]
    makespan: float
    utilization: UtilizationSummary
    #: Observability payload (:class:`repro.obs.metrics.Telemetry`) when
    #: the run was traced; ``None`` — and every other field bit-identical
    #: to an untraced run — otherwise.
    telemetry: Optional["Telemetry"] = None
    #: Failure accounting when fault injection was armed; ``None`` (and
    #: nothing else changed) on fault-free runs.
    faults: Optional[FaultStats] = None

    # ------------------------------------------------------------------
    # Core aggregates
    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        return len(self.records)

    def jcts(self) -> np.ndarray:
        return np.array([r.jct for r in self.records])

    def queue_delays(self) -> np.ndarray:
        return np.array([r.queue_delay for r in self.records])

    @property
    def avg_jct(self) -> float:
        return float(np.mean(self.jcts())) if self.records else 0.0

    @property
    def avg_queue_delay(self) -> float:
        return float(np.mean(self.queue_delays())) if self.records else 0.0

    def queue_percentile(self, pct: float) -> float:
        """Queuing-delay percentile, e.g. ``99.9`` for Table 4's tail."""
        if not self.records:
            return 0.0
        return float(np.percentile(self.queue_delays(), pct))

    # ------------------------------------------------------------------
    # Breakdowns
    # ------------------------------------------------------------------
    def by_vc(self) -> Dict[str, List[JobRecord]]:
        groups: Dict[str, List[JobRecord]] = {}
        for record in self.records:
            groups.setdefault(record.vc, []).append(record)
        return groups

    def avg_queue_by_vc(self) -> Dict[str, float]:
        """Average queuing delay per virtual cluster (Figure 9)."""
        return {vc: float(np.mean([r.queue_delay for r in rs]))
                for vc, rs in sorted(self.by_vc().items())}

    def scale_split(self, boundary: int = LARGE_JOB_GPUS
                    ) -> Dict[str, "ScaleStats"]:
        """Large-scale vs small-scale job statistics (Table 5)."""
        large = [r for r in self.records if r.gpu_num > boundary]
        small = [r for r in self.records if r.gpu_num <= boundary]
        return {
            "large": ScaleStats.from_records(large),
            "small": ScaleStats.from_records(small),
        }

    def short_jobs_queued(self, duration_limit: float = SHORT_JOB_SECONDS,
                          queue_threshold: float = 60.0) -> int:
        """Short jobs that experienced nontrivial queuing (§4.3 feedback)."""
        return sum(1 for r in self.records
                   if r.duration <= duration_limit
                   and r.queue_delay > queue_threshold)

    def profiler_finish_rate(self) -> float:
        """Fraction of jobs that completed during the profiling stage."""
        if not self.records:
            return 0.0
        done = sum(1 for r in self.records if r.finished_in_profiler)
        return done / len(self.records)

    def total_preemptions(self) -> int:
        return sum(r.preemptions for r in self.records)

    def total_restarts(self) -> int:
        """Fault-retry restarts across all jobs (0 on fault-free runs)."""
        return sum(r.restarts for r in self.records)

    def failed_jobs(self) -> List[JobRecord]:
        """Jobs that exhausted their retry budget."""
        return [r for r in self.records if r.failed]

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------
    def jct_cdf(self, grid: Optional[Sequence[float]] = None
                ) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical JCT CDF ``(grid_seconds, fraction_of_jobs)``.

        Defaults to a log-spaced grid from 1 s to 10^6 s like Figure 8.
        """
        jcts = np.sort(self.jcts())
        xs = (np.asarray(grid, dtype=float) if grid is not None
              else np.logspace(0, 6, 61))
        if jcts.size == 0:
            return xs, np.zeros_like(xs)
        cdf = np.searchsorted(jcts, xs, side="right") / jcts.size
        return xs, cdf

    def summary(self) -> Dict[str, float]:
        """Scalar summary used by benchmark tables."""
        out = {
            "n_jobs": float(self.n_jobs),
            "makespan_hrs": self.makespan / 3600.0,
            "avg_jct_hrs": self.avg_jct / 3600.0,
            "avg_queue_hrs": self.avg_queue_delay / 3600.0,
            "p999_queue_hrs": self.queue_percentile(99.9) / 3600.0,
            "gpu_busy": self.utilization.gpu_busy,
            "gpu_shared": self.utilization.gpu_shared,
            "memory_used": self.utilization.memory_used,
            "profiler_finish_rate": self.profiler_finish_rate(),
            "preemptions": float(self.total_preemptions()),
        }
        if self.faults is not None:
            out.update({
                "node_failures": float(self.faults.node_failures),
                "job_crashes": float(self.faults.job_crashes),
                "restarts": float(self.faults.restarts),
                "jobs_failed": float(self.faults.jobs_failed),
                "lost_gpu_hours": self.faults.lost_gpu_hours,
                "goodput": self.faults.goodput,
                "mttr_hrs": self.faults.mttr / 3600.0,
                "censored_repairs": float(self.faults.censored_repairs),
            })
        return out


@dataclass(frozen=True)
class ScaleStats:
    """Average JCT / queuing delay of one job-scale class (Table 5)."""

    n_jobs: int
    avg_jct: float
    avg_queue_delay: float

    @classmethod
    def from_records(cls, records: Sequence[JobRecord]) -> "ScaleStats":
        if not records:
            return cls(0, 0.0, 0.0)
        return cls(
            n_jobs=len(records),
            avg_jct=float(np.mean([r.jct for r in records])),
            avg_queue_delay=float(np.mean([r.queue_delay for r in records])),
        )


def speedup(baseline: float, improved: float) -> float:
    """Paper-style improvement factor ("Lucid improves X by 1.3x")."""
    if improved <= 0:
        return float("inf")
    return baseline / improved
