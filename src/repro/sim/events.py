"""Event primitives for the discrete-event simulator."""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Tuple


class EventKind(enum.Enum):
    """Kinds of simulator events."""

    SUBMIT = "submit"          # a job arrives
    FINISH = "finish"          # a running job completes its work
    TIME_LIMIT = "time_limit"  # a bounded run (profiling) hits its limit
    TICK = "tick"              # periodic scheduler wake-up

    # Fault-injection events (see :mod:`repro.faults`); payloads identify
    # the target node / job / slowdown factor.
    NODE_FAIL = "node_fail"        # a node goes down, killing residents
    NODE_RECOVER = "node_recover"  # a failed node returns to service
    JOB_CRASH = "job_crash"        # a single running job dies
    SLOWDOWN = "slowdown"          # a node's GPUs become stragglers
    SLOWDOWN_END = "slowdown_end"  # the straggler window closes
    RETRY = "retry"                # a crashed job's backoff expires


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled event.

    Events are totally ordered by ``(time, seq)``; ``seq`` is a monotonically
    increasing tie-breaker so simultaneous events dispatch in creation order
    and comparison never falls through to unorderable payloads.
    """

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    job_id: Optional[int] = field(default=None, compare=False)
    epoch: int = field(default=0, compare=False)
    #: Event-kind-specific data (fault targets etc.); never compared.
    payload: Any = field(default=None, compare=False)


class EventQueue:
    """A priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, kind: EventKind, job_id: Optional[int] = None,
             epoch: int = 0, payload: Any = None) -> Event:
        """Schedule an event and return it."""
        event = Event(time=time, seq=next(self._counter), kind=kind,
                      job_id=job_id, epoch=epoch, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None
