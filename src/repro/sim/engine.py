"""Discrete-event GPU-cluster simulator.

The engine replays a job trace against a :class:`~repro.cluster.Cluster`
under the control of a scheduler object.  Its core mechanism is
*progress integration*: a job's remaining work is measured in
exclusive-execution seconds, and whenever anything changes the job's speed
(a packing mate arrives or leaves, a preemption, a resume), the engine
integrates progress up to "now" and re-derives the completion event.  This
one mechanism makes GPU sharing, preemption and bounded profiling runs
composable.

Scheduler contract (duck-typed; see :class:`repro.schedulers.base.Scheduler`):

* ``attach(engine)`` — called once before the run.
* ``on_job_submit(job, now)`` / ``on_job_finish(job, now)`` /
  ``on_time_limit(job, now)`` — event notifications.
* ``schedule(now)`` — invoked after each batch of simultaneous events; the
  scheduler issues :meth:`Simulator.start_job` / :meth:`Simulator.stop_job`
  calls here.
* ``tick_interval`` — optional float; when set, the engine additionally
  wakes the scheduler periodically (used by round-based Tiresias and by
  Lucid's dynamic strategy / update engine).

The paper validates its simulator against a 32-GPU physical testbed with
<4.6% error (Table 3); this engine is the analogue of that simulator.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Union

from repro.cluster.cluster import Cluster
from repro.cluster.gpu import GPU
from repro.obs.lineage import LineageCollector
from repro.obs.logutil import get_logger
from repro.obs.metrics import MetricsRegistry, Telemetry
from repro.obs.prof import SimProfiler
from repro.obs.series import SeriesCollector
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.events import EventKind, EventQueue
from repro.sim.metrics import FaultStats, SimulationResult, UtilizationTracker
from repro.workloads.colocation import InterferenceModel
from repro.workloads.job import Job, JobRecord, JobStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repro.faults
    # imports repro.sim submodules; the runtime import happens lazily in
    # :meth:`Simulator._arm_faults`)
    from repro.faults.injector import FaultInjector
    from repro.faults.runtime import FaultRuntime
    from repro.faults.spec import FaultSpec

_EPS = 1e-6

logger = get_logger("sim.engine")


class SimulationError(RuntimeError):
    """A simulation invariant was violated (stale event, deadlock, ...)."""


@dataclass
class RunState:
    """Engine-side runtime state of one executing job."""

    gpus: List[GPU]
    speed: float
    last_update: float
    epoch: int = 0
    overhead_left: float = 0.0
    time_limit_at: Optional[float] = None
    is_profiling: bool = False


class Simulator:
    """Event-driven cluster simulator.

    Parameters
    ----------
    cluster:
        The cluster to schedule onto.
    jobs:
        The trace, in any order (submission events are derived from
        ``submit_time``).
    scheduler:
        Scheduler driving allocation decisions.
    interference:
        Ground-truth colocation slowdown model.
    max_events:
        Safety valve against runaway simulations (counted per dispatched
        event, including events drained inside a simultaneous batch).
    tracer:
        Structured-event tracer (see :mod:`repro.obs.tracer`).  Defaults
        to the disabled :data:`~repro.obs.tracer.NULL_TRACER`; every
        emission site is guarded by ``tracer.enabled`` so a run without
        tracing is bit-identical to (and as fast as) an untraced one.
    sanitize:
        Enable the :class:`~repro.checks.sanitizer.SimSanitizer`: state
        invariants (allocation conservation, monotone clock, legal job
        transitions, queue consistency, fault-flag coherence) are
        asserted after every event dispatch and scheduling pass.  The
        sanitizer is read-only — a sanitized run is bit-identical to an
        unsanitized one — and entirely absent when disabled (zero
        overhead).
    profile:
        Self-profiling (:class:`~repro.obs.prof.SimProfiler`): pass
        ``True`` (a profiler is created) or a profiler instance to
        measure wall time per event kind and scheduler pass, hot-path
        invocation counts, events/sec and peak RSS.  The profiler obeys
        the same ``None``-when-off zero-overhead contract as the tracer
        and sanitizer; a profiled run is bit-identical to a plain one.
    series:
        Cluster time-series sampling
        (:class:`~repro.obs.series.SeriesCollector`): samples GPU
        allocation / sharing, per-VC queue depth, fragmentation and job
        counts on a fixed simulated-time grid.  Read-only; bit-identical
        results; ``None`` when off.
    """

    def __init__(self, cluster: Cluster, jobs: Sequence[Job], scheduler,
                 interference: Optional[InterferenceModel] = None,
                 max_events: int = 20_000_000,
                 model_cpu: bool = False,
                 tracer: Optional[Tracer] = None,
                 faults: Optional[Union["FaultSpec", "FaultInjector"]] = None,
                 sanitize: bool = False,
                 profile: Union[bool, SimProfiler, None] = None,
                 series: Optional[SeriesCollector] = None,
                 lineage: Optional["LineageCollector"] = None) -> None:
        self.cluster = cluster
        self.jobs: Dict[int, Job] = {j.job_id: j for j in jobs}
        if len(self.jobs) != len(jobs):
            raise ValueError("duplicate job ids in trace")
        self.scheduler = scheduler
        self.interference = interference or InterferenceModel()
        self.max_events = max_events
        #: When enabled, node CPUs are shared proportionally among resident
        #: jobs and CPU-starved jobs slow down (Synergy-style affiliated
        #: resources, the paper's SS6).  Off by default: the paper's
        #: evaluation treats GPUs as the dominant resource.
        self.model_cpu = model_cpu

        #: Observability: disabled by default (zero overhead contract —
        #: hot paths check the cached ``_tracing`` flag before building
        #: any event payload); metrics exist only while tracing.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tracing = self.tracer.enabled
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if self._tracing else None)

        #: Fault model (:class:`~repro.faults.spec.FaultSpec` or a prebuilt
        #: injector).  ``None`` — and a spec with no rates/script — leaves
        #: the run bit-identical to a fault-free simulation.
        self.faults = faults
        self.fault_runtime: Optional["FaultRuntime"] = None

        self._node_index = {node.node_id: node for node in cluster.nodes}
        self.now = 0.0
        self.events = EventQueue()
        self.run_states: Dict[int, RunState] = {}
        self.records: List[JobRecord] = []
        self.utilization = UtilizationTracker(cluster)
        self._unfinished = len(self.jobs)
        self._events_processed = 0
        self._tick_scheduled = False

        #: State sanitizer (:mod:`repro.checks`); ``None`` when disabled
        #: so the run loop pays a single identity check per hook site.
        self.sanitizer = None
        if sanitize:
            from repro.checks.sanitizer import SimSanitizer
            self.sanitizer = SimSanitizer(self)

        #: Self-profiler (:mod:`repro.obs.prof`); ``None`` when disabled
        #: so every hook site costs one identity check.
        self.profiler: Optional[SimProfiler] = None
        if profile:
            self.profiler = (profile if isinstance(profile, SimProfiler)
                             else SimProfiler())
        #: Time-series collector (:mod:`repro.obs.series`); ``None`` when
        #: disabled.
        self.series = series
        if self.series is not None:
            self.series.attach(self)
        #: Causal lineage collector (:mod:`repro.obs.lineage`);
        #: ``None`` when disabled — hook sites pay one identity check
        #: and the collector itself never mutates simulation state, so
        #: ``lineage=None`` runs stay bit-identical.
        self.lineage = lineage

    # ------------------------------------------------------------------
    # Public API for schedulers
    # ------------------------------------------------------------------
    def running_jobs(self) -> List[Job]:
        """Jobs currently executing (including profiling runs)."""
        return [self.jobs[jid] for jid in self.run_states]

    def gpus_of(self, job: Job) -> List[GPU]:
        """GPUs a running job occupies."""
        return list(self.run_states[job.job_id].gpus)

    def mate_ids(self, job: Job) -> Set[int]:
        """Ids of jobs colocated with ``job`` on its GPU set."""
        state = self.run_states.get(job.job_id)
        if state is None:
            return set()
        ids: Set[int] = set()
        for gpu in state.gpus:
            ids.update(gpu.residents)
        ids.discard(job.job_id)
        return ids

    def has_mates(self, job: Job) -> bool:
        """Whether ``job`` shares any GPU with another job.

        Allocation-light emptiness probe for hot callers (the binder
        and scheduler paths only need the boolean).
        """
        state = self.run_states.get(job.job_id)
        if state is None:
            return False
        return any(len(gpu.residents) > 1 for gpu in state.gpus)

    def mates_of(self, job: Job) -> List[Job]:
        """Jobs colocated with ``job`` on its GPU set (id-sorted).

        Hot callers that only need emptiness or ids should use
        :meth:`has_mates` / :meth:`mate_ids` — this variant allocates.
        """
        return [self.jobs[mid] for mid in sorted(self.mate_ids(job))]  # repro: noqa RPR121 — id-sorted order is the API contract

    def start_job(self, job: Job, gpus: Sequence[GPU],
                  time_limit: Optional[float] = None,
                  overhead: float = 0.0,
                  profiling: bool = False) -> None:
        """Begin (or resume) executing ``job`` on ``gpus``.

        Parameters
        ----------
        time_limit:
            Wall-clock bound for this run; on expiry the engine fires the
            scheduler's ``on_time_limit`` callback (profiling eviction).
        overhead:
            Cold-start / checkpoint-restore seconds during which the job
            occupies its GPUs without making progress (Tiresias resume).
        profiling:
            Marks the run as a profiling-stage run.
        """
        if job.job_id in self.run_states:
            raise RuntimeError(f"job {job.job_id} is already running")
        if job.status == JobStatus.FINISHED:
            raise RuntimeError(f"job {job.job_id} already finished")
        gpus = list(gpus)
        if len(gpus) != job.gpu_num:
            raise RuntimeError(
                f"job {job.job_id} needs {job.gpu_num} GPUs, got {len(gpus)}")
        for gpu in gpus:
            gpu.attach(job.job_id, job.profile.gpu_mem_mb)
        state = RunState(gpus=gpus, speed=1.0, last_update=self.now,
                         overhead_left=max(0.0, overhead),
                         is_profiling=profiling)
        self.run_states[job.job_id] = state
        job.status = JobStatus.PROFILING if profiling else JobStatus.RUNNING
        if job.first_start_time is None:
            job.first_start_time = self.now
        if time_limit is not None:
            state.time_limit_at = self.now + time_limit
            self.events.push(state.time_limit_at, EventKind.TIME_LIMIT,
                             job.job_id, state.epoch)
        # A new resident slows any mates down; refresh the whole GPU set.
        self._refresh_speeds_around(gpus)
        self.utilization.update(self.now)
        if self.lineage is not None:
            self.lineage.on_start(
                self.now, job.job_id, [g.gpu_id for g in gpus],
                profiling=profiling, overhead=state.overhead_left,
                progress=job.progress)
        if self._tracing:
            mates = [m.job_id for m in self.mates_of(job)]
            self.tracer.emit(
                self.now, "start", job.job_id,
                name=job.name, gpus=[g.gpu_id for g in gpus],
                nodes=[g.node_id for g in gpus], speed=state.speed,
                mates=mates, profiling=profiling,
                overhead=state.overhead_left,
                progress=job.progress,
                time_limit=time_limit)
            self.metrics.counter("jobs_started").inc()
            if profiling:
                self.metrics.counter("profiler_runs").inc()
            elif mates:
                self.metrics.counter("placements_shared").inc()

    def stop_job(self, job: Job, preempted: bool = False) -> None:
        """Remove a running job from its GPUs without finishing it."""
        state = self._require_state(job)
        self._integrate(job, state)
        gpus = state.gpus
        for gpu in gpus:
            gpu.detach(job.job_id)
        del self.run_states[job.job_id]
        if preempted:
            job.status = JobStatus.PREEMPTED
            job.preemptions += 1
        else:
            job.status = JobStatus.PENDING
        self._refresh_speeds_around(gpus)
        self.utilization.update(self.now)
        if self.lineage is not None:
            self.lineage.on_stop(
                self.now, job.job_id, [g.gpu_id for g in gpus],
                preempted=preempted, progress=job.progress,
                profiling=state.is_profiling)
        if self._tracing:
            self.tracer.emit(
                self.now, "preempt" if preempted else "stop", job.job_id,
                gpus=[g.gpu_id for g in gpus],
                nodes=[g.node_id for g in gpus],
                progress=job.progress, profiling=state.is_profiling)
            if preempted:
                self.metrics.counter("preemptions").inc()

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Replay the trace to completion and return aggregated results.

        Equivalent to ``begin()`` + ``step_batch()`` until exhausted +
        ``finalize()``; the stepwise API exists so a long-running service
        (:mod:`repro.serve`) can interleave runtime job admission with
        bounded simulation progress.  Both paths execute the identical
        operation sequence, so batch results stay bit-stable.
        """
        self.begin()
        while self.step_batch():
            pass
        return self.finalize()

    def begin(self) -> None:
        """Attach the scheduler, arm faults and enqueue trace submissions.

        Must be called exactly once before :meth:`step_batch`.  Jobs
        passed to the constructor get their ``SUBMIT`` events here;
        further jobs may join later via :meth:`add_job`.
        """
        logger.info("run start: %d jobs on %d GPUs under %s",
                    len(self.jobs), self.cluster.n_gpus,
                    getattr(self.scheduler, "name", type(self.scheduler)))
        self.scheduler.attach(self)
        self._arm_faults()
        for job_id in sorted(self.jobs):
            job = self.jobs[job_id]
            self.events.push(job.submit_time, EventKind.SUBMIT, job.job_id)
        self._maybe_schedule_tick()
        if self.profiler is not None:
            self.profiler.start_run()

    def add_job(self, job: Job) -> None:
        """Admit one job after :meth:`begin` (serve-mode runtime admission).

        The submission event fires at ``max(now, job.submit_time)`` —
        simulated time never runs backwards — and the periodic scheduler
        tick is re-armed in case the simulator had gone idle.
        """
        if job.job_id in self.jobs:
            raise ValueError(f"duplicate job id {job.job_id}")
        self.jobs[job.job_id] = job
        self._unfinished += 1
        self.events.push(max(self.now, job.submit_time), EventKind.SUBMIT,
                         job.job_id)
        self._maybe_schedule_tick()

    def step_batch(self) -> bool:
        """Advance by one step of the run loop; ``False`` when quiescent.

        One call either (a) dispatches the next timestamp batch of
        events plus the following scheduler pass, or (b) — when the
        event queue is empty but jobs remain — gives the scheduler one
        last chance to make progress, raising :class:`SimulationError`
        if it cannot (deadlock).  Returns ``False`` once every admitted
        job has finished.
        """
        if self._unfinished <= 0:
            return False
        sanitizer = self.sanitizer
        profiler = self.profiler
        series = self.series
        if not self.events:
            # Give the scheduler one last chance (e.g. sharing decisions).
            self._invoke_scheduler()
            if self._unfinished > 0 and not self.events:
                stuck = [job_id for job_id, j in sorted(self.jobs.items())
                         if j.status not in (JobStatus.FINISHED,
                                             JobStatus.FAILED)]
                logger.error("deadlock at t=%.0fs: %d unfinished jobs",
                             self.now, len(stuck))
                raise SimulationError(
                    f"simulation deadlocked at t={self.now:.0f}s with "
                    f"{len(stuck)} unfinished jobs (first: {stuck[:5]})")
            return True
        event = self.events.pop()
        if series is not None:
            # Grid points strictly before this batch sample the state
            # the previous batch left behind (piecewise-constant).
            series.advance_to(max(self.now, event.time))
        self.now = max(self.now, event.time)
        self._dispatch_profiled(event, profiler)
        if sanitizer is not None:
            sanitizer.after_dispatch(event)
            if profiler is not None:
                profiler.count("sanitizer_sweeps")
        # Drain all simultaneous events before invoking the scheduler.
        while self.events and self.events.peek_time() <= self.now + _EPS:
            event = self.events.pop()
            self._dispatch_profiled(event, profiler)
            if sanitizer is not None:
                sanitizer.after_dispatch(event)
                if profiler is not None:
                    profiler.count("sanitizer_sweeps")
        self._invoke_scheduler()
        if sanitizer is not None:
            sanitizer.after_schedule()
            if profiler is not None:
                profiler.count("sanitizer_sweeps")
        if series is not None:
            # A grid point landing exactly on this batch's timestamp
            # samples once, after the whole batch and scheduler pass.
            series.sample_if_due(self.now)
        self._maybe_schedule_tick()
        if self._events_processed > self.max_events:
            raise RuntimeError("max_events exceeded; likely a livelock")
        return True

    def finalize(self) -> SimulationResult:
        """Close out the run and build the :class:`SimulationResult`."""
        self.utilization.update(self.now)
        if self.series is not None:
            self.series.finalize(self.now)
        if self.profiler is not None:
            self.profiler.finish_run(self._events_processed, self.now)
        logger.info("run done: makespan %.0fs, %d events dispatched",
                    self.now, self._events_processed)
        fault_stats: Optional[FaultStats] = None
        if self.fault_runtime is not None:
            fault_stats = self.fault_runtime.stats()
            if self._tracing:
                self.fault_runtime.export_metrics(self.metrics, fault_stats)
        return SimulationResult(records=list(self.records),
                                makespan=self.now,
                                utilization=self.utilization.summary(),
                                telemetry=self._build_telemetry(),
                                faults=fault_stats)

    def _arm_faults(self) -> None:
        """Build the fault runtime and pre-generate the fault timeline.

        Runs after ``scheduler.attach`` so profiler-cluster faults can
        address Lucid's profiling nodes.  A disabled spec arms nothing:
        the run stays bit-identical to a fault-free one.
        """
        if self.faults is None:
            return
        from repro.faults.injector import FaultInjector
        from repro.faults.runtime import FaultRuntime
        injector = (self.faults if isinstance(self.faults, FaultInjector)
                    else FaultInjector(self.faults))
        if not injector.spec.enabled:
            return
        self.fault_runtime = FaultRuntime(self, injector)
        scheduled = injector.schedule_into(self)
        logger.info("fault injection armed: %d events from seed %d",
                    scheduled, injector.spec.seed)

    def _dispatch_profiled(self, event, profiler: Optional[SimProfiler]
                           ) -> None:
        """Dispatch one event, billing its wall time when profiling."""
        if profiler is None:
            self._dispatch(event)
            return
        profiler.enter()
        self._dispatch(event)
        profiler.exit_event(event.kind.value)

    def _invoke_scheduler(self) -> None:
        """Run one scheduling pass, timing it when traced or profiled.

        Wall-clock telemetry of scheduler latency never feeds back into
        simulated time; this method is on the RPR002 instrumentation
        allowlist (see :mod:`repro.checks.lint`).
        """
        profiler = self.profiler
        if not self._tracing and profiler is None:
            self.scheduler.schedule(self.now)
            return
        started = _time.perf_counter()
        self.scheduler.schedule(self.now)
        elapsed = _time.perf_counter() - started
        if profiler is not None:
            profiler.add_pass(elapsed)
        if self._tracing:
            self.metrics.histogram("schedule_seconds").observe(elapsed)
            queue = getattr(self.scheduler, "queue", None)
            if queue is not None:
                self.metrics.gauge("queue_depth").set(float(len(queue)),
                                                      time=self.now)

    def _build_telemetry(self) -> Optional[Telemetry]:
        if not self._tracing:
            return None
        events = getattr(self.tracer, "events", None)
        return Telemetry(events=list(events) if events is not None else [],
                         metrics=self.metrics.snapshot(),
                         registry=self.metrics,
                         audit=getattr(self.scheduler, "audit", None),
                         dropped_events=getattr(self.tracer, "n_dropped", 0))

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, event) -> None:
        # The livelock safety valve counts every dispatched event, not
        # event batches: simultaneous events drained by the inner loop in
        # :meth:`run` must not fly under the ``max_events`` radar.
        self._events_processed += 1
        if event.kind is EventKind.SUBMIT:
            job = self.jobs[event.job_id]
            job.status = JobStatus.PENDING
            if self.lineage is not None:
                self.lineage.on_submit(self.now, job.job_id,
                                       gpu_num=job.gpu_num, vc=job.vc)
            if self._tracing:
                self.tracer.emit(self.now, "submit", job.job_id,
                                 gpu_num=job.gpu_num, vc=job.vc)
                self.metrics.counter("jobs_submitted").inc()
            self.scheduler.on_job_submit(job, self.now)
        elif event.kind is EventKind.FINISH:
            self._handle_finish(event)
        elif event.kind is EventKind.TIME_LIMIT:
            self._handle_time_limit(event)
        elif event.kind is EventKind.TICK:
            self._tick_scheduled = False
        elif self.fault_runtime is not None:
            self.fault_runtime.dispatch(event, self.now)

    def _handle_finish(self, event) -> None:
        state = self.run_states.get(event.job_id)
        if state is None or state.epoch != event.epoch:
            return  # stale event from a superseded speed epoch
        job = self.jobs[event.job_id]
        self._integrate(job, state)
        if job.remaining > _EPS:
            # Numerical drift; re-derive the completion event.
            self._reschedule_finish(job, state)
            return
        gpus = state.gpus
        for gpu in gpus:
            gpu.detach(job.job_id)
        del self.run_states[job.job_id]
        job.status = JobStatus.FINISHED
        job.finish_time = self.now
        job.progress = job.duration
        if state.is_profiling:
            job.finished_in_profiler = True
        self.records.append(JobRecord.from_job(job))
        self._unfinished -= 1
        self._refresh_speeds_around(gpus)
        self.utilization.update(self.now)
        if self.lineage is not None:
            self.lineage.on_finish(
                self.now, job.job_id, [g.gpu_id for g in gpus],
                progress=job.progress, profiling=state.is_profiling,
                jct=job.jct)
        if self._tracing:
            self.tracer.emit(self.now, "finish", job.job_id,
                             gpus=[g.gpu_id for g in gpus],
                             nodes=[g.node_id for g in gpus],
                             jct=job.jct, queue_delay=job.queue_delay,
                             progress=job.progress,
                             profiling=state.is_profiling)
            self.metrics.counter("jobs_finished").inc()
        self.scheduler.on_job_finish(job, self.now)

    def _handle_time_limit(self, event) -> None:
        state = self.run_states.get(event.job_id)
        if state is None or state.epoch != event.epoch:
            return
        if state.time_limit_at is None or state.time_limit_at > self.now + _EPS:
            return
        job = self.jobs[event.job_id]
        self._integrate(job, state)
        state.time_limit_at = None
        if self.lineage is not None:
            self.lineage.on_time_limit(self.now, job.job_id,
                                       progress=job.progress,
                                       profiling=state.is_profiling)
        if self._tracing:
            self.tracer.emit(self.now, "time_limit", job.job_id,
                             progress=job.progress,
                             profiling=state.is_profiling)
        self.scheduler.on_time_limit(job, self.now)

    # ------------------------------------------------------------------
    # Progress integration & speed management
    # ------------------------------------------------------------------
    def _require_state(self, job: Job) -> RunState:
        state = self.run_states.get(job.job_id)
        if state is None:
            raise SimulationError(
                f"job {job.job_id} ({job.name!r}, status "
                f"{job.status.value}) is not running at t={self.now:.0f}s")
        return state

    def _integrate(self, job: Job, state: RunState) -> None:
        """Advance job progress from ``state.last_update`` to now."""
        dt = self.now - state.last_update
        if dt <= 0:
            state.last_update = self.now
            return
        overhead = min(dt, state.overhead_left)
        state.overhead_left -= overhead
        productive = dt - overhead
        job.progress = min(job.duration, job.progress + productive * state.speed)
        job.service_time += productive
        state.last_update = self.now

    #: Speed multiplier for allocations spanning more nodes than the
    #: consolidated minimum (cross-node gradient synchronization cost).
    FRAGMENTATION_PENALTY = 0.85

    def _current_speed(self, job: Job, state: RunState) -> float:
        # The two common cases (running alone / one colocation mate —
        # the binder never packs more than two per GPU set) take the
        # allocation-free path; k-way sharing only arises under other
        # schedulers' packings.
        ids = self.mate_ids(job)
        if not ids:
            speed = 1.0
        elif len(ids) == 1:
            mate = self.jobs[next(iter(ids))]
            speed = self.interference.pair_speeds(
                job.profile, mate.profile,
                pair_key=(job.name, mate.name)).first
        else:
            # Id-sorted so the k-way float reduction is order-stable.
            mates = [self.jobs[mid] for mid in sorted(ids)]  # repro: noqa RPR121 — rare branch; sort pins float order
            profiles = [job.profile] + [m.profile for m in mates]
            speed = self.interference.k_way_speed(profiles)
        # Fragmented multi-node placement pays a communication penalty.
        gpus_per_node = self.cluster.gpus_per_node
        min_nodes = -(-job.gpu_num // gpus_per_node)  # ceil division
        spanned = len({gpu.node_id for gpu in state.gpus})
        if spanned > min_nodes:
            speed *= self.FRAGMENTATION_PENALTY
        # Heterogeneous generations and straggler windows: the slowest
        # device gates the job (fault_slow is exactly 1.0 outside fault
        # runs, so the product is IEEE-identical to speed_factor alone).
        speed *= min(gpu.speed_factor * gpu.fault_slow for gpu in state.gpus)
        if self.model_cpu:
            speed *= self._cpu_factor(job, state)
        return speed

    def _cpu_factor(self, job: Job, state: RunState) -> float:
        """Proportional-share CPU squeeze on the job's nodes.

        Each node's CPUs are split among resident jobs in proportion to
        their demands; a job starved to a ``share`` of its demand slows to
        ``share ** cpu_sensitivity`` (data-loading-bound jobs suffer,
        compute-bound ones barely notice).
        """
        worst = 1.0
        for node_id in sorted({gpu.node_id for gpu in state.gpus}):  # repro: noqa RPR121 — pins float accumulation order
            node_obj = self._node_index.get(node_id)
            if node_obj is None:
                continue  # profiler-cluster nodes are not CPU-modelled
            # Demand on this node: every resident job's cpu_per_gpu times
            # its GPUs here.  Sorted iteration keeps the float accumulation
            # order (and hence the result bits) independent of set hashing.
            demand_here = 0.0
            job_demand = 0.0
            residents = set()
            for gpu in node_obj.gpus:
                residents.update(gpu.residents)
            for rid in sorted(residents):  # repro: noqa RPR121 — pins float accumulation order
                resident = self.jobs[rid]
                r_state = self.run_states.get(rid)
                if r_state is None:
                    continue
                gpus_here = sum(1 for g in r_state.gpus
                                if g.node_id == node_id)
                need = resident.cpu_per_gpu * gpus_here
                demand_here += need
                if rid == job.job_id:
                    job_demand = need
            if demand_here <= node_obj.cpus or job_demand <= 0:
                continue
            share = node_obj.cpus / demand_here  # fair proportional squeeze
            worst = min(worst, share ** job.cpu_sensitivity)
        return worst

    def _refresh_speeds_around(self, gpus: Sequence[GPU]) -> None:
        """Recompute speeds of every job resident on the given GPUs.

        With the CPU model enabled, occupancy changes shift every
        co-located job's CPU share, so the refresh widens to whole nodes.
        """
        if self.profiler is not None:
            self.profiler.count("speed_refreshes")
        affected = set()
        if self.model_cpu:
            for node_id in sorted({gpu.node_id for gpu in gpus}):  # repro: noqa RPR121 — RPR003 wants ordered set iteration here
                node = self._node_index.get(node_id)
                if node is None:
                    continue
                for node_gpu in node.gpus:
                    affected.update(node_gpu.residents)
        for gpu in gpus:
            affected.update(gpu.residents)
        # Sorted so simultaneous FINISH events are (re)armed in job-id
        # order — their heap tie-break sequence numbers, and therefore the
        # dispatch order, must not depend on set iteration order.
        for jid in sorted(affected):  # repro: noqa RPR121 — FINISH re-arm order must be id-deterministic
            state = self.run_states.get(jid)
            if state is None:
                continue
            job = self.jobs[jid]
            self._integrate(job, state)
            # Always re-derive the completion event: a freshly started job
            # has none yet, and epoch bumping invalidates stale ones cheaply.
            old_speed = state.speed
            state.speed = self._current_speed(job, state)
            if self._tracing and state.speed != old_speed:
                self.tracer.emit(self.now, "speed", jid, speed=state.speed)
            self._reschedule_finish(job, state)

    def _reschedule_finish(self, job: Job, state: RunState) -> None:
        state.epoch += 1
        eta = self.now + state.overhead_left + job.remaining / max(state.speed, 1e-9)
        self.events.push(eta, EventKind.FINISH, job.job_id, state.epoch)
        if state.time_limit_at is not None:
            # Re-arm the limit under the new epoch so it stays valid.
            self.events.push(state.time_limit_at, EventKind.TIME_LIMIT,
                             job.job_id, state.epoch)

    def _maybe_schedule_tick(self) -> None:
        interval = getattr(self.scheduler, "tick_interval", None)
        if interval is None or self._tick_scheduled or self._unfinished == 0:
            return
        self.events.push(self.now + interval, EventKind.TICK)
        self._tick_scheduled = True
